"""E10 — posting cost vs active-trigger fan-out and mask cascades.

Section 5.4.5: PostEvent advances *every* active trigger on the object
(the index maps an object to all its triggers), and a single posting may
generate several pseudo-events "before the system quiesces".  This bench
sweeps both dimensions:

* fan-out: 1..32 active triggers on one object,
* cascade depth: chained masks ``e & m1 & ... & mk``.

Expected shape: cost linear in the number of active triggers (each is a
state read + FSM advance + possible write) and linear in the mask chain
length (one pseudo-event per mask).
"""

import pytest

from repro.core.declarations import trigger
from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field

from benchmarks.common import emit_table, ratio, us, time_per_op

EVENTS = 300

_FANOUT: list[list[str]] = []
_MASKS: list[list[str]] = []


class FanTarget(Persistent):
    n = field(int, default=0)
    __events__ = ["Tick"]
    __triggers__ = [
        trigger("Watch", "Tick", action=lambda s, c: None, perpetual=True)
    ]


def _mask_class(depth):
    masks = {f"m{i}": (lambda self: True) for i in range(depth)}
    expression = "Tick & " + " & ".join(f"m{i}" for i in range(depth))
    return type(
        f"MaskDepth{depth}",
        (Persistent,),
        {
            "__events__": ["Tick"],
            "__masks__": masks,
            "__triggers__": [
                trigger(
                    "Deep", expression, action=lambda s, c: None, perpetual=True
                )
            ],
        },
    )


@pytest.mark.parametrize("fanout", [1, 8, 32])
def test_posting_vs_fanout(benchmark, tmp_path, fanout):
    db = Database.open(str(tmp_path / f"e10-f{fanout}"), engine="mm")
    try:
        with db.transaction():
            handle = db.pnew(FanTarget)
            ptr = handle.ptr
            for _ in range(fanout):
                handle.Watch()

        def post_all():
            with db.transaction():
                h = db.deref(ptr)
                for _ in range(EVENTS):
                    h.post_event("Tick")

        def measure(compiled_enabled):
            db.trigger_system.compiled_enabled = compiled_enabled
            db.trigger_system.stats.reset()
            return time_per_op(post_all, EVENTS, repeats=2)

        interp = measure(False)
        compiled = measure(True)
        benchmark.pedantic(post_all, rounds=1, iterations=1)
        stats = db.trigger_system.stats
        _FANOUT.append(
            [
                fanout,
                us(interp),
                us(compiled),
                ratio(interp, compiled),
                stats.fsm_advances,
                stats.firings,
            ]
        )
    finally:
        db.close()


@pytest.mark.parametrize("depth", [1, 4, 8])
def test_posting_vs_mask_depth(benchmark, tmp_path, depth):
    cls = _mask_class(depth)
    db = Database.open(str(tmp_path / f"e10-m{depth}"), engine="mm")
    try:
        with db.transaction():
            handle = db.pnew(cls)
            ptr = handle.ptr
            handle.Deep()

        def post_all():
            with db.transaction():
                h = db.deref(ptr)
                for _ in range(EVENTS):
                    h.post_event("Tick")

        def measure(compiled_enabled):
            db.trigger_system.compiled_enabled = compiled_enabled
            db.trigger_system.stats.reset()
            return time_per_op(post_all, EVENTS, repeats=2)

        interp = measure(False)
        compiled = measure(True)
        benchmark.pedantic(post_all, rounds=1, iterations=1)
        stats = db.trigger_system.stats
        masks_per_event = stats.masks_evaluated_posting / max(stats.events_posted, 1)
        _MASKS.append(
            [
                depth,
                us(interp),
                us(compiled),
                ratio(interp, compiled),
                f"{masks_per_event:.1f}",
            ]
        )
        # One pseudo-event per chained mask (the Section 5.4.5 cascade);
        # the compiled tier pins constant-outcome masks but still counts
        # the steps, so the figure is mode-independent.
        assert masks_per_event == pytest.approx(depth, rel=0.01)
    finally:
        db.close()


def teardown_module(module):
    emit_table(
        "E10a",
        f"posting cost vs active triggers on one object ({EVENTS} events)",
        [
            "active triggers",
            "us/event interp",
            "us/event compiled",
            "speedup",
            "fsm advances",
            "firings",
        ],
        _FANOUT,
        notes="compiled = ODE4xx-gated generated-code tier (DESIGN.md §14).",
    )
    emit_table(
        "E10b",
        "posting cost vs chained-mask cascade depth",
        [
            "mask chain",
            "us/event interp",
            "us/event compiled",
            "speedup",
            "masks evaluated/event",
        ],
        _MASKS,
        notes="Each chained mask adds one pseudo-event before quiescence.",
    )
