"""E11 — ablation: DFA minimization and mask pruning.

The paper compiles event expressions with "the well known, regular
expression to FSM construction [16]" without saying whether Ode minimized
its machines.  Our pipeline minimizes (and prunes mask states whose
outcome cannot matter — the pass that makes Figure 1 come out at exactly
four states), so this ablation measures what the passes buy: states,
transitions, compile-time cost, and advance-time effect.

Expected shape: minimization shrinks machines noticeably on expressions
with redundancy (unions of overlapping sequences, relative), costs a
modest compile-time multiplier, and never changes behaviour (asserted).
"""

import pytest

from repro.events.compile import compile_expression
from repro.workloads.streams import generate_stream

from benchmarks.common import emit_table, time_per_op, us

DECLS = [f"E{i}" for i in range(5)]

FAMILY = [
    ("sequence", "E0, E1, E2"),
    ("overlap-union", "(E0, E1, E2) || (E1, E2) || (E2)"),
    ("figure-1", "relative((E0 & m), E1)"),
    ("repetition", "+(E0 || E1), E2, *(E3 || E4), E0"),
    ("masks", "(E0 & m) || (E1 & m), (E2 & m)"),
]

_RESULTS: list[list[str]] = []


@pytest.mark.parametrize("label,text", FAMILY)
def test_minimization_ablation(benchmark, label, text):
    raw = compile_expression(text, DECLS, minimize=False)
    small = compile_expression(text, DECLS, minimize=True)

    compile_raw_us = time_per_op(
        lambda: compile_expression(text, DECLS, minimize=False), 1, repeats=5
    )
    compile_min_us = time_per_op(
        lambda: compile_expression(text, DECLS, minimize=True), 1, repeats=5
    )
    benchmark.pedantic(
        lambda: compile_expression(text, DECLS, minimize=True),
        rounds=3,
        iterations=1,
    )

    # Behavioural equivalence on a random stream.
    stream = generate_stream(DECLS, 400, seed=7)
    state_a, state_b = raw.fsm.start, small.fsm.start
    for symbol in stream:
        result_a = raw.fsm.advance(state_a, symbol, _true)
        result_b = small.fsm.advance(state_b, symbol, _true)
        assert result_a.accepted == result_b.accepted
        state_a, state_b = result_a.state, result_b.state

    assert len(small.fsm) <= len(raw.fsm)
    _RESULTS.append(
        [
            label,
            len(raw.fsm),
            len(small.fsm),
            raw.fsm.transition_count(),
            small.fsm.transition_count(),
            us(compile_raw_us),
            us(compile_min_us),
        ]
    )


def _true(mask):
    return True


def teardown_module(module):
    emit_table(
        "E11",
        "DFA minimization + mask-pruning ablation",
        [
            "expression",
            "states raw",
            "states min",
            "transitions raw",
            "transitions min",
            "compile raw us",
            "compile min us",
        ],
        _RESULTS,
        notes=(
            "Minimization is what reduces the Figure 1 machine to the "
            "paper's four states; behaviour verified identical."
        ),
    )
