"""E12 — crash recovery and phoenix transactions.

Two halves:

1. **Recovery cost/correctness** — commit N transactions (trigger states
   included), crash, reopen: recovery redoes history and undoes losers.
   Measured: reopen time vs N, with correctness asserted (committed
   trigger state survives, uncommitted advance rolled back).
2. **Phoenix `after tcommit`** (Sections 6/8) — an intention enqueued by a
   committing transaction survives a crash *before* it executes and runs
   on restart: the "once started will never stop trying" contract that
   reasonable after-commit semantics require.
3. **Injected crash points** — the fault-injection harness crashes the
   standard workload at representative failpoints and reports each
   recovery's stats, with every invariant (atomicity, index/trigger-state
   consistency, phoenix exactly-once, fsck-clean) checked inside
   ``crash_and_verify``.
"""

import pytest

from repro.faults.harness import crash_and_verify, record_trace, select_hits
from repro.objects.database import Database
from repro.workloads.credit_card import CredCard

from benchmarks.common import emit_table

_RESULTS: list[list[str]] = []
_FAULT_RESULTS: list[list[str]] = []


@pytest.mark.parametrize("n_txns", [50, 200])
def test_recovery_after_crash(benchmark, tmp_path, n_txns):
    path = str(tmp_path / f"e12-{n_txns}")
    db = Database.open(path, engine="disk")
    with db.transaction():
        handle = db.pnew(CredCard, cred_lim=1e9)
        ptr = handle.ptr
        handle.AutoRaiseLimit(100.0)
    for i in range(n_txns):
        with db.transaction():
            db.deref(ptr).buy(None, 1.0)
    # One uncommitted transaction in flight at the crash: this buy pushes
    # the balance over 80% of the limit, so MoreCred arms the FSM — a
    # logged TriggerState write that recovery must undo.  The explicit
    # force stands in for a group commit or page eviction persisting the
    # loser's records (STEAL): without it, simulate_crash drops the
    # unforced tail and there is nothing to undo.
    txn = db.txn_manager.begin()
    db.deref(ptr).buy(None, 2e9)
    db.storage._wal.force()
    db.simulate_crash()

    def reopen():
        recovered = Database.open(path, engine="disk")
        stats = recovered.storage.last_recovery
        with recovered.transaction():
            balance = recovered.deref(ptr).curr_bal
        recovered.close()
        return stats, balance

    stats, balance = benchmark.pedantic(reopen, rounds=1, iterations=1)
    assert balance == pytest.approx(float(n_txns))  # loser undone
    assert stats.undo_applied >= 1  # the armed FSM state was rolled back
    _RESULTS.append(
        [
            n_txns,
            stats.records_scanned,
            stats.winners,
            stats.losers,
            stats.redo_applied,
            stats.undo_applied,
        ]
    )


def test_phoenix_after_tcommit_survives_crash(benchmark, tmp_path):
    path = str(tmp_path / "e12-phx")
    db = Database.open(path, engine="disk")
    with db.transaction() as txn:
        handle = db.pnew(CredCard)
        ptr = handle.ptr
        # The application's after-tcommit intention, durable with the txn.
        db.phoenix.enqueue(txn, "after-tcommit", {"card": ptr.rid})
    db.simulate_crash()  # crash before the intention ever ran

    executed = []

    def restart_and_drain():
        recovered = Database.open(path, engine="disk")
        recovered.phoenix.register_handler(
            "after-tcommit", lambda txn, payload: executed.append(payload)
        )
        ran = recovered.phoenix.drain()
        recovered.close()
        return ran

    ran = benchmark.pedantic(restart_and_drain, rounds=1, iterations=1)
    assert ran == 1
    assert executed == [{"card": ptr.rid}]
    _RESULTS.append(["phoenix", "-", "-", "-", "-", "ran after crash"])


def test_recovery_under_injected_faults(benchmark, tmp_path):
    """Crash the standard harness workload at one representative hit per
    failpoint family and report each recovery's stats."""
    base = str(tmp_path / "e12-faults")
    trace = record_trace(base + "-trace")
    # First hit of each distinct failpoint, one per family, in hit order.
    seen_families: set[str] = set()
    picks: list[int] = []
    for i in select_hits(trace, None):
        family = trace[i].point.split(".", 1)[0]
        if family not in seen_families:
            seen_families.add(family)
            picks.append(i)

    def run_picks():
        return [
            crash_and_verify(f"{base}-h{i}", i, trace[i].point)
            for i in picks
        ]

    outcomes = benchmark.pedantic(run_picks, rounds=1, iterations=1)
    for outcome in outcomes:
        stats = outcome.recovery
        _FAULT_RESULTS.append(
            [
                outcome.point,
                outcome.hit,
                outcome.matched,
                stats.winners,
                stats.losers,
                stats.redo_applied,
                stats.undo_applied,
                "clean" if not outcome.fsck_findings else "DIRTY",
            ]
        )
    assert len(outcomes) == len(picks)
    assert all(not o.fsck_findings for o in outcomes)


def teardown_module(module):
    emit_table(
        "E12",
        "crash recovery (redo winners incl. trigger states, undo losers)",
        ["txns", "log records", "winners", "losers", "redo", "undo"],
        _RESULTS,
        notes=(
            "Committed FSM advances survive the crash; the in-flight "
            "transaction's advance is undone; phoenix intentions execute on "
            "restart (Sections 5.5, 6, 8)."
        ),
    )
    emit_table(
        "E12b",
        "recovery under injected faults (one crash per failpoint family)",
        [
            "crash point",
            "hit",
            "state",
            "winners",
            "losers",
            "redo",
            "undo",
            "fsck",
        ],
        _FAULT_RESULTS,
        notes=(
            "Each row crashes the standard workload at an injected "
            "failpoint, reopens, recovers, and passes the full invariant "
            "suite (atomicity vs the model, index and trigger-state "
            "consistency, phoenix exactly-once, fsck clean)."
        ),
    )
