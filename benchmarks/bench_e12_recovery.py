"""E12 — crash recovery and phoenix transactions.

Two halves:

1. **Recovery cost/correctness** — commit N transactions (trigger states
   included), crash, reopen: recovery redoes history and undoes losers.
   Measured: reopen time vs N, with correctness asserted (committed
   trigger state survives, uncommitted advance rolled back).
2. **Phoenix `after tcommit`** (Sections 6/8) — an intention enqueued by a
   committing transaction survives a crash *before* it executes and runs
   on restart: the "once started will never stop trying" contract that
   reasonable after-commit semantics require.
"""

import pytest

from repro.objects.database import Database
from repro.workloads.credit_card import CredCard

from benchmarks.common import emit_table

_RESULTS: list[list[str]] = []


@pytest.mark.parametrize("n_txns", [50, 200])
def test_recovery_after_crash(benchmark, tmp_path, n_txns):
    path = str(tmp_path / f"e12-{n_txns}")
    db = Database.open(path, engine="disk")
    with db.transaction():
        handle = db.pnew(CredCard, cred_lim=1e9)
        ptr = handle.ptr
        handle.AutoRaiseLimit(100.0)
    for i in range(n_txns):
        with db.transaction():
            db.deref(ptr).buy(None, 1.0)
    # One uncommitted transaction in flight at the crash: this buy pushes
    # the balance over 80% of the limit, so MoreCred arms the FSM — a
    # logged TriggerState write that recovery must undo.
    txn = db.txn_manager.begin()
    db.deref(ptr).buy(None, 2e9)
    db.simulate_crash()

    def reopen():
        recovered = Database.open(path, engine="disk")
        stats = recovered.storage.last_recovery
        with recovered.transaction():
            balance = recovered.deref(ptr).curr_bal
        recovered.close()
        return stats, balance

    stats, balance = benchmark.pedantic(reopen, rounds=1, iterations=1)
    assert balance == pytest.approx(float(n_txns))  # loser undone
    assert stats.undo_applied >= 1  # the armed FSM state was rolled back
    _RESULTS.append(
        [
            n_txns,
            stats.records_scanned,
            stats.winners,
            stats.losers,
            stats.redo_applied,
            stats.undo_applied,
        ]
    )


def test_phoenix_after_tcommit_survives_crash(benchmark, tmp_path):
    path = str(tmp_path / "e12-phx")
    db = Database.open(path, engine="disk")
    with db.transaction() as txn:
        handle = db.pnew(CredCard)
        ptr = handle.ptr
        # The application's after-tcommit intention, durable with the txn.
        db.phoenix.enqueue(txn, "after-tcommit", {"card": ptr.rid})
    db.simulate_crash()  # crash before the intention ever ran

    executed = []

    def restart_and_drain():
        recovered = Database.open(path, engine="disk")
        recovered.phoenix.register_handler(
            "after-tcommit", lambda txn, payload: executed.append(payload)
        )
        ran = recovered.phoenix.drain()
        recovered.close()
        return ran

    ran = benchmark.pedantic(restart_and_drain, rounds=1, iterations=1)
    assert ran == 1
    assert executed == [{"card": ptr.rid}]
    _RESULTS.append(["phoenix", "-", "-", "-", "-", "ran after crash"])


def teardown_module(module):
    emit_table(
        "E12",
        "crash recovery (redo winners incl. trigger states, undo losers)",
        ["txns", "log records", "winners", "losers", "redo", "undo"],
        _RESULTS,
        notes=(
            "Committed FSM advances survive the crash; the in-flight "
            "transaction's advance is undone; phoenix intentions execute on "
            "restart (Sections 5.5, 6, 8)."
        ),
    )
