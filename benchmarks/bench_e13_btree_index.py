"""E13 — B-tree indexes vs cluster scans (the disk-Ode-only facility).

Section 5.6 notes MM-Ode ships "with full Ode functionality (except for
B-trees which do not exist in Dali)" — disk Ode has them.  This experiment
measures what they buy: point-lookup latency by B-tree vs scanning the
class cluster, as the extent grows.

Expected shape: the scan grows linearly with the extent; the index stays
near-flat (logarithmic node path), so the gap widens with N.  The MM
engine's refusal to create an index is asserted as the fidelity check.
"""

import pytest

from repro.errors import ObjectError
from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field

from benchmarks.common import emit_table, ratio, time_per_op, us

LOOKUPS = 30

_RESULTS: list[list[str]] = []


class Part(Persistent):
    serial = field(int, default=0)
    name = field(str, default="")


@pytest.mark.parametrize("extent", [100, 400, 1600])
def test_index_vs_scan(benchmark, tmp_path, extent):
    db = Database.open(str(tmp_path / f"e13-{extent}"), engine="disk")
    try:
        with db.transaction():
            db.create_index(Part, "serial")
            for i in range(extent):
                db.pnew(Part, serial=i, name=f"part-{i}")

        targets = [extent // 3, extent // 2, extent - 1]

        def by_index():
            with db.transaction():
                for i in range(LOOKUPS):
                    hits = db.find(Part, "serial", targets[i % 3])
                    assert len(hits) == 1

        def by_scan():
            with db.transaction():
                for i in range(LOOKUPS):
                    wanted = targets[i % 3]
                    hits = [
                        h for h in db.objects(Part) if h.serial == wanted
                    ]
                    assert len(hits) == 1

        index_us = time_per_op(by_index, LOOKUPS, repeats=2)
        scan_us = time_per_op(by_scan, LOOKUPS, repeats=1)
        benchmark.pedantic(by_index, rounds=1, iterations=1)
        _RESULTS.append(
            [extent, us(index_us), us(scan_us), ratio(scan_us, index_us)]
        )
        assert index_us < scan_us
    finally:
        db.close()


def test_mm_ode_has_no_btrees(benchmark):
    db = Database.open(None, engine="mm", name="e13-mm", durable=False)
    try:
        def attempt():
            with db.transaction():
                with pytest.raises(ObjectError, match="B-trees"):
                    db.create_index(Part, "serial")

        benchmark.pedantic(attempt, rounds=1, iterations=1)
    finally:
        db.close()


def teardown_module(module):
    emit_table(
        "E13",
        f"point lookup: B-tree index vs cluster scan ({LOOKUPS} lookups)",
        ["extent", "index us/lookup", "scan us/lookup", "scan/index"],
        _RESULTS,
        notes=(
            "Disk Ode only — MM-Ode refuses create_index, matching the "
            "paper's 'except for B-trees which do not exist in Dali'."
        ),
    )
