"""E14 — static analysis cost vs trigger count.

The ODE2xx passes (effect inference, termination, confluence, metadata)
run at declaration time — ``check_triggers`` or the lint CLI — so their
cost must stay proportional to the schema, not the data.  We synthesize
schemas of growing trigger count and measure the full ``analyze_classes``
pipeline against effect inference alone.

Expected shape: cost grows roughly linearly in the trigger count (the
confluence pass is quadratic per class, but class size is bounded in
practice), and a full analysis of dozens of triggers stays in the
single-digit-millisecond range — cheap enough to run on every schema
load.
"""

import pytest

from repro.analysis import analyze_classes, infer_trigger_effects
from repro.core.declarations import trigger
from repro.objects.persistent import Persistent
from repro.objects.schema import field

from benchmarks.common import emit_table, time_per_op

TRIGGERS_PER_CLASS = 4

_RESULTS: list[list[str]] = []


def _action_a(self, ctx):
    self.a_count = self.a_count + 1


def _action_b(self, ctx):
    self.b_log = self.b_log + [self.a_count]


def _action_c(self, ctx):
    if self.a_count > 10:
        ctx.tabort("overflow")


def _action_d(self, ctx):
    self.d_total = self.d_total + self.a_count


_ACTIONS = [_action_a, _action_b, _action_c, _action_d]


def _make_classes(count: int, tag: str) -> list[type]:
    """*count* persistent classes, each with TRIGGERS_PER_CLASS triggers."""
    classes = []
    for i in range(count):
        events = [f"Ev{tag}{i}_{j}" for j in range(TRIGGERS_PER_CLASS)]
        triggers = [
            trigger(
                f"T{j}",
                events[j],
                action=_ACTIONS[j % len(_ACTIONS)],
                perpetual=True,
            )
            for j in range(TRIGGERS_PER_CLASS)
        ]
        classes.append(
            type(
                f"BenchE14{tag}{i}",
                (Persistent,),
                {
                    "a_count": field(int, default=0),
                    "b_log": field(list, default=[]),
                    "d_total": field(int, default=0),
                    "__events__": events,
                    "__triggers__": triggers,
                },
            )
        )
    return classes


@pytest.mark.parametrize("n_classes", [1, 4, 16])
def test_analysis_cost(benchmark, n_classes):
    classes = _make_classes(n_classes, f"n{n_classes}")
    n_triggers = n_classes * TRIGGERS_PER_CLASS

    full_us = time_per_op(lambda: analyze_classes(classes), 1, repeats=5)

    infos = [
        (cls.__metatype__, info)
        for cls in classes
        for info in cls.__metatype__.all_trigger_infos
    ]

    def infer_all():
        for metatype, info in infos:
            infer_trigger_effects(info, metatype)

    infer_us = time_per_op(infer_all, 1, repeats=5)
    benchmark.pedantic(lambda: analyze_classes(classes), rounds=2, iterations=1)

    report = analyze_classes(classes)
    assert report.codes() == set()  # the synthetic schema is clean

    _RESULTS.append(
        [
            n_triggers,
            f"{full_us / 1000:8.3f}",
            f"{infer_us / 1000:8.3f}",
            f"{full_us / n_triggers:8.1f}",
        ]
    )


def teardown_module(module):
    emit_table(
        "E14",
        "static trigger analysis cost vs schema size",
        ["triggers", "full analysis ms", "effect inference ms", "us/trigger"],
        _RESULTS,
        notes=(
            "Full pipeline = masks + subsumption + cascade/termination + "
            "confluence + metadata over inferred effects.  Cost scales with "
            "the declaration count, so running the analyzer on every schema "
            "load (check_triggers) is affordable."
        ),
    )
