"""E15 — what does the observability layer cost?

The tracing/metrics subsystem (:mod:`repro.obs`) promises to be
zero-cost-when-disabled: every instrumentation site is guarded by a single
module-attribute check (``if obs.ENABLED:``), so the disabled path adds one
dict lookup and a branch per site.  This experiment measures the posting
hot path — the most densely instrumented code in the system — in three
configurations:

1. tracing disabled (the production default);
2. tracing enabled with a large ring buffer (no drops);
3. tracing enabled with a tiny ring buffer (constant eviction), to show
   the drop path costs no more than the append path.

Expected shape: disabled ≈ the E3 active-trigger rung; enabled pays the
record-construction cost per instrumented site (several records per
posting), bounded and independent of buffer size.
"""

import pytest

from repro import obs
from repro.core.declarations import trigger
from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field

from benchmarks.common import emit_table, ratio, time_per_op, us

OPS = 2_000


class Traced(Persistent):
    n = field(int, default=0)

    __events__ = ["after bump"]
    __triggers__ = [
        trigger("Watch", "after bump", action=lambda s, c: None, perpetual=True)
    ]

    def bump(self):
        self.n += 1


@pytest.fixture
def db(tmp_path):
    database = Database.open(str(tmp_path / "e15"), engine="mm")
    yield database
    obs.disable()  # never leak an enabled recorder into other benchmarks
    database.close()


def test_tracing_overhead(benchmark, db):
    with db.transaction():
        ptr = db.pnew(Traced).ptr
        db.deref(ptr).Watch()

    def posting_loop():
        with db.transaction():
            handle = db.deref(ptr)
            for _ in range(OPS):
                handle.bump()

    disabled_us = time_per_op(posting_loop, OPS)

    obs.enable(capacity=1 << 20)
    enabled_us = time_per_op(posting_loop, OPS)
    recorder = obs.disable()
    records_per_op = len(recorder.records()) / (OPS * 3)  # 3 repeats

    obs.enable(capacity=256)
    tiny_us = time_per_op(posting_loop, OPS)
    tiny = obs.disable()
    assert tiny.stats.records_dropped > 0, "tiny ring must wrap"

    benchmark.pedantic(posting_loop, rounds=2, iterations=1)

    emit_table(
        "E15",
        f"posting cost with tracing on/off ({OPS} events/txn, mm engine)",
        ["configuration", "us/event", "vs disabled"],
        [
            ["tracing disabled", us(disabled_us), "1.00x"],
            ["tracing enabled (1M-record ring)", us(enabled_us), ratio(enabled_us, disabled_us)],
            ["tracing enabled (256-record ring)", us(tiny_us), ratio(tiny_us, disabled_us)],
        ],
        notes=(
            "Disabled sites cost one module-attribute check; enabled sites "
            f"append ~{records_per_op:.1f} records/event to a bounded deque "
            f"(tiny ring dropped {tiny.stats.records_dropped} records at no "
            "extra cost)."
        ),
    )

    # The enabled path is allowed to cost real money; the *disabled* path
    # is the zero-cost contract, enforced against E3's baseline elsewhere.
    assert enabled_us > disabled_us * 0.5  # sanity: timer resolution is sane
