"""E16 — multi-session throughput and latency vs session count.

The multi-session refactor's headline numbers: N real ``threading``
sessions over one shared database, each committing update transactions
against a shared object pool, blocked sessions sleeping on the lock
manager's condition variable and deadlock victims retrying with backoff.

Reported per (engine, session count): committed-transaction throughput
and per-transaction latency p50/p99 measured inside the worker threads.

Expected shape: the in-memory engine is GIL/lock-manager bound, so
throughput roughly plateaus while tail latency grows with contention; the
disk engine pays WAL fsyncs per commit, so concurrency mostly buys
latency overlap rather than raw throughput.  The interesting column is
p99: it grows with session count as lock convoys and deadlock retries
stack up — the cost side of the concurrency the paper's design assumes.
"""

import threading
import time

import pytest

from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field

from benchmarks.common import emit_table

POOL = 16
TXNS_PER_SESSION = 40

_RESULTS: list[list[str]] = []


class Slot(Persistent):
    value = field(int, default=0)


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def run_sessions(db, n_sessions):
    with db.transaction():
        ptrs = [db.pnew(Slot).ptr for _ in range(POOL)]

    latencies_ms = []
    lat_lock = threading.Lock()
    errors = []

    def worker(index):
        session = db.session(f"bench-{index}")
        local = []
        try:
            for txn_index in range(TXNS_PER_SESSION):
                ptr = ptrs[(index * 7 + txn_index) % POOL]

                def body(txn, ptr=ptr):
                    handle = session.deref(ptr)
                    handle.value = handle.value + 1

                start = time.perf_counter()
                session.run(body, retries=200)
                local.append((time.perf_counter() - start) * 1e3)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            session.close()
            with lat_lock:
                latencies_ms.extend(local)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_sessions)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    wall = time.perf_counter() - wall_start
    assert not errors, errors

    with db.transaction():
        total = sum(db.deref(p).value for p in ptrs)
    assert total == n_sessions * TXNS_PER_SESSION  # conservation

    latencies_ms.sort()
    committed = n_sessions * TXNS_PER_SESSION
    return {
        "throughput": committed / wall,
        "p50": _percentile(latencies_ms, 0.50),
        "p99": _percentile(latencies_ms, 0.99),
        "deadlock_retries": db.session_stats.deadlock_retries,
    }


@pytest.mark.parametrize("engine", ["mm", "disk"])
@pytest.mark.parametrize("sessions", [1, 2, 4, 8])
def test_concurrent_sessions(benchmark, tmp_path, engine, sessions):
    db = Database.open(str(tmp_path / f"e16-{engine}-{sessions}"), engine=engine)
    try:
        figures = benchmark.pedantic(
            lambda: run_sessions(db, sessions), rounds=1, iterations=1
        )
    finally:
        db.close()
    _RESULTS.append(
        [
            engine,
            sessions,
            f"{figures['throughput']:8.0f}",
            f"{figures['p50']:7.3f}",
            f"{figures['p99']:7.3f}",
            figures["deadlock_retries"],
        ]
    )


def teardown_module(module):
    _RESULTS.sort(key=lambda row: (row[0], row[1]))
    emit_table(
        "E16",
        f"multi-session throughput/latency ({TXNS_PER_SESSION} update txns "
        f"per session over a {POOL}-object pool, real threads)",
        [
            "engine",
            "sessions",
            "txn/s",
            "p50 ms",
            "p99 ms",
            "deadlock retries",
        ],
        _RESULTS,
        notes=(
            "Blocked sessions sleep on the lock manager's condition "
            "variable; deadlock victims abort and retry with randomized "
            "backoff.  Throughput is committed transactions / wall time; "
            "latencies are measured per transaction inside each session "
            "thread (retries included — a deadlock's cost lands in its "
            "victim's tail latency)."
        ),
    )
