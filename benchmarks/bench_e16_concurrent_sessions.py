"""E16 — multi-session throughput and latency vs session count.

The multi-session refactor's headline numbers: N real ``threading``
sessions over one shared database, each committing update transactions
against a shared object pool, blocked sessions sleeping on the lock
manager's condition variable and deadlock victims retrying with backoff.

Reported per (engine, session count): committed-transaction throughput
and per-transaction latency p50/p99 measured inside the worker threads.

Expected shape: the in-memory engine is GIL/lock-manager bound, so
throughput roughly plateaus while tail latency grows with contention; the
disk engine pays WAL fsyncs per commit, so concurrency mostly buys
latency overlap rather than raw throughput.  The interesting column is
p99: it grows with session count as lock convoys and deadlock retries
stack up — the cost side of the concurrency the paper's design assumes.
"""

import threading
import time

import pytest

from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field

from benchmarks.common import emit_table

POOL = 16
TXNS_PER_SESSION = 40
#: Measured repeats per cell; the reported run is the throughput median.
REPEATS = 3

_RESULTS: list[list[str]] = []


def _median_run(make_db, run, n_sessions, repeats=REPEATS):
    """One discarded warmup run, then *repeats* measured runs, each on a
    fresh database; returns the run with the median throughput.

    The raw single-shot numbers were bimodal (the first run pays import
    and code-object warmup, allocator growth, and — on disk — cold page
    cache; thread start jitter splits the rest into fast/slow modes), so
    a lone sample routinely moved 2x run to run.  Warmup plus
    median-of-N makes the E16/E16b/E20 columns comparable across runs.
    """
    results = []
    for attempt in range(repeats + 1):
        db = make_db(attempt)
        try:
            figures = run(db, n_sessions)
        finally:
            db.close()
        if attempt > 0:  # attempt 0 is the warmup, discarded
            results.append(figures)
    results.sort(key=lambda figures: figures["throughput"])
    return results[len(results) // 2]


class Slot(Persistent):
    value = field(int, default=0)


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def run_sessions(db, n_sessions):
    with db.transaction():
        ptrs = [db.pnew(Slot).ptr for _ in range(POOL)]

    latencies_ms = []
    lat_lock = threading.Lock()
    errors = []

    def worker(index):
        session = db.session(f"bench-{index}")
        local = []
        try:
            for txn_index in range(TXNS_PER_SESSION):
                ptr = ptrs[(index * 7 + txn_index) % POOL]

                def body(txn, ptr=ptr):
                    handle = session.deref(ptr)
                    handle.value = handle.value + 1

                start = time.perf_counter()
                session.run(body, retries=200)
                local.append((time.perf_counter() - start) * 1e3)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            session.close()
            with lat_lock:
                latencies_ms.extend(local)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_sessions)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    wall = time.perf_counter() - wall_start
    assert not errors, errors

    with db.transaction():
        total = sum(db.deref(p).value for p in ptrs)
    assert total == n_sessions * TXNS_PER_SESSION  # conservation

    latencies_ms.sort()
    committed = n_sessions * TXNS_PER_SESSION
    return {
        "throughput": committed / wall,
        "p50": _percentile(latencies_ms, 0.50),
        "p99": _percentile(latencies_ms, 0.99),
        "deadlock_retries": db.session_stats.deadlock_retries,
    }


@pytest.mark.parametrize("engine", ["mm", "disk"])
@pytest.mark.parametrize("sessions", [1, 2, 4, 8])
def test_concurrent_sessions(benchmark, tmp_path, engine, sessions):
    def make_db(attempt):
        return Database.open(
            str(tmp_path / f"e16-{engine}-{sessions}-r{attempt}"), engine=engine
        )

    figures = benchmark.pedantic(
        lambda: _median_run(make_db, run_sessions, sessions),
        rounds=1,
        iterations=1,
    )
    _RESULTS.append(
        [
            engine,
            sessions,
            f"{figures['throughput']:8.0f}",
            f"{figures['p50']:7.3f}",
            f"{figures['p99']:7.3f}",
            figures["deadlock_retries"],
        ]
    )


# -- A/B: trigger-posting workload under 2PL vs MVCC -------------------------

_AB_RESULTS: list[list[str]] = []
_AB_THROUGHPUT: dict[tuple[str, int], float] = {}


def run_trigger_sessions(db, n_sessions):
    """Same thread/latency harness as :func:`run_sessions`, but the body is
    the §6 workload: dereference several watched objects (in per-thread
    random order, so lock orderings collide) and post their Ping/Pong
    observation events.  Under 2PL each posting S→X-upgrades the trigger
    states; under MVCC it buffers (DESIGN.md §15)."""
    import random

    from repro.workloads.locksim import HotObject

    with db.transaction():
        ptrs = []
        for _ in range(POOL // 2):
            handle = db.pnew(HotObject)
            handle.Watch()
            ptrs.append(handle.ptr)

    latencies_ms = []
    lat_lock = threading.Lock()
    errors = []

    def worker(index):
        session = db.session(f"ab-{index}")
        rng = random.Random(1996 * 31 + index)
        local = []
        try:
            for txn_index in range(TXNS_PER_SESSION):
                picks = [rng.randrange(len(ptrs)) for _ in range(3)]

                def body(txn, picks=picks):
                    for obj_index in picks:
                        handle = session.deref(ptrs[obj_index])
                        _ = handle.value
                        handle.post_event("Ping")
                        handle.post_event("Pong")

                start = time.perf_counter()
                session.run(body, retries=500)
                local.append((time.perf_counter() - start) * 1e3)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            session.close()
            with lat_lock:
                latencies_ms.extend(local)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_sessions)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    wall = time.perf_counter() - wall_start
    assert not errors, errors

    latencies_ms.sort()
    committed = n_sessions * TXNS_PER_SESSION
    return {
        "throughput": committed / wall,
        "p50": _percentile(latencies_ms, 0.50),
        "p99": _percentile(latencies_ms, 0.99),
        "deadlock_retries": db.session_stats.deadlock_retries,
        "conflict_retries": db.session_stats.conflict_retries,
    }


@pytest.mark.parametrize("sessions", [2, 8])
def test_trigger_posting_ab(tmp_path, sessions):
    figures = {}
    for cc in ("2pl", "mvcc"):

        def make_db(attempt, cc=cc):
            return Database.open(
                str(tmp_path / f"e16-ab-{cc}-{sessions}-r{attempt}"),
                engine="mm",
                trigger_cc=cc,
            )

        figures[cc] = _median_run(make_db, run_trigger_sessions, sessions)
        _AB_THROUGHPUT[(cc, sessions)] = figures[cc]["throughput"]
        _AB_RESULTS.append(
            [
                cc,
                sessions,
                f"{figures[cc]['throughput']:8.0f}",
                f"{figures[cc]['p50']:7.3f}",
                f"{figures[cc]['p99']:7.3f}",
                figures[cc]["deadlock_retries"],
                figures[cc]["conflict_retries"],
            ]
        )

    assert figures["mvcc"]["deadlock_retries"] == 0
    if sessions >= 8:
        # The acceptance bar: buffering beats S->X upgrades + deadlock
        # backoff by at least 1.5x once contention is real.
        ratio = figures["mvcc"]["throughput"] / figures["2pl"]["throughput"]
        assert ratio >= 1.5, f"mvcc/2pl throughput ratio {ratio:.2f} < 1.5"


def teardown_module(module):
    _RESULTS.sort(key=lambda row: (row[0], row[1]))
    if _AB_RESULTS:
        _AB_RESULTS.sort(key=lambda row: (row[0], row[1]))
        emit_table(
            "E16b",
            f"trigger-posting A/B: 2PL vs MVCC ({TXNS_PER_SESSION} posting "
            f"txns per session over {POOL // 2} watched objects, real threads)",
            [
                "cc",
                "sessions",
                "txn/s",
                "p50 ms",
                "p99 ms",
                "deadlock retries",
                "conflict retries",
            ],
            _AB_RESULTS,
            notes=(
                "Identical client code (deref + Ping/Pong posting); only "
                "trigger_cc differs.  Under 2PL every posting upgrades "
                "S->X on the TriggerState, so victims retry with backoff "
                "and their retries land in their own p99 (retries counted "
                "as retries, not victims).  Under MVCC postings buffer and "
                "merge at commit: zero deadlock retries by construction; "
                "conflict retries appear only under the abort policy.  "
                f"Each cell is the median of {REPEATS} runs after one "
                "discarded warmup run, each on a fresh database."
            ),
        )
    emit_table(
        "E16",
        f"multi-session throughput/latency ({TXNS_PER_SESSION} update txns "
        f"per session over a {POOL}-object pool, real threads)",
        [
            "engine",
            "sessions",
            "txn/s",
            "p50 ms",
            "p99 ms",
            "deadlock retries",
        ],
        _RESULTS,
        notes=(
            "Blocked sessions sleep on the lock manager's condition "
            "variable; deadlock victims abort and retry with randomized "
            "backoff.  Throughput is committed transactions / wall time; "
            "latencies are measured per transaction inside each session "
            "thread (retries included — a deadlock's cost lands in its "
            "victim's tail latency).  Each cell is the median of "
            f"{REPEATS} runs after one discarded warmup run, each on a "
            "fresh database."
        ),
    )
