"""E18 — chaos bench: survival under faults at 2–8 threaded sessions.

Graceful-degradation figures for the fault-tolerance layer: N real
``threading`` sessions run retried update transactions (per-transaction
deadline registered with the lock manager) while the fault injector
misbehaves in two phases —

* **transient** — a burst of ``wal.force`` I/O errors plus short stalls: a
  sick disk.  The unified retry classifier (deadlocks, lock timeouts,
  transient I/O) must absorb everything; survival should be 100%.
* **media death** — ``wal.append`` dies permanently mid-run: the store
  degrades to read-only, in-flight writers abort typed, and every session
  still *returns* within its deadline.  Survival is the committed
  fraction; the refused remainder must all be typed errors.

Reported per (sessions, phase): survival rate, p50/p99 latency (retries
included), typed-abort count, and — after media death — the reopen
("recovery") time back to a writable store.
"""

import threading
import time

import pytest

from repro.errors import (
    LockTimeoutError,
    ReadOnlyStorageError,
    TransactionDeadlineError,
    WaitPoisonedError,
)
from repro.faults import Fault, FaultInjector, FaultKind
from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field

from benchmarks.common import emit_table

POOL = 8
TXNS_PER_SESSION = 30
DEADLINE = 5.0

_RESULTS: list[list[object]] = []

_TYPED = (
    ReadOnlyStorageError,
    TransactionDeadlineError,
    LockTimeoutError,
    WaitPoisonedError,
)


class ChaosSlot(Persistent):
    value = field(int, default=0)


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _faults_for(phase, n_sessions):
    if phase == "transient":
        return [
            Fault("wal.force", FaultKind.IO_ERROR, after=10, count=3),
            Fault("wal.force", FaultKind.STALL, after=20, count=5, delay=0.005),
        ]
    # Media death mid-run: a flat offset clears the pool-setup appends,
    # then the onset scales with the workload so each session count sees
    # the medium die at a comparable phase of the run.
    return [
        Fault("wal.force", FaultKind.STALL, after=5, count=5, delay=0.005),
        Fault("wal.append", FaultKind.MEDIA_ERROR, after=30 + 10 * n_sessions),
    ]


def run_chaos(path, phase, n_sessions):
    injector = FaultInjector(_faults_for(phase, n_sessions))
    db = Database.open(path, engine="disk", injector=injector)
    with db.transaction():
        ptrs = [db.pnew(ChaosSlot).ptr for _ in range(POOL)]

    latencies_ms: list[float] = []
    outcomes: list[str] = []
    merge_lock = threading.Lock()
    hard_errors: list[BaseException] = []

    def worker(index):
        session = db.session(f"chaos-{index}")
        local_lat, local_out = [], []
        try:
            for txn_index in range(TXNS_PER_SESSION):
                ptr = ptrs[(index * 5 + txn_index) % POOL]

                def body(txn, ptr=ptr):
                    handle = session.deref(ptr)
                    handle.value = handle.value + 1

                start = time.perf_counter()
                try:
                    session.run(body, retries=200, deadline=DEADLINE)
                    local_out.append("committed")
                except _TYPED as exc:
                    local_out.append(type(exc).__name__)
                local_lat.append((time.perf_counter() - start) * 1e3)
        except Exception as exc:  # pragma: no cover - surfaced below
            hard_errors.append(exc)
        finally:
            session.close()
            with merge_lock:
                latencies_ms.extend(local_lat)
                outcomes.extend(local_out)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(n_sessions)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
        assert not thread.is_alive(), "a chaos session never returned"
    wall = time.perf_counter() - wall_start
    assert not hard_errors, hard_errors  # only *typed* failures are allowed

    committed = outcomes.count("committed")
    # Survival accounting must agree with the durable state.
    with db.transaction():
        total = sum(db.deref(p).value for p in ptrs)
    assert total == committed

    degraded = db.read_only
    db.close()

    recovery_ms = 0.0
    if degraded:
        t0 = time.perf_counter()
        db2 = Database.open(path, engine="disk")
        with db2.transaction():
            db2.deref(ptrs[0]).value = total + 1  # writable again
        recovery_ms = (time.perf_counter() - t0) * 1e3
        db2.close()

    attempts = len(outcomes)
    latencies_ms.sort()
    return {
        "survival": committed / attempts if attempts else 0.0,
        "typed_aborts": attempts - committed,
        "p50": _percentile(latencies_ms, 0.50),
        "p99": _percentile(latencies_ms, 0.99),
        "wall_s": wall,
        "degraded": degraded,
        "recovery_ms": recovery_ms,
    }


@pytest.mark.parametrize("phase", ["transient", "media_death"])
@pytest.mark.parametrize("sessions", [2, 4, 8])
def test_chaos_survival(benchmark, tmp_path, phase, sessions):
    path = str(tmp_path / f"e18-{phase}-{sessions}")
    figures = benchmark.pedantic(
        lambda: run_chaos(path, phase, sessions), rounds=1, iterations=1
    )
    if phase == "transient":
        assert figures["survival"] == 1.0  # the classifier absorbed it all
        assert not figures["degraded"]
    else:
        assert figures["degraded"]
        assert figures["typed_aborts"] > 0  # refusals, never hangs
    _RESULTS.append(
        [
            phase,
            sessions,
            f"{figures['survival'] * 100:5.1f}%",
            figures["typed_aborts"],
            f"{figures['p50']:7.3f}",
            f"{figures['p99']:7.3f}",
            f"{figures['recovery_ms']:7.1f}",
        ]
    )


def teardown_module(module):
    order = {"transient": 0, "media_death": 1}
    _RESULTS.sort(key=lambda row: (order[row[0]], row[1]))
    emit_table(
        "E18",
        f"chaos survival ({TXNS_PER_SESSION} retried update txns per "
        f"session, deadline {DEADLINE:.0f}s, disk engine, real threads)",
        [
            "phase",
            "sessions",
            "survival",
            "typed aborts",
            "p50 ms",
            "p99 ms",
            "recovery ms",
        ],
        _RESULTS,
        notes=(
            "Transient phase: wal.force I/O errors + stalls, absorbed by "
            "the unified retry classifier — survival must be 100%.  Media "
            "death phase: wal.append dies permanently; the store degrades "
            "to read-only, refused transactions abort with typed errors "
            "within their deadline (no hangs), and 'recovery ms' is the "
            "reopen-to-writable time on a healthy medium."
        ),
    )
