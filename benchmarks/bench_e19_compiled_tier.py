"""E19 — generated-code posting tier speedup at dense fan-out.

The ODE4xx-gated compile tier (DESIGN.md §14) replaces the hot posting
loop's per-state work — storage read, TriggerState decode, registry
resolution, interpreter dispatch, mask-closure calls — with one cached
generated closure per COMPILABLE trigger machine, plus a per-transaction
state cache keyed by the schema version.

Two workloads, both at fan-out 1/8/32 active triggers on one object:

* **mask-gated** — every trigger is ``Tick & armed`` with the mask false
  throughout, so no trigger ever fires.  This is the monitoring steady
  state (program-trading watchlists, fraud thresholds: thousands of
  postings per firing) and the tier's headline case: the interpreted
  cost is pure per-state overhead the generated code elides.  The
  acceptance gate lives here: **>= 3x at fan-out 32**.
* **always-firing** — ``Tick`` with no mask, every advance fires.  The
  firing path (action dispatch, write-back, firing records) is shared
  by both modes, so the speedup is honestly modest; the row keeps the
  headline from overclaiming.
"""

import pytest

from repro.core.declarations import trigger
from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field

from benchmarks.common import emit_table, ratio, us, time_per_op

EVENTS = 300

_ROWS: list[list[str]] = []
_GATED_SPEEDUPS: dict[int, float] = {}


class GateTarget(Persistent):
    """Mask-gated watcher: advances on every Tick, fires only when armed."""

    n = field(int, default=0)
    __events__ = ["Tick"]
    __masks__ = {"armed": lambda self: self.n > 0}
    __triggers__ = [
        trigger("Gate", "Tick & armed", action=lambda s, c: None, perpetual=True)
    ]


class FireTarget(Persistent):
    """Always-firing watcher: the shared firing path dominates."""

    __events__ = ["Tick"]
    __triggers__ = [
        trigger("Always", "Tick", action=lambda s, c: None, perpetual=True)
    ]


def _measure(db, ptr, compiled_enabled):
    def post_all():
        with db.transaction():
            h = db.deref(ptr)
            for _ in range(EVENTS):
                h.post_event("Tick")

    db.trigger_system.compiled_enabled = compiled_enabled
    db.trigger_system.stats.reset()
    return time_per_op(post_all, EVENTS, repeats=3)


@pytest.mark.parametrize("fanout", [1, 8, 32])
def test_mask_gated_fanout(benchmark, tmp_path, fanout):
    db = Database.open(str(tmp_path / f"e19-g{fanout}"), engine="mm")
    try:
        with db.transaction():
            handle = db.pnew(GateTarget)
            ptr = handle.ptr
            for _ in range(fanout):
                handle.Gate()
        interp = _measure(db, ptr, False)
        compiled = _measure(db, ptr, True)
        stats = db.trigger_system.stats
        assert stats.compiled_fallbacks == 0  # Gate must be COMPILABLE
        assert stats.firings == 0  # the mask really gated everything
        _GATED_SPEEDUPS[fanout] = interp / compiled
        _ROWS.append(
            ["mask-gated", fanout, us(interp), us(compiled), ratio(interp, compiled)]
        )
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    finally:
        db.close()


@pytest.mark.parametrize("fanout", [32])
def test_always_firing_fanout(benchmark, tmp_path, fanout):
    db = Database.open(str(tmp_path / f"e19-f{fanout}"), engine="mm")
    try:
        with db.transaction():
            handle = db.pnew(FireTarget)
            ptr = handle.ptr
            for _ in range(fanout):
                handle.Always()
        interp = _measure(db, ptr, False)
        compiled = _measure(db, ptr, True)
        stats = db.trigger_system.stats
        assert stats.compiled_fallbacks == 0
        assert stats.firings > 0
        _ROWS.append(
            [
                "always-firing",
                fanout,
                us(interp),
                us(compiled),
                ratio(interp, compiled),
            ]
        )
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    finally:
        db.close()


def test_acceptance_speedup_at_dense_fanout():
    """The ISSUE gate: >= 3x on mask-gated posting at fan-out 32."""
    assert _GATED_SPEEDUPS.get(32, 0.0) >= 3.0, _GATED_SPEEDUPS


def teardown_module(module):
    emit_table(
        "E19",
        f"compiled posting tier vs interpreter ({EVENTS} events, one object)",
        ["workload", "active triggers", "us/event interp", "us/event compiled", "speedup"],
        _ROWS,
        notes=(
            "mask-gated = monitoring steady state (no firings): the tier "
            "elides read+decode+dispatch per state.  always-firing shares "
            "the firing path with the interpreter, so its ratio is the "
            "honest lower bound."
        ),
    )
