"""E1 — event representation: Ode integers vs Sentinel string triples.

Paper claim (Section 7): "Ode's mapping of basic events to globally unique
integers is likely to have significantly lower event posting overhead than
Sentinel's method of representing an event as a triple of strings."

Workload: N classes × 4 member events each, one subscriber per event,
100k posts round-robin over the events.  The Ode side posts a pre-assigned
integer; the Sentinel side builds and hashes the (class, prototype,
modifier) triple per post.  Expected shape: int posting wins at every
class count, by a growing margin as triples get longer/cooler in cache.
"""

import pytest

from repro.baselines import IntEventTable, SentinelEventTable
from repro.core.registry import EventRegistry
from repro.obs.metrics import MetricsRegistry

from benchmarks.common import emit_table, ratio, time_per_op, us

POSTS = 100_000
EVENTS_PER_CLASS = 4

_RESULTS: list[list[str]] = []
_REGISTRY_NOTES: list[str] = []


def _build(n_classes):
    registry = EventRegistry()
    metrics = MetricsRegistry()
    # The same source mounted as ``events.*`` on every database's metrics
    # registry — E1 reports its counters alongside the timing figures.
    metrics.register_source("events", registry)
    int_table = IntEventTable()
    sentinel_table = SentinelEventTable()
    int_ids = []
    triples = []
    for c in range(n_classes):
        class_name = f"Class{c}"
        for e in range(EVENTS_PER_CLASS):
            prototype = f"void method{e}(float, const char*)"
            eventnum = registry.assign(class_name, prototype)
            int_table.subscribe(eventnum, lambda: None)
            sentinel_table.subscribe(class_name, prototype, "end", lambda: None)
            int_ids.append(eventnum)
            triples.append((class_name, prototype, "end"))
    return int_table, sentinel_table, int_ids, triples, metrics


@pytest.mark.parametrize("n_classes", [1, 16, 64])
def test_event_representation(benchmark, n_classes):
    int_table, sentinel_table, int_ids, triples, metrics = _build(n_classes)
    n = len(int_ids)

    def post_ints():
        post = int_table.post
        for i in range(POSTS):
            post(int_ids[i % n])

    def post_triples():
        post = sentinel_table.post
        for i in range(POSTS):
            cls, proto, mod = triples[i % n]
            post(cls, proto, mod)

    int_us = time_per_op(post_ints, POSTS)
    sentinel_us = time_per_op(post_triples, POSTS)
    benchmark.pedantic(post_ints, rounds=2, iterations=1)

    _RESULTS.append(
        [n_classes, n, us(int_us), us(sentinel_us), ratio(sentinel_us, int_us)]
    )
    snap = metrics.snapshot()
    assert snap["events.assigned"] == n  # one unique integer per event
    assert snap["events.table_size"] == n
    _REGISTRY_NOTES.append(
        f"classes={n_classes}: "
        + ", ".join(f"{k.split('.', 1)[1]}={snap[k]}" for k in sorted(snap))
    )
    # The paper's claim must hold in shape: integers never lose.
    assert int_us < sentinel_us


def teardown_module(module):
    emit_table(
        "E1",
        "event posting cost: Ode integers vs Sentinel string triples",
        ["classes", "events", "int us/post", "triple us/post", "triple/int"],
        _RESULTS,
        notes=(
            "Paper Section 7: integer representation has lower posting "
            "overhead.\nregistry events.* per configuration (the eventRep "
            "table as mounted on every database's metrics):\n  "
            + "\n  ".join(_REGISTRY_NOTES)
        ),
    )
