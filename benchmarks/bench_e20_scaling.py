"""E20 — session-count scaling with the serial points removed.

The PR-10 headline table: commit-heavy tiny transactions over N real
``threading`` sessions, per engine, in two configurations:

* **baseline** — the pre-refactor shape: a 1-stripe lock manager (one
  global mutex), per-commit fsync (``group_commit=False``), and
  per-event posting;
* **scaled** — striped lock manager (default stripe count), WAL group
  commit, and :meth:`Session.post_many` batch posting.

Each session owns a private slot and a private watched object, so there
is **zero lock contention** — what the table isolates is the fixed
serial costs of the engine itself: the lock-manager mutex, the commit
mutex, and the one-fsync-per-commit discipline.  Before this PR those
made N sessions *slower* than one (E16: disk 836 txn/s at 1 session,
627 at 4); the acceptance bar here is the reverse — the scaled config
must be **no slower at 8 sessions than at 1** on both engines (the CI
``scaling`` gate), and at least 1.5x faster on at least one.

Python's GIL still serializes the interpreter work, so the scaling
comes from what releases the GIL: the WAL write and fsync.  Each
transaction updates a blob (``PAYLOADS``, sized per engine), so the
commit's durability cost (append + fsync of the images) is real I/O —
a lone session pays it *in series* with its interpreter work, while
with group commit one leader's fsync covers every follower that
appended meanwhile and the other sessions' interpreter work runs
during it.  (With empty-payload transactions the experiment cannot
scale at all: a small-append fsync on this class of hardware is
~0.1 ms against ~0.5 ms of GIL-bound interpreter work per transaction,
so there is nothing to overlap — that shape is E16's subject, not
E20's.)
"""

import os
import threading
import time

import pytest

from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field
from repro.workloads.locksim import HotObject

from benchmarks.bench_e16_concurrent_sessions import _median_run, _percentile
from benchmarks.common import emit_table

TXNS_PER_SESSION = 100
EVENTS_PER_TXN = 2
#: Per-transaction blob update, per engine.  Sized so the commit's WAL
#: traffic is real I/O rather than epsilon (a small-append fsync is
#: ~0.1 ms here, under the ~0.5 ms of GIL-bound work per transaction),
#: while keeping each engine inside the regime where the *commit path*
#: is the bottleneck:
#:
#: * mm keeps records in a dict, so payload raises the WAL append +
#:   fsync cost (GIL-released) much faster than interpreter cost — a
#:   large blob gives the widest overlap window;
#: * disk pays slotted-page encode and buffer-pool traffic per blob
#:   page (GIL-held, under the engine mutex), and a large blob's dirty
#:   working set at 8 sessions evicts — churn that measures page
#:   replacement, not the commit path.  A page-sized blob keeps the
#:   working set resident while the fsync still dominates.
PAYLOADS = {"mm": 64 * 1024, "disk": 4 * 1024}
SESSION_COUNTS = (1, 2, 4, 8)

#: (engine, config, sessions) -> txn/s, read by the gate + teardown.
_THROUGHPUT: dict[tuple[str, str, int], float] = {}
_RESULTS: list[list[str]] = []


class PrivateSlot(Persistent):
    value = field(int, default=0)
    payload = field(bytes, default=b"")


def _open(path, engine, config):
    kwargs = {}
    if engine == "disk":
        # Size the pool to the blob working set (both configs get it, so
        # the A/B stays fair): E20 measures the commit path's serial
        # costs, not page-replacement thrash.
        kwargs["buffer_capacity"] = 4096
    if config == "baseline":
        return Database.open(
            path, engine=engine, lock_stripes=1, group_commit=False, **kwargs
        )
    return Database.open(path, engine=engine, group_commit=True, **kwargs)


def run_commit_heavy(db, n_sessions, config, payload):
    """N sessions, each committing TXNS_PER_SESSION transactions against
    private objects: one slot increment, one *payload*-byte blob update,
    plus EVENTS_PER_TXN Ping postings to a private watched HotObject
    (batched via post_many in the scaled config, a per-event loop in the
    baseline)."""
    with db.transaction():
        slots = [db.pnew(PrivateSlot).ptr for _ in range(n_sessions)]
        watched = []
        for _ in range(n_sessions):
            handle = db.pnew(HotObject)
            handle.Watch()
            watched.append(handle.ptr)

    latencies_ms = []
    lat_lock = threading.Lock()
    errors = []

    def worker(index):
        session = db.session(f"e20-{index}")
        slot, hot = slots[index], watched[index]
        # Two distinct pre-built blobs, alternated so every transaction
        # really changes the field (a same-value write could be elided).
        blobs = [os.urandom(payload), os.urandom(payload)]
        local = []
        try:
            for txn_index in range(TXNS_PER_SESSION):

                def body(txn, txn_index=txn_index):
                    handle = session.deref(slot)
                    handle.value = handle.value + 1
                    handle.payload = blobs[txn_index % 2]
                    if config == "scaled":
                        session.post_many([(hot, "Ping")] * EVENTS_PER_TXN)
                    else:
                        target = session.deref(hot)
                        for _ in range(EVENTS_PER_TXN):
                            target.post_event("Ping")

                start = time.perf_counter()
                session.run(body)
                local.append((time.perf_counter() - start) * 1e3)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            session.close()
            with lat_lock:
                latencies_ms.extend(local)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_sessions)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    wall = time.perf_counter() - wall_start
    assert not errors, errors

    with db.transaction():
        total = sum(db.deref(ptr).value for ptr in slots)
    assert total == n_sessions * TXNS_PER_SESSION  # conservation

    latencies_ms.sort()
    committed = n_sessions * TXNS_PER_SESSION
    stats = db.storage.stats
    return {
        "throughput": committed / wall,
        "p50": _percentile(latencies_ms, 0.50),
        "p99": _percentile(latencies_ms, 0.99),
        "group_commits": stats.group_commits,
        "group_piggybacks": stats.group_piggybacks,
    }


@pytest.mark.parametrize("engine", ["mm", "disk"])
@pytest.mark.parametrize("config", ["baseline", "scaled"])
def test_scaling(tmp_path, engine, config):
    payload = PAYLOADS[engine]
    for sessions in SESSION_COUNTS:

        def make_db(attempt):
            return _open(
                str(tmp_path / f"e20-{engine}-{config}-{sessions}-r{attempt}"),
                engine,
                config,
            )

        figures = _median_run(
            make_db,
            lambda db, n: run_commit_heavy(db, n, config, payload),
            sessions,
        )
        _THROUGHPUT[(engine, config, sessions)] = figures["throughput"]
        _RESULTS.append(
            [
                engine,
                config,
                sessions,
                f"{figures['throughput']:8.0f}",
                f"{figures['p50']:7.3f}",
                f"{figures['p99']:7.3f}",
                figures["group_commits"],
                figures["group_piggybacks"],
            ]
        )


@pytest.mark.parametrize("engine", ["mm", "disk"])
def test_scaled_config_does_not_regress_with_sessions(engine):
    """The CI gate: with the serial points removed, adding sessions must
    not cost throughput — 8 sessions at least match 1, modulo the
    shared-storage fsync jitter medians cannot fully cancel (observed
    ±5% on equal cells even at median-of-3)."""
    one = _THROUGHPUT.get((engine, "scaled", 1))
    eight = _THROUGHPUT.get((engine, "scaled", 8))
    if one is None or eight is None:
        pytest.skip("test_scaling did not run for this engine")
    assert eight >= 0.95 * one, (
        f"{engine}: scaled 8-session throughput {eight:.0f} txn/s "
        f"regressed below the 1-session {one:.0f} txn/s"
    )


def test_scaling_headroom_on_at_least_one_engine():
    """The PR acceptance bar: >=1.5x at 8 sessions vs 1 somewhere."""
    ratios = {}
    for engine in ("mm", "disk"):
        one = _THROUGHPUT.get((engine, "scaled", 1))
        eight = _THROUGHPUT.get((engine, "scaled", 8))
        if one and eight:
            ratios[engine] = eight / one
    if not ratios:
        pytest.skip("test_scaling did not run")
    assert max(ratios.values()) >= 1.5, (
        f"no engine reached 1.5x at 8 sessions: {ratios}"
    )


def teardown_module(module):
    if not _RESULTS:
        return
    _RESULTS.sort(key=lambda row: (row[0], row[1], row[2]))
    payloads = ", ".join(
        f"{engine} {size // 1024}KB" for engine, size in sorted(PAYLOADS.items())
    )
    emit_table(
        "E20",
        f"serial-point removal: throughput vs sessions ({TXNS_PER_SESSION} "
        f"commit-heavy txns per session, {EVENTS_PER_TXN} postings each, "
        f"blob per txn: {payloads}; private objects, real threads)",
        [
            "engine",
            "config",
            "sessions",
            "txn/s",
            "p50 ms",
            "p99 ms",
            "group commits",
            "piggybacks",
        ],
        _RESULTS,
        notes=(
            "baseline = 1-stripe lock manager, per-commit fsync, per-event "
            "posting; scaled = striped locks + WAL group commit + "
            "post_many.  Sessions touch disjoint objects, so the table "
            "isolates the engine's fixed serial costs, not lock "
            "contention.  group commits / piggybacks are the scaled "
            "config's batching evidence (piggybacks = forces that rode "
            "a leader's fsync).  Blob sizes are per engine — each engine "
            "is measured in the regime where its commit path, not page "
            "replacement, is the bottleneck (see PAYLOADS).  Each cell "
            "is the median of 3 runs after one discarded warmup run, "
            "each on a fresh database."
        ),
    )
