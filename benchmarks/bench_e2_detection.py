"""E2 — composite-event detection: extended FSM vs rescan vs event graph.

Design goal 2: "Detection of composite events should be efficient."  The
FSM pays O(1) per event regardless of history; the naive rescan baseline
re-matches the whole history per event (cost grows with stream position);
the event-graph baseline is incremental but allocates partial-match state
per node.  Expected shape: FSM per-event cost flat in stream length and
lowest overall; rescan's per-event cost grows with the stream; the event
graph sits between, degrading when partial matches accumulate.
"""

import pytest

from repro.baselines import EventGraphDetector, RescanDetector
from repro.events.compile import compile_expression
from repro.events.parser import parse
from repro.workloads.streams import generate_stream, interleave_pattern

from benchmarks.common import emit_table, time_per_op, us

DECLS = ["A", "B", "C"]
EXPRESSION = "A, B, C"

_RESULTS: list[list[str]] = []


def _stream(length):
    background = generate_stream(DECLS, length, seed=1996, dist="zipf")
    return interleave_pattern(background, ["A", "B", "C"], every=50)[:length]


@pytest.mark.parametrize("length", [200, 1000, 4000])
def test_detection_cost(benchmark, length):
    stream = _stream(length)
    compiled = compile_expression(EXPRESSION, DECLS)
    expr, _ = parse(EXPRESSION)

    def run_fsm():
        state = compiled.fsm.start
        advance = compiled.fsm.advance
        hits = 0
        for symbol in stream:
            result = advance(state, symbol, _never)
            state = result.state
            hits += result.accepted
        return hits

    def run_rescan():
        detector = RescanDetector(expr)
        hits = 0
        for symbol in stream:
            hits += detector.post(symbol)
        return hits

    def run_graph():
        detector = EventGraphDetector(expr)
        hits = 0
        for symbol in stream:
            hits += detector.post(symbol)
        return hits

    fsm_hits = run_fsm()
    assert fsm_hits == run_rescan() == run_graph()
    assert fsm_hits > 0, "workload must contain real matches"

    fsm_us = time_per_op(run_fsm, length, repeats=3)
    rescan_us = time_per_op(run_rescan, length, repeats=1 if length > 1000 else 2)
    graph_us = time_per_op(run_graph, length, repeats=3)
    benchmark.pedantic(run_fsm, rounds=2, iterations=1)

    _RESULTS.append([length, fsm_hits, us(fsm_us), us(graph_us), us(rescan_us)])
    assert fsm_us < rescan_us, "FSM must beat full-history rescanning"


def _never(mask):
    return False


def teardown_module(module):
    emit_table(
        "E2",
        f"per-event detection cost for {EXPRESSION!r} (us/event)",
        ["stream len", "matches", "FSM", "event graph", "rescan"],
        _RESULTS,
        notes=(
            "Shape: FSM flat in stream length; rescan grows with history "
            "(design goal 2: efficient composite-event detection)."
        ),
    )
