"""E3 — who pays for triggers? (design goals 3 and 4).

"The overhead associated with triggers should be paid only by objects of
classes with triggers ... the trigger facilities should not add any
overhead to volatile object accesses."

Four rungs of the ladder, same method body each time:

1. volatile object, direct call — must be plain-Python fast (goal 4);
2. persistent object of a class with *no* declared events — handle call,
   but no posting machinery;
3. persistent object of a class *with* declared events but no active
   trigger — wrapper posts, control-information bit short-circuits the
   index lookup (paper footnote 3);
4. the same object with an active trigger — full FSM advance + state
   write-back.

Expected shape: each rung costs more than the previous; rung 1 ≪ rung 2;
rung 3 adds only the cheap flag check over rung 2's dirty-tracking.
"""

import pytest

from repro.core.declarations import trigger
from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field

from benchmarks.common import emit_table, ratio, time_per_op, us

OPS = 3_000


class PassiveThing(Persistent):
    n = field(int, default=0)

    def bump(self):
        self.n += 1


class ActiveThing(Persistent):
    n = field(int, default=0)

    __events__ = ["after bump"]
    __triggers__ = [
        trigger(
            "Watch", "after bump", action=lambda s, c: None, perpetual=True
        )
    ]

    def bump(self):
        self.n += 1


@pytest.fixture
def db(tmp_path):
    database = Database.open(str(tmp_path / "e3"), engine="mm")
    yield database
    database.close()


def test_trigger_overhead_ladder(benchmark, db):
    volatile = ActiveThing()

    with db.transaction():
        passive_ptr = db.pnew(PassiveThing).ptr
        inactive_ptr = db.pnew(ActiveThing).ptr
        active_ptr = db.pnew(ActiveThing).ptr
        db.deref(active_ptr).Watch()

    def run_volatile():
        bump = volatile.bump
        for _ in range(OPS):
            bump()

    def run_handle(ptr):
        def body():
            with db.transaction():
                handle = db.deref(ptr)
                for _ in range(OPS):
                    handle.bump()

        return body

    volatile_us = time_per_op(run_volatile, OPS)
    passive_us = time_per_op(run_handle(passive_ptr), OPS)
    inactive_us = time_per_op(run_handle(inactive_ptr), OPS)
    active_us = time_per_op(run_handle(active_ptr), OPS)
    benchmark.pedantic(run_volatile, rounds=2, iterations=1)

    snap = db.metrics.snapshot()
    posting = ", ".join(
        f"{key.split('.', 1)[1]}={snap[key]}"
        for key in (
            "posting.events_posted",
            "posting.skipped_no_triggers",
            "posting.fsm_advances",
            "posting.firings",
            "posting.masks_evaluated_posting",
            "posting.masks_evaluated_activation",
        )
    )
    emit_table(
        "E3",
        "method-invocation cost by trigger exposure (us/call)",
        ["configuration", "us/call", "vs volatile"],
        [
            ["volatile object, direct call", us(volatile_us), "1.00x"],
            ["persistent, class without events", us(passive_us), ratio(passive_us, volatile_us)],
            ["persistent, events declared, no active trigger", us(inactive_us), ratio(inactive_us, volatile_us)],
            ["persistent, one active trigger", us(active_us), ratio(active_us, volatile_us)],
        ],
        notes=(
            "Goals 3+4: volatile calls bypass all machinery; event-declaring "
            "classes without active triggers pay only the control-bit check.\n"
            f"registry posting.*: {posting}"
        ),
    )

    assert volatile_us < passive_us, "volatile must be the cheapest"
    assert inactive_us < active_us, "active triggers cost more than the flag check"
    # Goal 3/footnote 3: posting with no active triggers stays close to the
    # passive handle path (allow generous slack for noise).
    assert inactive_us < passive_us * 3
