"""E4 — transition representation: sparse lists vs the dense 2-D array.

Section 6: the planned ``next[state][event]`` array over globally-unique
event integers was "very space inefficient for sparse arrays"; Ode shipped
sparse per-state transition lists instead.  We build the Figure 1 machine
plus a larger expression, then size the dense array for growing *global*
event populations (the realistic situation: every class in the process
contributes events to the integer space).

Expected shape: dense memory grows linearly with the global event count at
constant occupancy ≈ |alphabet|/|global events| → 0, while the sparse form
is fixed; dense lookup is O(1) vs the sparse linear scan, so dense wins
raw lookup time — the paper's trade, quantified.
"""

import pytest

from repro.baselines import DenseFsm
from repro.core.registry import EventRegistry
from repro.core.trigger_def import IntFsm
from repro.events.compile import compile_expression

from benchmarks.common import emit_table, time_per_op, us

DECLS = [f"E{i}" for i in range(8)]
EXPRESSION = "E0, (E1 || E2), *E3, E4"

_RESULTS: list[list[str]] = []
LOOKUPS = 20_000


def _build_int_fsm():
    compiled = compile_expression(EXPRESSION, DECLS)
    registry = EventRegistry()
    symbol_to_int = {s: registry.assign("T", s) for s in sorted(compiled.event_symbols)}
    return IntFsm(compiled, symbol_to_int, {}), registry


@pytest.mark.parametrize("global_events", [8, 256, 4096])
def test_transition_representation(benchmark, global_events):
    fsm, registry = _build_int_fsm()
    dense = DenseFsm(fsm, global_events)

    event_ints = sorted(fsm.symbol_to_int.values())
    states = list(range(len(fsm)))

    def sparse_lookups():
        move = fsm.move
        for i in range(LOOKUPS):
            move(states[i % len(states)], event_ints[i % len(event_ints)])

    def dense_lookups():
        move = dense.move
        for i in range(LOOKUPS):
            move(states[i % len(states)], event_ints[i % len(event_ints)])

    sparse_us = time_per_op(sparse_lookups, LOOKUPS)
    dense_us = time_per_op(dense_lookups, LOOKUPS)
    benchmark.pedantic(sparse_lookups, rounds=2, iterations=1)

    sparse_bytes = fsm.transition_count() * 16  # eventnum + newstate pairs
    _RESULTS.append(
        [
            global_events,
            len(fsm),
            fsm.transition_count(),
            sparse_bytes,
            dense.approx_bytes(),
            f"{dense.occupancy():.4f}",
            us(sparse_us),
            us(dense_us),
        ]
    )

    # The Section 6 lesson, as assertions: dense memory explodes with the
    # global event population while the sparse form is flat.
    if global_events >= 256:
        assert dense.approx_bytes() > sparse_bytes * 10
    assert dense.used_cells() == fsm.transition_count()


def teardown_module(module):
    emit_table(
        "E4",
        f"transition-function representation for {EXPRESSION!r}",
        [
            "global events",
            "states",
            "transitions",
            "sparse bytes",
            "dense bytes",
            "dense occupancy",
            "sparse us/move",
            "dense us/move",
        ],
        _RESULTS,
        notes=(
            "Section 6: dense arrays sized by the global event space are "
            "'very space inefficient'; Ode chose sparse per-state lists."
        ),
    )
