"""E5 — disk Ode vs MM-Ode: the same workload on both storage managers.

Section 5.6: Ode runs on the disk-based EOS manager, MM-Ode on the
main-memory Dali manager, sharing the object-manager and trigger code.
This bench runs the identical credit-card workload (with DenyCredit
active, so the full posting path executes) against both engines and a
non-durable main-memory configuration.

Expected shape: mm (non-durable) > mm (durable, logging only) > disk
(logging + pages + buffer pool), with identical workload outcomes on all
three — the code above the storage manager is shared.
"""

import pytest

from repro.objects.database import Database
from repro.workloads.credit_card import CreditCardWorkload

from benchmarks.common import emit_table, ratio, time_per_op, us

N_CARDS = 8
N_OPS = 300

_RESULTS: list[list[str]] = []
_OUTCOMES: dict[str, tuple] = {}


def _run_workload(tmp_path, engine, durable, tag):
    if engine == "mm" and not durable:
        db = Database.open(None, engine="mm", name=f"e5-{tag}", durable=False)
    else:
        db = Database.open(str(tmp_path / f"e5-{tag}"), engine=engine)
    try:
        workload = CreditCardWorkload(seed=1996)
        ptrs = workload.setup(db, N_CARDS, activate_deny=True)
        result = workload.run(db, ptrs, N_OPS, ops_per_txn=2)
        return result, db.storage.stats.snapshot()
    finally:
        db.close()


@pytest.mark.parametrize(
    "engine,durable,label",
    [
        ("disk", True, "disk (EOS-like)"),
        ("mm", True, "main-memory, durable (Dali-like)"),
        ("mm", False, "main-memory, volatile"),
    ],
)
def test_storage_engines(benchmark, tmp_path, engine, durable, label):
    holder = {}

    def run():
        holder["result"], holder["stats"] = _run_workload(
            tmp_path, engine, durable, f"{label}-{len(_RESULTS)}"
        )

    per_op = time_per_op(run, N_OPS, repeats=1)
    benchmark.pedantic(run, rounds=1, iterations=1)
    result = holder["result"]
    _OUTCOMES[label] = (result.buys, result.payments, result.denied)
    _RESULTS.append(
        [
            label,
            us(per_op),
            result.operations,
            result.denied,
            holder["stats"]["log_forces"],
            holder["stats"]["page_misses"],
        ]
    )


def teardown_module(module):
    emit_table(
        "E5",
        f"credit-card workload ({N_OPS} ops, {N_CARDS} cards, DenyCredit active)",
        ["engine", "us/op", "ops", "denied", "log forces", "page misses"],
        _RESULTS,
        notes=(
            "Section 5.6: the same object-manager and trigger code runs on "
            "both storage managers; outcomes are identical, only cost differs."
        ),
    )
    # Shared-code check: every engine computed the same workload outcome.
    assert len(set(_OUTCOMES.values())) == 1, _OUTCOMES
