"""E6 — triggers turn read access into write access.

Section 6: "We also discovered that triggers turn read access into write
access, increasing both the amount of time the transactions spend waiting
for locks and the likelihood of deadlock."

Since the multi-session refactor this experiment runs the *real* system:
N concurrent sessions over one shared in-memory database, interleaved by
the deterministic cooperative scheduler, each transaction dereferencing
hot objects and posting their observation events.  The two configurations
run **identical client code** — the only difference is whether ``Watch``
triggers were activated on the hot set, so every extra X lock, wait, and
deadlock is attributable to the trigger machinery itself.

Sweep: session count × triggers per object over a small hot set.
Expected shape: with 0 triggers the workload is share-everything — zero
waits, zero deadlocks at any session count.  With triggers, every posting
writes a persistent TriggerState (S→X upgrades under strict 2PL), so
waits appear and grow with both axes, and deadlock abort/retry kicks in
once several sessions upgrade on the same hot records.
"""

import pytest

from repro.workloads.locksim import HotObject, run_hot_set

from benchmarks.common import emit_table

HOT_OBJECTS = 6
TXNS = 120

_RESULTS: list[list[str]] = []


@pytest.mark.parametrize("cc", ["2pl", "mvcc"])
@pytest.mark.parametrize("sessions", [2, 8, 16])
@pytest.mark.parametrize("triggers", [0, 1, 3])
def test_lock_amplification(benchmark, sessions, triggers, cc):
    results = []

    def run():
        result = run_hot_set(
            HOT_OBJECTS,
            triggers,
            n_sessions=sessions,
            transactions=TXNS,
            seed=1996,
            trigger_cc=cc,
        )
        results.append(result)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    _RESULTS.append(
        [
            cc,
            sessions,
            triggers,
            result.s_locks,
            result.x_locks,
            result.lock_waits,
            f"{result.wait_fraction:.3f}",
            result.deadlock_aborts,
            result.state_writes,
            result.buffered_advances,
            result.conflicts,
        ]
    )

    assert result.committed == TXNS  # retries recover every victim
    if triggers == 0:
        assert result.x_locks == 0
        assert result.lock_waits == 0
        assert result.deadlock_aborts == 0
    elif cc == "2pl":
        assert result.x_locks > 0
        assert result.state_writes > 0
        if sessions > 1:
            assert result.lock_waits > 0  # the paper's added lock waiting
    else:
        # The §6 pathology eliminated: identical client code, triggers
        # active, and the posting path takes zero X locks — advances are
        # buffered and merged at commit (DESIGN.md §15).
        assert result.x_locks == 0
        assert result.lock_waits == 0
        assert result.deadlock_aborts == 0
        assert result.state_writes == 0
        assert result.buffered_advances > 0


def _static_predictions():
    """The ODE3xx analyzer's verdict on the workload class: which triggers
    amplify reads into writes (ODE300) and whether a deadlock cycle is
    predicted (ODE301).  Witness replay is off — the bench measures, the
    test suite confirms."""
    from repro.analysis import analyze_classes, infer_lock_footprint

    report = analyze_classes([HotObject], concurrency=True)
    amplifiers = sorted(
        str(d.location) for d in report.by_code("ODE300")
    )
    metatype = HotObject.__metatype__
    locksets = {
        f"{info.defining_type}.{info.name}": " -> ".join(
            str(step) for step in infer_lock_footprint(info, metatype).x_steps()
        )
        for info in metatype.trigger_infos
    }
    return amplifiers, bool(report.by_code("ODE301")), locksets


def teardown_module(module):
    amplifiers, cycle_predicted, locksets = _static_predictions()
    _RESULTS.sort(key=lambda row: (row[0], row[2], row[1]))
    for row in _RESULTS:
        cc, triggers, aborts = row[0], row[2], row[7]
        # ODE300/ODE301 model the 2PL advance path (X lock per state
        # write); under MVCC the amplification it predicts is engineered
        # away, so the prediction applies to the baseline scheme only.
        predicted = cycle_predicted and triggers > 0 and cc == "2pl"
        # A may-analysis is judged asymmetrically: an observed deadlock
        # the analyzer did not predict is a model failure; a prediction
        # with no observed deadlock just means contention stayed low.
        if predicted and aborts > 0:
            agreement = "hit"
        elif predicted:
            agreement = "unconfirmed"
        elif aborts > 0:
            agreement = "MISS"
        else:
            agreement = "ok"
        row.append("yes" if predicted else "no")
        row.append(agreement)
    offender_notes = "; ".join(
        f"{name} amplifies via {locksets.get(name, '?')}" for name in amplifiers
    )
    emit_table(
        "E6",
        f"lock amplification on a {HOT_OBJECTS}-object hot set "
        f"({TXNS} interleaved txns, real engine)",
        [
            "cc",
            "sessions",
            "triggers/obj",
            "S locks",
            "X locks",
            "lock waits",
            "wait frac",
            "deadlock aborts",
            "state writes",
            "buffered adv",
            "conflicts",
            "ODE301 pred",
            "agreement",
        ],
        _RESULTS,
        notes=(
            "Section 6: FSM advances write TriggerStates, so read-only "
            "transactions acquire X locks -> waits and deadlocks that a "
            "passive database never sees.  Identical client code in both "
            "configurations; deterministic cooperative interleaving.  The "
            "mvcc rows run the same workload with trigger_cc='mvcc' "
            "(DESIGN.md S15): advances buffer against copy-on-write state "
            "versions and merge at commit, so X locks, waits, and deadlock "
            "aborts all drop to zero.\n"
            f"Static analysis (lint --concurrency): ODE300 {offender_notes}; "
            "'hit' = predicted deadlock cycle observed, 'unconfirmed' = "
            "predicted but contention too low, 'MISS' would mean an "
            "unpredicted deadlock (model failure)."
        ),
    )
