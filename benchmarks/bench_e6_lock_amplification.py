"""E6 — triggers turn read access into write access.

Section 6: "We also discovered that triggers turn read access into write
access, increasing both the amount of time the transactions spend waiting
for locks and the likelihood of deadlock."

Simulated clients replay the exact lock traces the real posting path
issues (S on the object; with active triggers, additional X locks on each
persistent TriggerState) against one lock manager, round-robin, strict
2PL, deadlock-victim abort/retry.  Sweep: client count × triggers per
object over a small hot set.

Expected shape: with 0 triggers the workload is share-everything — zero
waits, zero deadlocks at any client count.  With triggers, waits appear
and grow with both axes, and deadlocks appear once several X locks are
taken per transaction.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.workloads.locksim import LockTraceSimulator, hot_set_workload

from benchmarks.common import emit_table

HOT_OBJECTS = 6
TXNS = 400

_RESULTS: list[list[str]] = []
_REGISTRY_NOTES: list[str] = []


@pytest.mark.parametrize("clients", [2, 8, 16])
@pytest.mark.parametrize("triggers", [0, 1, 3])
def test_lock_amplification(benchmark, clients, triggers):
    simulators = []

    def run():
        simulator = LockTraceSimulator(
            hot_set_workload(HOT_OBJECTS, triggers_per_object=triggers),
            n_clients=clients,
            seed=1996,
        )
        simulators.append(simulator)
        return simulator.run(TXNS)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    # Cross-check the simulator's own counters against the lock manager's
    # stats as seen through the metrics registry.
    registry = MetricsRegistry()
    registry.register_source("locks", simulators[-1].locks.stats)
    snap = registry.snapshot()
    assert {"locks.s_acquired", "locks.x_acquired", "locks.waits", "locks.upgrades", "locks.deadlocks"} <= set(snap)
    assert snap["locks.deadlocks"] == result.aborted_deadlock
    _REGISTRY_NOTES.append(
        f"c={clients} t={triggers}: "
        + ", ".join(
            f"{key.split('.', 1)[1]}={snap[key]}"
            for key in sorted(snap)
            if key.startswith("locks.")
        )
    )
    _RESULTS.append(
        [
            clients,
            triggers,
            result.s_locks,
            result.x_locks,
            result.wait_steps,
            f"{result.wait_fraction:.3f}",
            result.aborted_deadlock,
        ]
    )

    if triggers == 0:
        assert result.x_locks == 0
        assert result.wait_steps == 0
        assert result.aborted_deadlock == 0
    elif clients > 1:
        assert result.x_locks > 0
        assert result.wait_steps > 0  # the paper's added lock waiting


def teardown_module(module):
    _RESULTS.sort(key=lambda row: (row[1], row[0]))
    emit_table(
        "E6",
        f"lock amplification on a {HOT_OBJECTS}-object hot set ({TXNS} txns)",
        [
            "clients",
            "triggers/obj",
            "S locks",
            "X locks",
            "wait steps",
            "wait frac",
            "deadlock aborts",
        ],
        _RESULTS,
        notes=(
            "Section 6: FSM advances write TriggerStates, so read workloads "
            "acquire X locks -> waits and deadlocks that a passive database "
            "never sees.\nregistry locks.* per configuration:\n  "
            + "\n  ".join(_REGISTRY_NOTES)
        ),
    )
