"""E7 — the cost of each coupling mode (Sections 4.2, 5.5).

One trigger per mode, same trivial action, fired repeatedly: *immediate*
runs inline during posting; *end* queues and runs during commit
processing; *dependent* and *!dependent* each spawn a system transaction
after commit.  The abort path is also measured: !dependent still runs,
dependent is discarded.

Expected shape: immediate ≈ end < dependent ≈ !dependent (the detached
modes pay a whole extra transaction), and the abort path costs the
!dependent system transaction even though the user transaction rolled
back.
"""

import pytest

from repro.core.declarations import trigger
from repro.errors import TransactionAbort
from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field

from benchmarks.common import emit_table, time_per_op, us

FIRINGS = 150

_RESULTS: list[list[str]] = []

COUNTS = {"immediate": 0, "end": 0, "dependent": 0, "!dependent": 0}


def _make(mode_key):
    def action(self, ctx):
        COUNTS[mode_key] += 1

    return action


class Fireable(Persistent):
    n = field(int, default=0)

    __events__ = ["Go"]
    __triggers__ = [
        trigger("Imm", "Go", action=_make("immediate"), perpetual=True),
        trigger("End", "Go", action=_make("end"), coupling="end", perpetual=True),
        trigger(
            "Dep", "Go", action=_make("dependent"), coupling="dependent",
            perpetual=True,
        ),
        trigger(
            "Indep", "Go", action=_make("!dependent"), coupling="!dependent",
            perpetual=True,
        ),
    ]


@pytest.fixture
def db(tmp_path):
    database = Database.open(str(tmp_path / "e7"), engine="mm")
    yield database
    database.close()


def _target(db, activation):
    with db.transaction():
        handle = db.pnew(Fireable)
        getattr(handle, activation)()
        return handle.ptr


@pytest.mark.parametrize(
    "activation,label",
    [
        ("Imm", "immediate"),
        ("End", "end (deferred)"),
        ("Dep", "dependent"),
        ("Indep", "!dependent"),
    ],
)
def test_coupling_mode_cost(benchmark, db, activation, label):
    ptr = _target(db, activation)

    def fire_many():
        for _ in range(FIRINGS):
            with db.transaction():
                db.deref(ptr).post_event("Go")

    per_firing = time_per_op(fire_many, FIRINGS, repeats=2)
    benchmark.pedantic(fire_many, rounds=1, iterations=1)
    _RESULTS.append([label, "commit", us(per_firing)])


def test_abort_path(benchmark, db):
    dep_ptr = _target(db, "Dep")
    indep_ptr = _target(db, "Indep")
    before = dict(COUNTS)

    def fire_and_abort(ptr):
        def body():
            for _ in range(FIRINGS):
                with db.transaction():
                    db.deref(ptr).post_event("Go")
                    raise TransactionAbort()

        return body

    dep_us = time_per_op(fire_and_abort(dep_ptr), FIRINGS, repeats=1)
    indep_us = time_per_op(fire_and_abort(indep_ptr), FIRINGS, repeats=1)
    benchmark.pedantic(fire_and_abort(indep_ptr), rounds=1, iterations=1)
    _RESULTS.append(["dependent", "abort", us(dep_us)])
    _RESULTS.append(["!dependent", "abort", us(indep_us)])

    # Semantics: dependent actions died with the aborts, !dependent ran.
    assert COUNTS["dependent"] == before["dependent"]
    assert COUNTS["!dependent"] > before["!dependent"]


def teardown_module(module):
    emit_table(
        "E7",
        f"per-firing cost by coupling mode ({FIRINGS} firings each)",
        ["coupling mode", "txn outcome", "us/firing"],
        _RESULTS,
        notes=(
            "Detached modes pay a full system transaction per batch; "
            "!dependent also runs on the abort path (Section 5.5)."
        ),
    )
