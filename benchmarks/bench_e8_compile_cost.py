"""E8 — FSM recompilation cost vs use (the Section 5.1.3 decision).

Ode compiles every trigger's FSM "every time we compile an O++ program"
instead of persisting FSMs in a central database.  The decision is sound
iff compilation is cheap relative to a program's trigger *use*.  We
measure compile time for an expression family against the cost of a
realistic amount of posting through the compiled machine.

Expected shape: compiling even the largest expression costs on the order
of a few hundred postings — amortized to noise over any real session —
supporting the recompile-always design.
"""

import pytest

from repro.events.compile import compile_expression
from repro.workloads.streams import generate_stream

from benchmarks.common import emit_table, time_per_op, us

DECLS = [f"E{i}" for i in range(6)]

FAMILY = [
    ("tiny", "E0"),
    ("sequence", "E0, E1, E2"),
    ("union+mask", "(E0 & m1) || (E1 & m2)"),
    ("figure-1", "relative((E0 & m1), E1)"),
    ("large", "+(E0 || E1), *(E2 || E3), (E4 & m1), relative(E0, E5)"),
]

POSTS = 1_000

_RESULTS: list[list[str]] = []


@pytest.mark.parametrize("label,text", FAMILY)
def test_compile_vs_use(benchmark, label, text):
    compile_us = time_per_op(
        lambda: compile_expression(text, DECLS), 1, repeats=5
    )
    compiled = compile_expression(text, DECLS)
    stream = generate_stream(DECLS, POSTS, seed=1996)

    def post_all():
        state = compiled.fsm.start
        advance = compiled.fsm.advance
        for symbol in stream:
            state = advance(state, symbol, _false).state

    post_us = time_per_op(post_all, POSTS)
    benchmark.pedantic(post_all, rounds=2, iterations=1)

    breakeven = compile_us / post_us if post_us else float("inf")
    _RESULTS.append(
        [label, len(compiled.fsm), us(compile_us), us(post_us), f"{breakeven:.0f}"]
    )


def _false(mask):
    return False


def teardown_module(module):
    emit_table(
        "E8",
        "FSM compilation cost vs per-event advance cost",
        ["expression", "states", "compile us", "advance us/event", "break-even posts"],
        _RESULTS,
        notes=(
            "Section 5.1.3: compiling FSMs with every program is cheap — a "
            "machine pays for its compilation within a few hundred postings, "
            "so no central FSM database is warranted."
        ),
    )
