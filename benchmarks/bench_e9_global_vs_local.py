"""E9 — persistent (global) trigger state vs transient local rules.

Section 7 contrasts Ode and Sentinel: "Ode stores TriggerStates in the
database, while Sentinel stores its corresponding structures in transient
program memory" — persistence is what makes Ode's composite events *global*
(they span applications), but every FSM advance becomes a database write.
Section 8 proposes *local rules* as the cheap transient alternative.

This bench runs the identical trigger (same expression, same masks) once
as a persistent Ode trigger and once as a local rule, measuring per-event
posting cost; it also demonstrates the capability difference: the
persistent trigger's half-matched state survives a session cycle, the
local rule's does not.

Expected shape: local rules are an order of magnitude cheaper per event
(no record read/write, no locks, no log), which is exactly why the paper
wants both.
"""

import pytest

from repro.core.declarations import trigger
from repro.core.monitored import LocalTriggerSystem
from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field

from benchmarks.common import emit_table, ratio, time_per_op, us

EVENTS = 1_000


class Tracked(Persistent):
    hits = field(int, default=0)

    __events__ = ["Ping", "Pong"]
    __triggers__ = [
        trigger(
            "PingPong",
            "Ping, Pong",
            action=lambda self, ctx: None,
            perpetual=True,
        )
    ]


def test_global_vs_local_cost(benchmark, tmp_path):
    db = Database.open(str(tmp_path / "e9"), engine="mm")
    try:
        with db.transaction():
            handle = db.pnew(Tracked)
            ptr = handle.ptr
            handle.PingPong()

        def persistent_posts():
            with db.transaction():
                h = db.deref(ptr)
                for i in range(EVENTS):
                    h.post_event("Ping" if i % 2 == 0 else "Pong")

        local = LocalTriggerSystem()
        volatile = Tracked()
        monitored = local.monitor(volatile)
        monitored.PingPong()

        def local_posts():
            for i in range(EVENTS):
                monitored.post_event("Ping" if i % 2 == 0 else "Pong")

        persistent_us = time_per_op(persistent_posts, EVENTS, repeats=2)
        local_us = time_per_op(local_posts, EVENTS, repeats=2)
        benchmark.pedantic(local_posts, rounds=2, iterations=1)

        emit_table(
            "E9",
            f"per-event posting cost, same trigger ({EVENTS} events)",
            ["trigger kind", "us/event", "vs local"],
            [
                ["persistent TriggerState (global events)", us(persistent_us), ratio(persistent_us, local_us)],
                ["transient local rule", us(local_us), "1.00x"],
            ],
            notes=(
                "Persistent state buys cross-application composite events at "
                "the price of a record write per FSM advance; local rules "
                "(Section 8) are the cheap intra-transaction alternative."
            ),
        )
        assert local_us < persistent_us
    finally:
        db.close()


def test_global_state_survives_sessions_local_does_not(benchmark, tmp_path):
    path = str(tmp_path / "e9b")
    db = Database.open(path, engine="disk")
    with db.transaction():
        handle = db.pnew(Tracked)
        ptr = handle.ptr
        handle.PingPong()
    with db.transaction():
        db.deref(ptr).post_event("Ping")  # half of the composite
    db.close()

    def reopen_and_finish():
        db2 = Database.open(path, engine="disk")
        with db2.transaction():
            (_, tstate, _) = db2.trigger_system.active_triggers(ptr)[0]
            armed = tstate.statenum
        db2.close()
        return armed

    armed_state = benchmark.pedantic(reopen_and_finish, rounds=1, iterations=1)
    # The machine is *not* in its start state after the session cycle: the
    # half-match survived, which transient (Sentinel/local) state cannot do.
    info = Tracked.__metatype__.trigger_by_name("PingPong")
    assert armed_state != info.fsm.start
