"""F1 — regenerate paper Figure 1: the FSM for AutoRaiseLimit.

The paper's only figure shows the extended machine compiled from
``relative((after Buy & MoreCred()), after PayBill)``: four states, state 0
the start, state 1 the mask state (marked ``*``), state 3 the accept state,
with the ``False`` edge returning to state 0 and the middle state looping
on ``BigBuy || after Buy``.  This bench compiles the expression (timed),
asserts the exact structure, and prints the machine as a transition table.
"""

from repro.events.compile import compile_expression

from benchmarks.common import emit_table

DECLS = ["BigBuy", "after PayBill", "after Buy"]
EXPRESSION = "relative((after Buy & MoreCred()), after PayBill)"


def _compile():
    return compile_expression(EXPRESSION, DECLS, known_masks=["MoreCred"])


def test_figure1_machine(benchmark):
    compiled = benchmark(_compile)
    fsm = compiled.fsm

    # --- structural assertions against the published figure ---------------
    assert len(fsm) == 4, "Figure 1 has exactly four states"
    assert fsm.start == 0
    assert fsm.mask_states() == [1], "state 1 is the (*) mask state"
    assert fsm.states[1].masks == ("MoreCred",)
    accepts = fsm.accept_states()
    assert len(accepts) == 1, "one accept state (paper state 3)"
    accept = accepts[0]

    start = fsm.states[0]
    assert start.transitions["after Buy"] == 1
    assert start.transitions["BigBuy"] == 0, "state 0 loops on BigBuy"
    assert start.transitions["after PayBill"] == 0, "state 0 loops on PayBill"

    mask_state = fsm.states[1]
    assert mask_state.transitions["false:MoreCred"] == 0, "False edge -> state 0"
    armed = mask_state.transitions["true:MoreCred"]
    assert armed not in (0, 1)

    armed_state = fsm.states[armed]
    assert armed_state.transitions["BigBuy"] == armed, "loops on BigBuy"
    assert armed_state.transitions["after Buy"] == armed, "loops on after Buy"
    assert armed_state.transitions["after PayBill"] == accept

    accept_state = fsm.states[accept]
    assert accept_state.transitions["BigBuy"] == armed
    assert accept_state.transitions["after Buy"] == armed

    # --- emit the figure as a table ----------------------------------------
    rows = []
    for state in fsm.states:
        tags = []
        if state.statenum == fsm.start:
            tags.append("start")
        if state.masks:
            tags.append("* mask:" + ",".join(state.masks))
        if state.accept:
            tags.append("accept")
        edges = ", ".join(
            f"{symbol} -> {dst}" for symbol, dst in sorted(state.transitions.items())
        )
        rows.append([state.statenum, " ".join(tags) or "-", edges])
    emit_table(
        "F1",
        f"Figure 1 regenerated: {EXPRESSION}",
        ["state", "role", "transitions"],
        rows,
        notes=(
            "Matches the paper: 4 states; state 1 evaluates MoreCred and "
            "falls back to state 0 on False; the armed state loops on "
            "BigBuy || after Buy; after PayBill accepts."
        ),
    )
