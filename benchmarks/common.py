"""Shared infrastructure for the experiment harness.

Every experiment prints a table (the "rows/series" its DESIGN.md entry
promises) and appends the same text to ``bench_results/<experiment>.txt``
so EXPERIMENTS.md can quote measured numbers even when pytest captures
stdout.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "bench_results")


def emit_table(
    experiment: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: str = "",
) -> str:
    """Format, print, and persist one experiment table."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def fmt(cells):
        return " | ".join(str(c).ljust(widths[i]) for i, c in enumerate(cells))

    lines = [f"== {experiment}: {title} ==", fmt(headers), "-+-".join("-" * w for w in widths)]
    lines += [fmt(row) for row in rows]
    if notes:
        lines.append(notes)
    text = "\n".join(lines)
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{experiment}.txt"), "w") as fh:
        fh.write(text + "\n")
    return text


def time_per_op(fn: Callable[[], object], ops: int, repeats: int = 3) -> float:
    """Best-of-*repeats* wall time per operation, in microseconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best / ops * 1e6


def us(value: float) -> str:
    """Format a microsecond figure."""
    return f"{value:8.3f}"


def ratio(a: float, b: float) -> str:
    """a/b as 'N.NNx' (guarding zero)."""
    if b == 0:
        return "inf"
    return f"{a / b:.2f}x"
