#!/usr/bin/env python3
"""The Section 8 extensions in one scenario: an order-processing pipeline.

* **Constraints as triggers** — inventory can never go negative and orders
  can never exceed stock; violations abort the offending transaction.
* **Timed triggers** — an order not paid within its deadline produces a
  ``Timeout`` event; the composite ``(after place, Timeout) & unpaid``
  escalates it.
* **Monitored (volatile) classes / local rules** — a session-local rate
  meter with triggers but zero persistent storage and zero lock traffic.

Usage: python examples/constraints_and_timers.py
"""

import shutil
import tempfile

from repro import Database, Persistent, field, trigger
from repro.core.monitored import LocalTriggerSystem, Monitored
from repro.core.timers import TimerService
from repro.errors import ConstraintViolationError


class Inventory(Persistent):
    stock = field(int, default=0)

    __events__ = ["after receive", "after reserve"]
    __constraints__ = {
        "non_negative_stock": lambda self: self.stock >= 0,
    }

    def receive(self, qty: int) -> None:
        self.stock += qty

    def reserve(self, qty: int) -> None:
        self.stock -= qty


class Order(Persistent):
    item_qty = field(int, default=0)
    paid = field(bool, default=False)
    escalations = field(int, default=0)

    __events__ = ["after place", "after pay", "Timeout"]
    __masks__ = {"unpaid": lambda self: not self.paid}
    __triggers__ = [
        trigger(
            "EscalateUnpaid",
            "(after place, Timeout) & unpaid",
            action=lambda self, ctx: self.escalate(),
            perpetual=True,
            # `lint --concurrency` findings, acknowledged: place() and the
            # Timeout user event are read-only posts, yet each advance
            # writes the TriggerState back (ODE300 — the paper's Section 6
            # amplification), and that S->X write-back under the object
            # and index locks is exactly the upgrade/ordering deadlock
            # pattern (ODE301/ODE302).  Acceptable here: escalation is a
            # demo timer, not a hot path.
            suppress=("ODE300", "ODE301", "ODE302"),
        )
    ]

    def place(self) -> None:
        pass

    def pay(self) -> None:
        self.paid = True

    def escalate(self) -> None:
        self.escalations += 1


class RateMeter(Monitored):
    """Volatile: lives only for this session, still has triggers."""

    __events__ = ["after tick"]
    __masks__ = {"hot": lambda self: self.count >= 5}
    __triggers__ = [
        trigger(
            "Throttle",
            "after tick & hot",
            action=lambda self, ctx: print("  >> local rule: rate high, throttling"),
        )
    ]

    def __init__(self):
        self.count = 0

    def tick(self):
        self.count += 1


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="ode-ext-")
    db = Database.open(f"{workdir}/orders", engine="mm")

    # --- constraints --------------------------------------------------------
    print("--- constraints as triggers ---")
    with db.transaction():
        inventory = db.pnew(Inventory, stock=0)
        inv_ptr = inventory.ptr
        inventory.receive(10)
    try:
        with db.transaction():
            db.deref(inv_ptr).reserve(25)  # would go negative
    except ConstraintViolationError as exc:
        print(f"rejected: {exc}")
    with db.transaction():
        print(f"stock unchanged: {db.deref(inv_ptr).stock}")

    # --- timed triggers ------------------------------------------------------
    print("\n--- timed triggers ---")
    timers = TimerService(db)
    with db.transaction():
        paid_order = db.pnew(Order, item_qty=2)
        late_order = db.pnew(Order, item_qty=5)
        paid_ptr, late_ptr = paid_order.ptr, late_order.ptr
        paid_order.EscalateUnpaid()
        late_order.EscalateUnpaid()
        paid_order.place()
        late_order.place()
    timers.schedule(paid_ptr, "Timeout", delay=24.0)
    timers.schedule(late_ptr, "Timeout", delay=24.0)
    with db.transaction():
        db.deref(paid_ptr).pay()  # pays before the deadline
    fired = timers.advance_to(25.0)
    with db.transaction():
        print(f"timers fired:              {fired}")
        print(f"paid order escalations:    {db.deref(paid_ptr).escalations}")
        print(f"late order escalations:    {db.deref(late_ptr).escalations}")

    # --- monitored volatile class -------------------------------------------
    print("\n--- monitored (volatile) class / local rules ---")
    local = LocalTriggerSystem()
    meter = RateMeter()
    handle = local.monitor(meter)
    handle.Throttle()
    for _ in range(6):
        handle.tick()
    print(
        f"local system: {local.stats.events_posted} events posted, "
        f"{local.stats.state_writes} storage writes (always zero)"
    )

    db.close()
    shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
