#!/usr/bin/env python3
"""Fraud monitoring — composite-event rules over the credit-card workload.

Demonstrates the full coupling-mode palette on a realistic monitoring task:

* ``VelocityAlert`` (immediate): three purchases with no intervening
  payment — a classic card-testing pattern — flags the card at once.
* ``BigSpender`` (end/deferred): a large single purchase is re-checked at
  commit time, after the whole transaction's effects are in place.
* ``CaseFile`` (!dependent): opening a fraud case runs in a *separate*
  transaction, so the case survives even when the suspicious transaction
  itself is aborted — exactly what an investigator wants.
* Transaction events: every card touched by a transaction gets a
  ``before tcomplete`` consistency stamp.

Usage: python examples/fraud_monitoring.py [n_ops]
"""

import shutil
import sys
import tempfile

from repro import Database, Persistent, field, trigger
from repro.errors import TransactionAbort
from repro.objects.oid import NULL_PTR, PersistentPtr
from repro.workloads.credit_card import CreditCardWorkload


class FraudDesk(Persistent):
    cases = field(list, default=[])

    def open_case(self, note: str) -> None:
        self.cases = self.cases + [note]


class MonitoredCard(Persistent):
    holder = field(str, default="")
    curr_bal = field(float, default=0.0)
    flags = field(int, default=0)
    stamps = field(int, default=0)
    desk = field(PersistentPtr, default=NULL_PTR)

    __events__ = [
        "after buy",
        "after pay_bill",
        "before tcomplete",
    ]
    __masks__ = {
        "big": lambda self: self.curr_bal > 5000.0,
    }

    def _velocity(self, ctx):
        self.flags += 1

    def _big_spender(self, ctx):
        self.flags += 1

    def _case_file(self, ctx):
        desk = ctx.db.deref(self.desk)
        desk.open_case(f"card of {self.holder}: suspicious volume")

    def _stamp(self, ctx):
        self.stamps += 1

    # Because this class declares interest in `before tcomplete`, commit
    # events appear in each card's event stream (paper Section 5.1) — so a
    # cross-transaction purchase run must explicitly skip them with
    # `*(before tcomplete)`.  A payment still breaks the run.
    # Every trigger below also acknowledges the `lint --concurrency`
    # trio: commit events (`before tcomplete`) are posted by read-only
    # transactions too, yet any FSM advance writes the TriggerState back
    # (ODE300, the paper's Section 6 amplification), and that S->X
    # write-back under the object/index locks is the standard upgrade and
    # lock-order deadlock exposure (ODE301/ODE302).  Fraud monitoring
    # wants per-card state on the hot path; the cost is the feature.
    _CONCURRENCY_OK = ("ODE300", "ODE301", "ODE302")
    _BUY_GAP = ", *(before tcomplete), "
    __triggers__ = [
        trigger(
            "VelocityAlert",
            _BUY_GAP.join(["after buy"] * 3),
            action=_velocity,
            perpetual=True,
            suppress=_CONCURRENCY_OK,
        ),
        trigger(
            "BigSpender",
            "after buy & big",
            action=_big_spender,
            coupling="end",
            perpetual=True,
            suppress=_CONCURRENCY_OK,
        ),
        trigger(
            "CaseFile",
            _BUY_GAP.join(["after buy"] * 4),
            action=_case_file,
            coupling="!dependent",  # once-only: one case per activation
            # The linter correctly notes every CaseFile detection also
            # fires VelocityAlert (4 buys ⊇ 3 buys) — that escalation is
            # the point, so the ODE020 overlap is acknowledged.
            suppress=("ODE020",) + _CONCURRENCY_OK,
        ),
        trigger(
            "ConsistencyStamp",
            "before tcomplete",
            action=_stamp,
            perpetual=True,
            suppress=_CONCURRENCY_OK,
        ),
    ]

    def buy(self, store, amount: float) -> None:
        self.curr_bal += amount

    def pay_bill(self, amount: float) -> None:
        self.curr_bal -= amount


def main(n_ops: int = 120) -> None:
    workdir = tempfile.mkdtemp(prefix="ode-fraud-")
    db = Database.open(f"{workdir}/fraud", engine="disk")

    with db.transaction():
        desk = db.pnew(FraudDesk)
        desk_ptr = desk.ptr
        card = db.pnew(MonitoredCard, holder="pat", desk=desk_ptr)
        card_ptr = card.ptr
        for name in ("VelocityAlert", "BigSpender", "CaseFile", "ConsistencyStamp"):
            getattr(card, name)()

    # A burst of purchases, one per transaction.
    amounts = [120.0, 80.0, 220.0, 3000.0, 2500.0, 90.0]
    for amount in amounts:
        with db.transaction():
            db.deref(card_ptr).buy(None, amount)

    with db.transaction():
        card = db.deref(card_ptr)
        desk = db.deref(desk_ptr)
        print(f"purchases:       {len(amounts)}")
        print(f"balance:         {card.curr_bal:.2f}")
        print(f"fraud flags:     {card.flags} (velocity runs + big-spender)")
        print(f"commit stamps:   {card.stamps}")
        print(f"open cases:      {desk.cases}")

    # The detached case survives an aborted transaction.
    print("\n--- aborted transaction still opens a case (!dependent) ---")
    with db.transaction():
        db.deref(card_ptr).CaseFile()  # re-arm the once-only trigger
    with db.transaction():
        handle = db.deref(card_ptr)
        for _ in range(4):
            handle.buy(None, 10.0)  # 4 buys in one txn fire CaseFile again
        raise TransactionAbort("customer cancelled")
    with db.transaction():
        card = db.deref(card_ptr)
        desk = db.deref(desk_ptr)
        print(f"balance (rolled back): {card.curr_bal:.2f}")
        print(f"cases (kept):          {len(desk.cases)}")

    db.close()
    shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 120)
