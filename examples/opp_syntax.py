#!/usr/bin/env python3
"""Declaring triggers in the paper's own O++ syntax.

The `repro.opp` mini-compiler accepts the Section 4 declaration surface —
``persistent class``, ``event``, ``trigger ... ==> action``, ``tabort``,
coupling keywords, constraints — and produces a live class.  Combined with
the disk engine's B-tree indexes, this example runs a small warehouse:

* ``Reorder`` — a deferred trigger that files a restock order when an item
  is picked below its reorder point,
* ``NoOverpick`` — a constraint keeping stock non-negative (violations
  abort the picking transaction),
* an index on ``stock`` supporting "what is low right now?" range queries.

Usage: python examples/opp_syntax.py
"""

import shutil
import tempfile

from repro import Database
from repro.errors import ConstraintViolationError
from repro.opp import compile_opp_class

RESTOCKS = []

WAREHOUSE_ITEM = """
persistent class WarehouseItem {
    str name;
    int stock = 0;
    int reorder_point = 10;
    event after receive, after pick;
    trigger Reorder() : perpetual end
        after pick & below_reorder ==> file_restock();
    constraint no_overpick : non_negative;
}
"""


def main() -> None:
    Item = compile_opp_class(
        WAREHOUSE_ITEM,
        methods={
            "receive": lambda self, qty: setattr(self, "stock", self.stock + qty),
            "pick": lambda self, qty: setattr(self, "stock", self.stock - qty),
            "file_restock": lambda self: RESTOCKS.append(self.name),
        },
        masks={
            "below_reorder": lambda self: self.stock < self.reorder_point,
            "non_negative": lambda self: self.stock >= 0,
        },
    )

    workdir = tempfile.mkdtemp(prefix="ode-opp-")
    db = Database.open(f"{workdir}/warehouse", engine="disk")

    with db.transaction():
        db.create_index(Item, "stock")
        items = {}
        for name, qty in [("bolts", 100), ("nuts", 12), ("washers", 50)]:
            handle = db.pnew(Item, name=name, stock=qty)
            handle.Reorder()
            items[name] = handle.ptr

    # Normal picking; `nuts` crosses its reorder point.
    with db.transaction():
        db.deref(items["bolts"]).pick(20)
        db.deref(items["nuts"]).pick(5)  # 12 -> 7 < 10: deferred Reorder
    print(f"restock orders filed at commit: {RESTOCKS}")

    # The constraint rejects an over-pick; the transaction rolls back.
    try:
        with db.transaction():
            db.deref(items["washers"]).pick(75)
    except ConstraintViolationError as exc:
        print(f"over-pick rejected: {exc}")
    with db.transaction():
        print(f"washers stock unchanged: {db.deref(items['washers']).stock}")

    # Index-backed range query: what is low right now?
    with db.transaction():
        low = [
            (h.name, h.stock) for h in db.find_range(Item, "stock", None, 10)
        ]
        print(f"items at or below 10 units: {low}")

    db.close()
    shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
