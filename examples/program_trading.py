#!/usr/bin/env python3
"""Program trading — the paper's motivating domain (Sections 1 and 8).

Three kinds of active behaviour over a simulated tick stream:

1. An *intra-object* pattern trigger: three consecutive rising ticks on a
   stock produce a momentum signal (composite event with masks).
2. The paper's *inter-object* future-work example: "if AT&T goes below 60
   and the price of gold stabilizes, buy 1000 shares of AT&T" — built from
   bridge triggers and a hidden coordinator object.
3. A detached (!dependent) audit trigger that records every trade in a
   separate transaction, surviving even if the trading transaction aborts.

Usage: python examples/program_trading.py [n_ticks]
"""

import shutil
import sys
import tempfile

from repro import Database, Persistent, field, trigger
from repro.core.interobject import InterObjectTrigger
from repro.workloads.trading import Portfolio, Stock, TickStream


class SignalStock(Stock):
    """Stock emitting momentum signals on three consecutive rises."""

    signals = field(int, default=0)

    __triggers__ = [
        trigger(
            "Momentum",
            "(after set_price & rising), (after set_price & rising), "
            "(after set_price & rising)",
            action=lambda self, ctx: self.record_signal(),
            perpetual=True,
            # Acknowledged Section 6 amplification: posting the (read-only)
            # Halted user event still rewinds this scan machine, so even a
            # reader takes X on the TriggerState (ODE300) — and the state
            # write-back carries the usual upgrade/order deadlock exposure
            # (ODE301/ODE302).  A momentum signal is inherently stateful;
            # the cost is accepted.
            suppress=("ODE300", "ODE301", "ODE302"),
        )
    ]

    def record_signal(self) -> None:
        self.signals += 1


class AuditLog(Persistent):
    entries = field(list, default=[])

    __events__ = ["TradeDone"]
    __triggers__ = [
        trigger(
            "Audit",
            "TradeDone",
            action=lambda self, ctx: self.append_entry(),
            coupling="!dependent",  # separate txn, survives aborts
            perpetual=True,
            # Acknowledged: posting TradeDone is read-only for the caller,
            # yet the perpetual machine's state write-back still happens in
            # the *posting* transaction — only the action is detached — so
            # Section 6 amplification (ODE300) and the S->X upgrade with
            # its deadlock exposure (ODE301/ODE302) remain.  An audit log
            # is contended by design.
            suppress=("ODE300", "ODE301", "ODE302"),
        )
    ]

    def append_entry(self) -> None:
        self.entries = self.entries + ["trade recorded"]


def main(n_ticks: int = 400) -> None:
    workdir = tempfile.mkdtemp(prefix="ode-trading-")
    db = Database.open(f"{workdir}/market", engine="mm")

    with db.transaction():
        att = db.pnew(SignalStock, symbol="T", price=62.0, prev_price=62.0)
        gold = db.pnew(Stock, symbol="GC", price=2000.0, prev_price=2000.0)
        desk = db.pnew(Portfolio, owner="desk-1", cash=100_000.0)
        audit = db.pnew(AuditLog)
        att_ptr, gold_ptr = att.ptr, gold.ptr
        desk_ptr, audit_ptr = desk.ptr, audit.ptr
        att.Momentum()
        audit.Audit()

    # The paper's inter-object trigger, verbatim.
    def buy_att(coordinator, ctx):
        anchors = ctx.params["anchors"]
        portfolio = ctx.db.deref(desk_ptr)
        att_stock = ctx.db.deref(anchors["att_low"])
        portfolio.buy_shares("T", 1000, att_stock.price)
        ctx.db.deref(audit_ptr).post_event("TradeDone")
        print(
            f"  >> inter-object trigger fired: bought 1000 T @ "
            f"{att_stock.price:.2f}"
        )

    InterObjectTrigger(
        db,
        "buy_att_on_dip",
        anchors={
            "att_low": (att_ptr, "after set_price & below60"),
            "gold_stable": (gold_ptr, "after set_price & stable"),
        },
        expression="(att_low, gold_stable) || (gold_stable, att_low)",
        action=buy_att,
        anchor_masks={
            "att_low": {"below60": lambda self: self.price < 60.0},
            "gold_stable": {
                "stable": lambda self: self.prev_price != 0.0
                and abs(self.price - self.prev_price) / self.prev_price < 0.002
            },
        },
    )

    # Drive a seeded random walk through both stocks.
    stream = TickStream({"T": 62.0, "GC": 2000.0}, seed=1996, volatility=0.012)
    stream.apply(db, {"T": att_ptr, "GC": gold_ptr}, n_ticks, ticks_per_txn=5)

    with db.transaction():
        att_final = db.deref(att_ptr)
        desk_final = db.deref(desk_ptr)
        audit_final = db.deref(audit_ptr)
        print(f"ticks applied:        {n_ticks}")
        print(f"final T price:        {att_final.price:.2f}")
        print(f"momentum signals:     {att_final.signals}")
        print(f"desk positions:       {desk_final.positions}")
        print(f"desk cash:            {desk_final.cash:.2f}")
        print(f"audit entries:        {len(audit_final.entries)}")
        print(f"trade log:            {desk_final.trade_log}")
    db.close()
    shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
