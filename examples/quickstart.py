#!/usr/bin/env python3
"""Quickstart — the paper's Section 4 credit-card example, end to end.

Runs the exact scenario the paper narrates:

* ``DenyCredit`` — a perpetual immediate trigger whose composite event is
  ``after buy & (curr_bal > cred_lim)``; on firing it black-marks the
  customer and ``tabort``s the purchase.
* ``AutoRaiseLimit(amount)`` — a once-only trigger on
  ``relative((after buy & MoreCred()), after pay_bill)`` that raises the
  limit when the customer runs near it with a clean history.

Usage: python examples/quickstart.py
"""

import shutil
import tempfile

from repro import Database
from repro.workloads.credit_card import CredCard, Customer


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="ode-quickstart-")
    db = Database.open(f"{workdir}/bank", engine="disk")
    print(f"opened disk database at {workdir}/bank")

    # --- create a customer and card, activate the paper's two triggers ----
    with db.transaction():
        narain = db.pnew(Customer, name="Narain")
        card = db.pnew(CredCard, issued_to=narain.ptr, cred_lim=1000.0)
        card_ptr = card.ptr
        card.DenyCredit()  # trigger activation looks like a member call
        raise_id = card.AutoRaiseLimit(500.0)
        print(f"activated DenyCredit and AutoRaiseLimit -> TriggerId {raise_id}")

    # --- a normal purchase --------------------------------------------------
    with db.transaction():
        db.deref(card_ptr).buy(None, 300.0)
    with db.transaction():
        print(f"after $300 purchase: balance = {db.deref(card_ptr).curr_bal}")

    # --- an over-limit purchase: DenyCredit fires and aborts ----------------
    with db.transaction():
        db.deref(card_ptr).buy(None, 900.0)  # 300+900 > 1000 -> tabort
    with db.transaction():
        card = db.deref(card_ptr)
        print(
            f"after denied $900 purchase: balance = {card.curr_bal} "
            f"(transaction rolled back, black marks = {card.black_marks})"
        )

    # --- AutoRaiseLimit: run the balance near the limit, then pay ----------
    with db.transaction():
        db.deref(card_ptr).buy(None, 550.0)  # balance 850 > 80% of 1000
    with db.transaction():
        db.deref(card_ptr).pay_bill(100.0)  # relative(): any later pay_bill
    with db.transaction():
        card = db.deref(card_ptr)
        print(f"after near-limit buy + payment: credit limit = {card.cred_lim}")
        active = [
            info.name for _, _, info in db.trigger_system.active_triggers(card_ptr)
        ]
        print(f"still active (AutoRaiseLimit was once-only): {active}")

    # --- global composite events: a second "application" --------------------
    db.close()
    db2 = Database.open(f"{workdir}/bank", engine="disk")
    with db2.transaction():
        card = db2.deref(card_ptr)
        print(
            f"reopened database: limit={card.cred_lim}, "
            f"DenyCredit still armed across sessions"
        )
        card.buy(None, 2000.0)  # still denied in the new session
    with db2.transaction():
        print(f"balance after cross-session denial: {db2.deref(card_ptr).curr_bal}")
    db2.close()
    shutil.rmtree(workdir, ignore_errors=True)
    print("done.")


if __name__ == "__main__":
    main()
