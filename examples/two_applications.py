#!/usr/bin/env python3
"""Two applications, one database — a global composite event (paper §7).

Ode keeps trigger state *in the database*, not in the monitoring process,
so a composite event can span applications: "the database, rather than an
application, is being monitored".  This example runs two concurrent
sessions over one on-disk database:

* the **editor** session drafts a document — posting ``after draft`` arms
  the ``PublishWhenReviewed`` trigger (its FSM state is written to disk);
* the **reviewer** session — a different "application", its own
  transactions — reviews the document; posting ``after review`` completes
  the composite event ``relative(after draft, after review)``, and the
  trigger fires in the *reviewer's* transaction even though the first half
  of the event happened in the editor's.

The sessions then contend for the same record under the cooperative
scheduler: the reviewer blocks on the editor's write lock and is woken,
FIFO, by the editor's commit — the concurrency model of DESIGN.md §11.

Usage: python examples/two_applications.py
"""

import shutil
import tempfile

from repro import Database
from repro.core.declarations import trigger
from repro.objects.persistent import Persistent
from repro.objects.schema import field
from repro.sessions import CooperativeScheduler


def _publish(self, ctx) -> None:
    self.published = True


class Document(Persistent):
    """A document two applications collaborate on."""

    title = field(str, default="")
    revision = field(int, default=0)
    published = field(bool, default=False)

    __events__ = ["after draft", "after review"]
    __triggers__ = [
        trigger(
            "PublishWhenReviewed",
            "relative(after draft, after review)",
            action=_publish,
            perpetual=True,
            # Acknowledged `lint --concurrency` findings: review() posts
            # without writing, but the FSM advance takes X on the
            # TriggerState (ODE300 — the paper's Section 6 amplification),
            # and the action's publish write plus the state upgrade give
            # the usual ordering/upgrade deadlock exposure (ODE301/ODE302).
            # Two applications sharing one document is the demo's point.
            suppress=("ODE300", "ODE301", "ODE302"),
        ),
    ]

    def draft(self) -> None:
        self.revision += 1

    def review(self) -> None:
        pass  # the posting is the point


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="ode-two-apps-")
    db = Database.open(f"{workdir}/shared", engine="disk")
    print(f"opened disk database at {workdir}/shared")

    with db.transaction():
        doc = db.pnew(Document, title="Design notes")
        ptr = doc.ptr
        doc.PublishWhenReviewed()
    print("activated PublishWhenReviewed (state persisted to disk)")

    # --- two applications, each with its own session --------------------------
    editor = db.session("editor")
    reviewer = db.session("reviewer")

    with editor.transaction():
        editor.deref(ptr).draft()  # posts `after draft` -> FSM armed
    print("editor drafted: composite event is half-complete, on disk")

    with reviewer.transaction():
        reviewer.deref(ptr).review()  # posts `after review` -> trigger fires
    with db.transaction():
        doc = db.deref(ptr)
        print(
            f"reviewer reviewed: trigger fired in the reviewer's transaction "
            f"-> published={doc.published}"
        )

    # --- contention: the reviewer blocks on the editor's lock ------------------
    sched = CooperativeScheduler()
    seen = {}

    def editing():
        with editor.transaction():
            doc = editor.deref(ptr)
            doc.draft()  # X lock on the document until commit
            sched.yield_now()  # give the reviewer a turn: it blocks

    def reviewing():
        with reviewer.transaction():
            seen["revision"] = reviewer.deref(ptr).revision  # blocks, then reads

    sched.spawn(editing, "editor", session=editor)
    sched.spawn(reviewing, "reviewer", session=reviewer)
    sched.run()
    print(
        f"reviewer blocked on the editor's write lock, woke on commit, "
        f"read revision={seen['revision']}"
    )
    print(f"schedule: {sched.log}")

    db.close()
    shutil.rmtree(workdir, ignore_errors=True)
    print("done.")


if __name__ == "__main__":
    main()
