"""repro — a reproduction of the Ode active database (ICDE 1996).

    "Triggers are the basic ingredient of active databases.  Ode triggers
    are event-action pairs.  An event can be a composite event ...
    Composite events are detected by translating the event specifications
    into finite state machines."

Quickstart::

    from repro import Database, Persistent, field, trigger

    class CredCard(Persistent):
        cred_lim = field(float, default=5000.0)
        curr_bal = field(float, default=0.0)

        __events__ = ["after buy", "after pay_bill"]
        __masks__ = {"over_limit": lambda self: self.curr_bal > self.cred_lim}
        __triggers__ = [
            trigger("DenyCredit", "after buy & over_limit",
                    action=lambda self, ctx: ctx.tabort("over limit"),
                    perpetual=True),
        ]

        def buy(self, amount): self.curr_bal += amount
        def pay_bill(self, amount): self.curr_bal -= amount

    db = Database.open("/tmp/bank", engine="mm")
    with db.transaction():
        card = db.pnew(CredCard)
        card.DenyCredit()           # activate the trigger
        card.buy(100.0)             # posts `after buy`

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction of the paper's figure and claims.
"""

from repro.core import (
    CouplingMode,
    TriggerId,
    TriggerSystem,
    set_strict_analysis,
    strict_analysis_enabled,
    trigger,
)
from repro.errors import (
    ConstraintViolationError,
    DeadlockError,
    OdeError,
    TransactionAbort,
    TriggerError,
)
from repro.events import EventDecl, compile_expression, parse
from repro.objects import (
    NULL_PTR,
    Database,
    Persistent,
    PersistentHandle,
    PersistentPtr,
    field,
)

__version__ = "1.0.0"


def deactivate(trigger_id: "TriggerId") -> None:
    """Deactivate a trigger by its TriggerId (the paper's ``deactivate``).

    Resolves the owning database from the pointer, so it mirrors the O++
    free function: ``deactivate(AutoRaise);``.  Must run inside a
    transaction on that database.
    """
    Database.of(trigger_id).trigger_system.deactivate(trigger_id)

__all__ = [
    "NULL_PTR",
    "ConstraintViolationError",
    "CouplingMode",
    "Database",
    "DeadlockError",
    "EventDecl",
    "OdeError",
    "Persistent",
    "PersistentHandle",
    "PersistentPtr",
    "TransactionAbort",
    "TriggerError",
    "TriggerId",
    "TriggerSystem",
    "compile_expression",
    "deactivate",
    "field",
    "parse",
    "set_strict_analysis",
    "strict_analysis_enabled",
    "trigger",
]
