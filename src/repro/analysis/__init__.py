"""Static analysis of trigger declarations — the Ode trigger linter.

Because every ``event-expression ==> action`` compiles to an extended FSM
at declaration time, most trigger defects are statically decidable before
a single event is posted.  This package implements a diagnostics framework
(stable ``ODE0xx`` codes, severities, text/JSON renderers) and the passes
that produce them:

=========  =======  ==========================================================
code       level    meaning
=========  =======  ==========================================================
ODE001     warning  FSM state unreachable from the start state
ODE002     warning  FSM state with no path to an accept state (trap)
ODE003     error    trigger's language is empty — it can never fire
ODE010     warning  vacuous mask: its outcome cannot change behaviour
ODE011     warning  trigger-level mask predicate never used
ODE020     warning  trigger subsumed by another (language inclusion)
ODE021     warning  two triggers accept identical languages
ODE030     error    unbounded immediate cascade cycle (posts metadata)
ODE031     warning  unbounded cross-transaction cascade cycle
ODE032     warning  posts= names an unknown user event
ODE040     warning  tabort from a dependent/!dependent action
ODE041     warning  deferred trigger watches 'before tcomplete'
ODE050     warning  persistent trigger state stuck dead (database pass)
ODE051     info     trigger state's type not loaded — states skipped
ODE200     error    irrefutable inferred cascade cycle (no posts= declares it)
ODE201     warning  predicate-guarded cascade cycle (stops when mask is false)
ODE202     warning  non-confluent trigger pair: firing order is observable
ODE203     warning  stale posts=: the action never posts the declared event
ODE204     info     action posts a user event posts= does not declare
ODE205     info     stale suppress=: nothing to acknowledge at this trigger
ODE206     info     action source unavailable — effects degrade to unknown
ODE300     warning  trigger turns read access into write access (§6)
ODE301     warning  predicted lock-order deadlock cycle (CONFIRMED/POSSIBLE)
ODE302     warning  S→X lock upgrade while other locks are held
ODE310     warning  observed lock trace contradicts the static footprints
ODE400     info     impure mask — codegen withheld (compile tier)
ODE401     warning  mask references unresolvable free names
ODE402     info     FSM too large/dense to specialize into a table
ODE403     info     immediate action may re-enter posting mid-advance
ODE404     info     effects bottom out at unknown — compilability unprovable
=========  =======  ==========================================================

The ``ODE2xx`` passes rest on :mod:`repro.analysis.effects`, an
``ast``-based may-analysis of what each action *does* (attributes
read/written, members called, events posted, aborts), with a sound
``unknown`` widening for anything dynamic — see DESIGN.md §9.  The
opt-in ``ODE3xx`` concurrency passes (``analyze_classes(...,
concurrency=True)``, ``lint --concurrency``) lift those effect sets to
ordered lock footprints and predict Section 6 lock amplification and
deadlocks — see DESIGN.md §12 and :mod:`repro.analysis.concurrency`.
The opt-in ``ODE4xx`` compilability pass (``analyze_classes(...,
compilability=True)``, ``lint --compilable``) judges which triggers the
generated-code posting tier (:mod:`repro.core.compiled`) may specialize;
an ODE4xx finding is advisory — the flagged trigger simply keeps posting
through the interpreter — see DESIGN.md §14 and
:mod:`repro.analysis.compilable`.

Entry points: :func:`analyze_class` / :func:`analyze_classes` for compiled
declarations, :func:`analyze_machine` for bare machines,
:func:`analyze_registry` for everything registered in the process,
:func:`analyze_database` for persistent trigger states, and
``python -m repro.analysis`` (or ``python -m repro.tools lint``) on the
command line.  ``repro.core.declarations.set_strict_analysis(True)`` (or a
class-level ``__strict_triggers__ = True``) makes declaration processing
itself reject findings.
"""

from repro.analysis.concurrency import (
    LockFootprint,
    LockStep,
    check_lock_trace,
    infer_lock_footprint,
    observed_lock_profile,
    static_lock_profile,
)
from repro.analysis.compilable import (
    CompilabilityVerdict,
    check_compilability,
    classify_trigger,
)
from repro.analysis.confluence import non_confluent_pairs
from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    Location,
    Severity,
    render_json,
    render_text,
)
from repro.analysis.effects import EffectSet, infer_callable_effects, infer_trigger_effects
from repro.analysis.runner import (
    AnalysisReport,
    analyze_class,
    analyze_classes,
    analyze_database,
    analyze_machine,
    analyze_registry,
    analyze_trigger,
)

__all__ = [
    "CODES",
    "CompilabilityVerdict",
    "check_compilability",
    "classify_trigger",
    "EffectSet",
    "LockFootprint",
    "LockStep",
    "check_lock_trace",
    "infer_lock_footprint",
    "observed_lock_profile",
    "static_lock_profile",
    "infer_callable_effects",
    "infer_trigger_effects",
    "non_confluent_pairs",
    "Diagnostic",
    "Location",
    "Severity",
    "render_json",
    "render_text",
    "AnalysisReport",
    "analyze_class",
    "analyze_classes",
    "analyze_database",
    "analyze_machine",
    "analyze_registry",
    "analyze_trigger",
]
