"""Command-line interface: ``python -m repro.analysis <module-or-db> ...``.

Targets may be:

* a Python file (``examples/quickstart.py``) — imported, then every
  registered active class is analyzed;
* a directory of Python files — each is imported;
* a dotted module name (``repro.workloads.credit_card``);
* an existing database path — opened (``--engine``) and the *persistent*
  trigger states checked (ODE050) in addition to the registered classes.

A loaded module may also export ``__analysis_machines__``, a mapping of
name → :class:`~repro.events.fsm.Fsm`; those machines get the
machine-level passes (used by the test fixtures to seed raw machines the
compiler could never produce).

``--self-check DIR`` is the CI gate: import everything in DIR and demand
*zero* findings of any severity (exit 1 otherwise).

``--concurrency`` adds the opt-in ODE3xx lock-footprint pass (Section 6
amplification, predicted deadlock cycles with cooperative-scheduler
witness confirmation — disable replays with ``--no-confirm``).

``--compilable`` adds the opt-in ODE4xx compilability pass: which
triggers may the generated-code posting tier specialize, and a stable
diagnostic for every refusal (findings are advisory — flagged triggers
keep posting through the interpreter).

Exit-code contract (stable, for CI and external tooling):

* ``0`` — analysis ran; no finding at or above ``--fail-on`` (and, under
  ``--self-check``, no finding at all);
* ``1`` — analysis ran and findings crossed the threshold;
* ``2`` — a target could not be loaded (import error, missing path) —
  nothing was analyzed, so 2 must never be treated as "dirty but parsed".

Machine consumers should pass ``--format json`` and read the finding
array from stdout; diagnostics about the run itself go to stderr.
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import importlib.util
import os
import sys

from repro.analysis.diagnostics import CODES, Location, Severity
from repro.analysis.runner import (
    AnalysisReport,
    analyze_database,
    analyze_machine,
    analyze_registry,
)


def _load_file(path: str) -> object:
    name = "ode_analysis_target_" + os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path!r}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def _load_directory(path: str) -> list[object]:
    modules = []
    for entry in sorted(os.listdir(path)):
        if entry.endswith(".py") and not entry.startswith("_"):
            modules.append(_load_file(os.path.join(path, entry)))
    return modules


def _is_module_dir(path: str) -> bool:
    return os.path.isdir(path) and any(
        entry.endswith(".py") for entry in os.listdir(path)
    )


#: Storage engines address databases by *prefix*; the files on disk carry
#: these suffixes (disk: .data/.wal, mm: .snap/.oplog).
_DB_SUFFIXES = (".data", ".wal", ".snap", ".oplog")


def _is_database_path(path: str) -> bool:
    return os.path.exists(path) or any(
        os.path.exists(path + suffix) for suffix in _DB_SUFFIXES
    )


def _load_targets(
    targets: list[str], engine: str, report: AnalysisReport
) -> list[object]:
    """Import/open every target; returns the loaded modules."""
    modules: list[object] = []
    for target in targets:
        if target.endswith(".py") and os.path.isfile(target):
            modules.append(_load_file(target))
        elif _is_module_dir(target):
            modules.extend(_load_directory(target))
        elif importlib.util.find_spec(target) is not None:
            modules.append(importlib.import_module(target))
        elif _is_database_path(target):
            from repro.objects.database import Database

            db = Database.open(target, engine=engine)
            try:
                report.extend(analyze_database(db).diagnostics)
            finally:
                db.close()
        else:
            raise FileNotFoundError(
                f"target {target!r} is neither a Python file, a directory, "
                "an importable module, nor an existing database path "
                "(database prefix <p> needs <p>.data or <p>.snap on disk)"
            )
    return modules


def _machine_findings(modules: list[object]) -> list:
    found = []
    for module in modules:
        machines = getattr(module, "__analysis_machines__", None) or {}
        for name, fsm in sorted(machines.items()):
            found.extend(analyze_machine(fsm, Location(type_name=name)))
    return found


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically lint Ode trigger declarations",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="Python files, directories, module names, or database paths",
    )
    parser.add_argument(
        "--self-check",
        metavar="DIR",
        help="import DIR and fail on ANY finding (the CI gate)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="JSON output (alias for --format json)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default=None,
        help="output format (default: text)",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="run the ODE3xx lock-footprint / deadlock-prediction pass "
        "(predicted cycles are confirmed on the cooperative scheduler "
        "unless --no-confirm)",
    )
    parser.add_argument(
        "--compilable",
        action="store_true",
        help="run the ODE4xx compilability pass gating the generated-code "
        "posting fast path (findings name why a trigger stays interpreted)",
    )
    parser.add_argument(
        "--no-confirm",
        action="store_true",
        help="with --concurrency: skip witness replays, report every "
        "predicted deadlock as POSSIBLE",
    )
    parser.add_argument(
        "--fail-on",
        default="error",
        choices=["info", "warning", "error", "never"],
        help="minimum severity that makes the exit status nonzero "
        "(default: error, so warnings-only runs exit 0)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="promote ODE2xx warnings (termination/confluence/metadata) "
        "to errors",
    )
    parser.add_argument("--engine", choices=["disk", "mm"], default="disk")
    parser.add_argument(
        "--list-codes", action="store_true", help="print the diagnostic catalogue"
    )
    args = parser.parse_args(argv)

    if args.list_codes:
        for code, (severity, title) in sorted(CODES.items()):
            print(f"{code}  {severity!s:8} {title}")
        return 0

    if not args.targets and not args.self_check:
        parser.error("no targets given (or use --self-check DIR)")

    report = AnalysisReport()
    try:
        modules = _load_targets(list(args.targets), args.engine, report)
        if args.self_check:
            modules.extend(_load_directory(args.self_check))
    except (ImportError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report.extend(
        analyze_registry(
            concurrency=args.concurrency,
            confirm_witnesses=args.concurrency and not args.no_confirm,
            compilability=args.compilable,
        ).diagnostics
    )
    report.extend(_machine_findings(modules))

    if args.strict:
        report.diagnostics = [
            dataclasses.replace(diag, severity=Severity.ERROR)
            if diag.code.startswith("ODE2") and diag.severity == Severity.WARNING
            else diag
            for diag in report.diagnostics
        ]

    as_json = args.json or args.format == "json"
    print(report.render_json() if as_json else report.render_text())

    if args.self_check:
        return 1 if report.diagnostics else 0
    if args.fail_on == "never":
        return 0
    return 1 if report.at_least(Severity.parse(args.fail_on)) else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
