"""Static cascade-cycle detection (ODE030–ODE032).

A trigger action that calls member functions or posts user events can wake
other triggers — the "conceptually nested transactions" of Section 5.4.5.
When the posting relation is cyclic *and* every trigger on the cycle is
perpetual, nothing ever leaves the cycle: each firing re-arms the trigger
and re-posts the event that wakes the next one, looping until something
aborts.  With ``posts=(...)`` metadata on trigger declarations (the user
events an action raises) the relation is statically known and the cycles
are decidable before a single event is posted.

* ``ODE030`` — a cycle whose triggers are all perpetual with *immediate*
  coupling: the loop runs inside a single posting cascade and cannot
  terminate (the run-time's recursion limit is what actually stops it).
* ``ODE031`` — all perpetual, but at least one link is deferred or
  detached: each transaction round-trip re-enters the cycle, so it loops
  unboundedly *across* transactions rather than within one.
* ``ODE032`` — ``posts`` names an event that is not a declared user event
  of any analyzed class (a typo, or the declaration outlived a rename).

A cycle through a once-only trigger is self-limiting — the trigger
deactivates after its first firing — and is not reported.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, Location
from repro.core.trigger_def import CouplingMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.trigger_def import TriggerInfo


def _listened_user_events(info: "TriggerInfo") -> set[str]:
    """User-event names the trigger's expression reacts to."""
    return {
        event.name
        for event in info.compiled.expr.basic_events()
        if event.kind == "user"
    }


def check_cascades(
    triggers: list[tuple[str, "TriggerInfo"]],
    known_user_events: set[str],
) -> list[Diagnostic]:
    """Build the trigger→posts→trigger graph and report its cycles.

    *triggers* is ``(type_name, info)`` pairs across every analyzed class;
    *known_user_events* the union of declared user-event names (for the
    ODE032 typo check).  Edges are matched by event name: ``posts``
    metadata does not say which *object* receives the post, so a name
    collision across classes conservatively counts as an edge.
    """
    diagnostics: list[Diagnostic] = []
    nodes = list(range(len(triggers)))
    listened = [_listened_user_events(info) for _, info in triggers]

    edges: dict[int, list[int]] = {n: [] for n in nodes}
    for src, (type_name, info) in enumerate(triggers):
        for event_name in info.posts:
            if event_name not in known_user_events:
                diagnostics.append(
                    Diagnostic(
                        "ODE032",
                        f"action declares posts={event_name!r} but no "
                        "analyzed class declares that user event",
                        Location(type_name, info.name),
                    )
                )
                continue
            for dst in nodes:
                if event_name in listened[dst]:
                    edges[src].append(dst)

    for component in _cyclic_sccs(nodes, edges):
        members = [triggers[n] for n in component]
        if not all(info.perpetual for _, info in members):
            continue  # a once-only trigger breaks the loop after one lap
        names = [f"{type_name}.{info.name}" for type_name, info in members]
        type_name, info = members[0]
        where = Location(type_name, info.name)
        related = tuple(names[1:]) if len(names) > 1 else ()
        cycle = " -> ".join(names + [names[0]])
        if all(
            info.coupling is CouplingMode.IMMEDIATE for _, info in members
        ):
            diagnostics.append(
                Diagnostic(
                    "ODE030",
                    f"perpetual immediate triggers form a posting cycle "
                    f"({cycle}); every detection re-posts the event that "
                    "re-arms the cycle, so one firing cascades forever "
                    "within a single transaction",
                    where,
                    related=related,
                )
            )
        else:
            diagnostics.append(
                Diagnostic(
                    "ODE031",
                    f"perpetual triggers form a posting cycle ({cycle}) "
                    "through deferred/detached couplings; each firing "
                    "schedules the next round, looping unboundedly across "
                    "transactions",
                    where,
                    related=related,
                )
            )
    return diagnostics


def _cyclic_sccs(
    nodes: list[int], edges: dict[int, list[int]]
) -> list[list[int]]:
    """Tarjan's strongly-connected components, cyclic ones only.

    A component counts as cyclic if it has more than one node, or one node
    with a self-edge (a trigger that posts the event it listens to).
    """
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    counter = [0]
    result: list[list[int]] = []

    def strongconnect(node: int) -> None:
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in edges[node]:
            if succ not in index:
                strongconnect(succ)
                lowlink[node] = min(lowlink[node], lowlink[succ])
            elif succ in on_stack:
                lowlink[node] = min(lowlink[node], index[succ])
        if lowlink[node] == index[node]:
            component = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            component.sort()
            if len(component) > 1 or node in edges[node]:
                result.append(component)

    for node in nodes:
        if node not in index:
            strongconnect(node)
    return result
