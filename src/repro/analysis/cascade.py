"""Static termination analysis: cascade cycles (ODE030–ODE032, ODE200/201).

A trigger action that calls member functions or posts user events can wake
other triggers — the "conceptually nested transactions" of Section 5.4.5.
When the posting relation is cyclic *and* every trigger on the cycle is
perpetual, nothing ever leaves the cycle: each firing re-arms the trigger
and re-posts the event that wakes the next one, looping until something
aborts.

PR 1 built the posting relation from hand-declared ``posts=`` metadata
alone.  This pass unions in *inferred* effects (``repro.analysis.effects``):
user events the action body actually posts, plus member events raised by
calling wrapped methods through the anchor handle (``self.pay_bill(...)``
inside an action posts ``after pay_bill`` — a real cascade edge no
metadata mentions).  Edges are pruned through the target's compiled
machine: a posting only counts if the target expression can consume that
symbol on a path to acceptance (:func:`repro.events.dfa.acceptance_through`).

Cycle classification:

* ``ODE201`` (warning) — some member's machine is *predicate-guarded*:
  it cannot accept without a mask pseudo-event evaluating true
  (:func:`repro.events.dfa.acceptance_avoiding`), so the cycle stops as
  soon as the predicate goes false.  Reported so the guard is a
  conscious decision, suppressible when it is.
* ``ODE030`` (error) / ``ODE031`` (warning) — unguarded cycle whose
  edges are all *declared* (``posts=``): all-immediate loops run away
  within one cascade; deferred/detached ones loop across transactions.
* ``ODE200`` (error) — unguarded cycle that needs at least one
  *inferred-only* edge: the most dangerous kind, invisible to metadata.
* ``ODE032`` (warning) — ``posts=`` names an event no analyzed class
  declares *and* the action body does not post it either (a typo, or the
  declaration outlived a rename).

A cycle through a once-only trigger is self-limiting — the trigger
deactivates after its first firing — and is not reported.  Unknown
effects contribute no edges (the analysis under-approximates rather than
flooding every dynamic action with cycles); the metadata pass flags the
unknown separately.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, Location
from repro.core.trigger_def import CouplingMode
from repro.events.ast import AnyEvent, ExtAnyEvent
from repro.events.dfa import acceptance_avoiding, acceptance_through

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.effects import EffectSet
    from repro.core.trigger_def import TriggerInfo
    from repro.events.fsm import EventDecl

#: Codes that assert non-termination; ``Database.check_triggers(strict=True)``
#: refuses to proceed while any remain unsuppressed.
TERMINATION_CODES = frozenset({"ODE030", "ODE031", "ODE200", "ODE201"})


def _listened_symbols(info: "TriggerInfo") -> set[str]:
    """Symbols the trigger's expression reacts to (user events by name,
    member/tx events by ``"kind name"`` symbol).  An ``any`` anywhere in
    the expression listens to every declared symbol of the class."""
    expr = info.compiled.expr
    if expr is not None and any(
        isinstance(node, (AnyEvent, ExtAnyEvent)) for node in _walk_expr(expr)
    ):
        return {
            s
            for s in info.compiled.fsm.alphabet
            if not s.startswith(("true:", "false:"))
        }
    if expr is None:
        return set()
    return {event.symbol for event in expr.basic_events()}


def _walk_expr(expr):
    yield expr
    for child in getattr(expr, "children", lambda: ())():
        yield from _walk_expr(child)


def _guarded(info: "TriggerInfo") -> bool:
    """Whether every acceptance of this trigger's machine requires some
    mask predicate to evaluate true."""
    fsm = info.compiled.fsm
    trues = {s for s in fsm.alphabet if s.startswith("true:")}
    if not trues:
        return False
    return not acceptance_avoiding(fsm, trues)


def check_cascades(
    triggers: list[tuple[str, "TriggerInfo"]],
    known_user_events: set[str],
    effects: Optional[Sequence[Optional["EffectSet"]]] = None,
    declared_events: Optional[Sequence[Sequence["EventDecl"]]] = None,
) -> list[Diagnostic]:
    """Build the trigger→posts→trigger graph and report its cycles.

    *triggers* is ``(type_name, info)`` pairs across every analyzed class;
    *known_user_events* the union of declared user-event names (for the
    ODE032 typo check).  *effects* and *declared_events* are parallel to
    *triggers*: the inferred effect set of each action (or ``None``) and
    the declared events of each trigger's class (for mapping member-
    function calls to ``before``/``after`` symbols).  Edges are matched
    by symbol: posting metadata does not say which *object* receives the
    post, so a name collision across classes conservatively counts as an
    edge.
    """
    diagnostics: list[Diagnostic] = []
    nodes = list(range(len(triggers)))
    listened = [_listened_symbols(info) for _, info in triggers]
    effects = list(effects) if effects is not None else [None] * len(triggers)
    declared_events = (
        list(declared_events)
        if declared_events is not None
        else [()] * len(triggers)
    )

    # Member-event symbols any analyzed class declares, keyed by method
    # name — the conservative match for calls on *foreign* handles.
    foreign_member_symbols: dict[str, set[str]] = {}
    for decls in declared_events:
        for decl in decls:
            if decl.is_method_event:
                foreign_member_symbols.setdefault(decl.name, set()).add(
                    decl.symbol
                )

    posted_declared: list[set[str]] = []
    posted_inferred: list[set[str]] = []
    for n, (type_name, info) in enumerate(triggers):
        eff = effects[n]
        inferred: set[str] = set()
        if eff is not None:
            inferred |= eff.posts
            for method in eff.calls:
                for decl in declared_events[n]:
                    if decl.is_method_event and decl.name == method:
                        inferred.add(decl.symbol)
            for method in eff.foreign_calls:
                inferred |= foreign_member_symbols.get(method, set())
        posted_inferred.append(inferred)
        posted_declared.append(
            {name for name in info.posts if name in known_user_events}
        )
        for event_name in info.posts:
            if event_name in known_user_events:
                continue
            if eff is not None and event_name in eff.posts:
                # the action really does post it; the event is simply
                # declared by a class outside this analysis run
                continue
            diagnostics.append(
                Diagnostic(
                    "ODE032",
                    f"action declares posts={event_name!r} but no "
                    "analyzed class declares that user event",
                    Location(type_name, info.name),
                )
            )

    edges: dict[int, list[int]] = {n: [] for n in nodes}
    declared_edges: dict[int, list[int]] = {n: [] for n in nodes}
    for src in nodes:
        for symbol in posted_declared[src] | posted_inferred[src]:
            for dst in nodes:
                if symbol not in listened[dst]:
                    continue
                if not acceptance_through(triggers[dst][1].compiled.fsm, symbol):
                    continue  # the target machine can never consume it
                if dst not in edges[src]:
                    edges[src].append(dst)
                if symbol in posted_declared[src] and dst not in declared_edges[src]:
                    declared_edges[src].append(dst)

    seen_cycles: set[frozenset[int]] = set()
    for component in _cyclic_sccs(nodes, edges):
        key = frozenset(component)
        if key in seen_cycles:
            continue  # the same cycle, rotated
        seen_cycles.add(key)
        members = [triggers[n] for n in component]
        if not all(info.perpetual for _, info in members):
            continue  # a once-only trigger breaks the loop after one lap
        names = _canonical_cycle_names(members)
        type_name, info = members[0]
        where = Location(type_name, info.name)
        related = tuple(names[1:]) if len(names) > 1 else ()
        cycle = " -> ".join(names + [names[0]])
        if any(_guarded(info) for _, info in members):
            diagnostics.append(
                Diagnostic(
                    "ODE201",
                    f"triggers form a posting cycle ({cycle}) that is "
                    "predicate-guarded: firing requires a mask to hold, so "
                    "the cascade stops when the predicate goes false — "
                    "verify the predicate converges, then suppress",
                    where,
                    related=related,
                )
            )
            continue
        if _cycle_within(component, declared_edges):
            if all(
                info.coupling is CouplingMode.IMMEDIATE for _, info in members
            ):
                diagnostics.append(
                    Diagnostic(
                        "ODE030",
                        f"perpetual immediate triggers form a posting cycle "
                        f"({cycle}); every detection re-posts the event that "
                        "re-arms the cycle, so one firing cascades forever "
                        "within a single transaction",
                        where,
                        related=related,
                    )
                )
            else:
                diagnostics.append(
                    Diagnostic(
                        "ODE031",
                        f"perpetual triggers form a posting cycle ({cycle}) "
                        "through deferred/detached couplings; each firing "
                        "schedules the next round, looping unboundedly across "
                        "transactions",
                        where,
                        related=related,
                    )
                )
        else:
            diagnostics.append(
                Diagnostic(
                    "ODE200",
                    f"inferred action effects close a posting cycle "
                    f"({cycle}) that no posts= metadata declares; the loop "
                    "is irrefutable (no mask guards it) and will cascade "
                    "until the run-time recursion limit or an abort stops it",
                    where,
                    related=related,
                )
            )
    return diagnostics


def _canonical_cycle_names(
    members: list[tuple[str, "TriggerInfo"]]
) -> list[str]:
    """Stable display order: rotate so the lexicographically smallest
    member leads (two reports of the same cycle render identically)."""
    names = [f"{type_name}.{info.name}" for type_name, info in members]
    pivot = names.index(min(names))
    return names[pivot:] + names[:pivot]


def _cycle_within(component: list[int], edges: dict[int, list[int]]) -> bool:
    """Whether *component*'s nodes are still cyclic using only *edges*
    (the declared-posts subgraph)."""
    scoped = {
        n: [d for d in edges[n] if d in component] for n in component
    }
    return bool(_cyclic_sccs(list(component), scoped))


def _cyclic_sccs(
    nodes: list[int], edges: dict[int, list[int]]
) -> list[list[int]]:
    """Tarjan's strongly-connected components, cyclic ones only.

    A component counts as cyclic if it has more than one node, or one node
    with a self-edge (a trigger that posts the event it listens to).
    """
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    counter = [0]
    result: list[list[int]] = []

    def strongconnect(node: int) -> None:
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in edges[node]:
            if succ not in index:
                strongconnect(succ)
                lowlink[node] = min(lowlink[node], lowlink[succ])
            elif succ in on_stack:
                lowlink[node] = min(lowlink[node], index[succ])
        if lowlink[node] == index[node]:
            component = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            component.sort()
            if len(component) > 1 or node in edges[node]:
                result.append(component)

    for node in nodes:
        if node not in index:
            strongconnect(node)
    return result
