"""The ODE4xx compilability pass: may this trigger take the fast path?

The compile tier (:mod:`repro.core.compiled`) specializes a trigger's
FSM + mask predicates into one generated Python function and lets the
posting loop call it instead of the interpreter.  That is only sound
when we can *prove*, statically, that the generated code is observably
identical to interpreted posting.  This pass makes that judgment per
trigger and renders every refusal as a stable diagnostic:

``ODE400``
    A mask has effects beyond reads per the ODE2xx effect lattice
    (writes, db ops, posts, aborts, foreign calls).  The generated code
    reuses a mask outcome already decided within one posting instant —
    sound only for pure predicates — and an effectful mask's side
    channel would observe the skipped re-evaluations.
``ODE401``
    A mask's code references free names that resolve neither in its
    globals nor in builtins.  The interpreter would raise ``NameError``
    at evaluation time; baking the reference into generated code could
    change *when* that failure surfaces, so codegen is withheld.
``ODE402``
    The machine is too large or dense to specialize: state or
    transition counts above the table limits, or the unrolled
    mask-cascade decision tree blows the plan budget.
``ODE403``
    An IMMEDIATE-coupled action (or its declared ``posts=``) can raise
    events on the anchor class — it re-enters the posting loop
    mid-advance, the one regime where interpreter and generated
    dispatch interleave and the proof obligations multiply.  Deferred
    and detached couplings run after the advance completes and are
    exempt.
``ODE404``
    The lattice bottoms out at ``unknown`` (source unavailable, bare-
    name calls, unresolvable anchor methods): absence of evidence of
    impurity is not purity, so the lower bound blocks the proof.

COMPILABLE means "no ODE4xx finding".  The pass is opt-in on the
analysis surfaces (``--compilable`` / ``compilability=True``) — findings
are advisory tiering decisions, not declaration bugs — but the compile
tier itself runs :func:`classify_trigger` on every trigger it is asked
to specialize, so the gate always holds regardless of whether the lint
surface ran.
"""

from __future__ import annotations

import builtins
import dataclasses
import dis
import types
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.analysis.diagnostics import Diagnostic, Location
from repro.analysis.effects import (
    EffectSet,
    infer_callable_effects,
    infer_trigger_effects,
)
from repro.core.trigger_def import CouplingMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.trigger_def import TriggerInfo
    from repro.objects.metatype import Metatype

__all__ = [
    "MAX_FSM_STATES",
    "MAX_FSM_TRANSITIONS",
    "CompilabilityVerdict",
    "check_compilability",
    "classify_trigger",
]

#: Specialization limits for the generated dispatch table (ODE402).  The
#: expression compiler's machines are tiny; these bounds exist so a
#: pathological machine degrades to the interpreter instead of emitting
#: a megabyte of branches.
MAX_FSM_STATES = 48
MAX_FSM_TRANSITIONS = 512


@dataclasses.dataclass(frozen=True)
class CompilabilityVerdict:
    """One trigger's judgment: COMPILABLE, or the diagnostics saying why not."""

    compilable: bool
    diagnostics: tuple[Diagnostic, ...] = ()

    @property
    def codes(self) -> tuple[str, ...]:
        return tuple(d.code for d in self.diagnostics)


def _iter_codes(code: types.CodeType) -> Iterable[types.CodeType]:
    yield code
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            yield from _iter_codes(const)


def _unresolved_globals(fn: Callable) -> tuple[str, ...]:
    """Free names *fn* loads that resolve nowhere (ODE401 evidence)."""
    code = getattr(fn, "__code__", None)
    if code is None:
        return ()
    globals_ns = getattr(fn, "__globals__", {}) or {}
    missing = set()
    for c in _iter_codes(code):
        for ins in dis.get_instructions(c):
            if ins.opname in ("LOAD_GLOBAL", "LOAD_NAME") and isinstance(
                ins.argval, str
            ):
                name = ins.argval
                if name not in globals_ns and not hasattr(builtins, name):
                    missing.add(name)
    return tuple(sorted(missing))


def _resolves_on(cls: Optional[type], name: str) -> bool:
    if cls is None:
        return False
    import inspect

    return inspect.getattr_static(cls, name, None) is not None


def _fmt(names: Iterable[str], limit: int = 4) -> str:
    names = sorted(names)
    shown = ", ".join(names[:limit])
    extra = len(names) - limit
    return shown + (f", +{extra} more" if extra > 0 else "")


def _mask_diagnostics(
    info: "TriggerInfo",
    metatype: Optional["Metatype"],
    where_args: dict,
) -> list[Diagnostic]:
    cls = getattr(metatype, "pyclass", None)
    diags: list[Diagnostic] = []
    specs = getattr(info, "mask_specs", None) or {}
    for name in sorted(info.masks):
        # Analyze the predicate as declared; the arity adapter that
        # normalizes it to (obj, params, event) is an opaque call the
        # lattice would widen to unknown.  Bridge triggers built at run
        # time carry only the adapted form — they land in ODE404 below.
        fn = specs.get(name, info.masks[name])
        missing = _unresolved_globals(fn)
        if missing:
            diags.append(
                Diagnostic(
                    "ODE401",
                    f"mask {name!r} references unresolvable free name(s) "
                    f"{_fmt(missing)}; generated code would change when the "
                    "NameError surfaces",
                    Location(**where_args),
                )
            )
        eff = infer_callable_effects(fn, cls)
        if not eff.analyzed or eff.unknown:
            reasons = _fmt(eff.unknown_reasons, limit=2) or "effects unknown"
            diags.append(
                Diagnostic(
                    "ODE404",
                    f"mask {name!r} has unprovable effects ({reasons}); "
                    "purity is the codegen soundness condition",
                    Location(**where_args),
                )
            )
            continue
        impure = []
        if eff.writes:
            impure.append(f"writes {_fmt(eff.writes)}")
        if eff.db_ops:
            impure.append(f"db ops {_fmt(eff.db_ops)}")
        if eff.posts:
            impure.append(f"posts {_fmt(eff.posts)}")
        if eff.foreign_calls:
            impure.append(f"foreign calls {_fmt(eff.foreign_calls)}")
        if eff.aborts:
            impure.append("aborts")
        if impure:
            diags.append(
                Diagnostic(
                    "ODE400",
                    f"mask {name!r} is impure ({'; '.join(impure)}); the "
                    "compiled tier reuses mask outcomes within a posting "
                    "instant, which only pure predicates tolerate",
                    Location(**where_args),
                )
            )
        unresolved = [c for c in sorted(eff.calls) if not _resolves_on(cls, c)]
        if unresolved:
            # _inline_calls silently skips anchor-method calls it cannot
            # resolve, so an `analyzed` verdict can still hide un-inlined
            # bodies; re-checking resolution keeps the purity claim honest.
            diags.append(
                Diagnostic(
                    "ODE404",
                    f"mask {name!r} calls {_fmt(unresolved)} which does not "
                    "resolve on the anchor class; the un-inlined body is an "
                    "unknown-effects lower bound",
                    Location(**where_args),
                )
            )
    return diags


def _action_diagnostics(
    info: "TriggerInfo",
    metatype: Optional["Metatype"],
    where_args: dict,
    effect_of: Optional[Callable[["TriggerInfo", Optional["Metatype"]], EffectSet]],
) -> list[Diagnostic]:
    if info.coupling is not CouplingMode.IMMEDIATE:
        return []
    diags: list[Diagnostic] = []
    eff = (
        effect_of(info, metatype)
        if effect_of is not None
        else infer_trigger_effects(info, metatype)
    )
    if not eff.analyzed or eff.unknown:
        reasons = _fmt(eff.unknown_reasons, limit=2) or "effects unknown"
        diags.append(
            Diagnostic(
                "ODE404",
                f"immediate action has unprovable effects ({reasons}); "
                "cannot rule out posting re-entry mid-advance",
                Location(**where_args),
            )
        )
        return diags
    declared = getattr(metatype, "declared_events", None) or ()
    method_events = {d.name for d in declared if d.is_method_event}
    user_events = {d.name for d in declared if d.kind == "user"}
    reentry = sorted(
        (eff.calls & method_events)
        | (eff.posts & user_events)
        | (frozenset(info.posts) & user_events)
    )
    if reentry:
        diags.append(
            Diagnostic(
                "ODE403",
                f"immediate action raises anchor event(s) {_fmt(reentry)} — "
                "re-enters the posting loop mid-advance, where compiled and "
                "interpreted dispatch would interleave",
                Location(**where_args),
            )
        )
    return diags


def classify_trigger(
    info: "TriggerInfo",
    metatype: Optional["Metatype"] = None,
    effect_of: Optional[
        Callable[["TriggerInfo", Optional["Metatype"]], EffectSet]
    ] = None,
) -> CompilabilityVerdict:
    """Judge one trigger; compilable iff no ODE4xx diagnostic applies."""
    type_name = getattr(metatype, "name", None) or info.defining_type
    where_args = {"type_name": type_name, "trigger": info.name}
    diags: list[Diagnostic] = []

    fsm = info.fsm
    n_states, n_trans = len(fsm), fsm.transition_count()
    if n_states > MAX_FSM_STATES or n_trans > MAX_FSM_TRANSITIONS:
        diags.append(
            Diagnostic(
                "ODE402",
                f"machine has {n_states} states / {n_trans} transitions "
                f"(limits {MAX_FSM_STATES}/{MAX_FSM_TRANSITIONS}); table "
                "specialization withheld",
                Location(**where_args),
            )
        )
    else:
        from repro.core.compiled import PlanError, plan_unroll

        try:
            plan_unroll(fsm)
        except PlanError as exc:
            diags.append(
                Diagnostic("ODE402", str(exc), Location(**where_args))
            )
        except Exception as exc:  # never let planning break analysis
            diags.append(
                Diagnostic(
                    "ODE402",
                    f"machine cannot be planned ({exc})",
                    Location(**where_args),
                )
            )

    diags.extend(_mask_diagnostics(info, metatype, where_args))
    diags.extend(_action_diagnostics(info, metatype, where_args, effect_of))
    return CompilabilityVerdict(compilable=not diags, diagnostics=tuple(diags))


def check_compilability(
    metatypes: Iterable["Metatype"],
    effect_of: Optional[
        Callable[["TriggerInfo", Optional["Metatype"]], EffectSet]
    ] = None,
) -> list[Diagnostic]:
    """Run the ODE4xx pass over every trigger of *metatypes*.

    Emits diagnostics only for NON-compilable triggers — a clean result
    means the whole trigger set takes the generated-code fast path.
    """
    diags: list[Diagnostic] = []
    seen: set[int] = set()
    for metatype in metatypes:
        for info in getattr(metatype, "all_trigger_infos", None) or getattr(
            metatype, "trigger_infos", []
        ):
            if id(info) in seen:
                continue
            seen.add(id(info))
            verdict = classify_trigger(info, metatype, effect_of)
            diags.extend(verdict.diagnostics)
    return diags
