"""Static concurrency analysis: lock footprints, Section 6 amplification,
deadlock prediction, and the dynamic lockset cross-check (ODE3xx).

The paper's Section 6 complaint is that triggers *"turn read access into
write access, increasing both the amount of time the transactions spend
waiting for locks and the likelihood of deadlock"* — every FSM advance
writes the persistent TriggerState back, so an ostensibly read-only
transaction takes X locks.  Experiment E6 measures it; this module
predicts it from declarations alone.

The analysis lifts each trigger's inferred :class:`EffectSet` (see
:mod:`repro.analysis.effects`) plus its FSM structure to an *ordered*
:class:`LockFootprint` — the sequence of S/X acquisitions one posting
performs under strict 2PL (paper Section 5.4.5: dereference the object,
look the trigger index up, read the TriggerState, write it back on a
state change, then run the action's own writes).  Resources are symbolic
*classes*, not instances:

* ``object:<Type>``  — the monitored object's record
* ``state:<Type>.<Trigger>`` — the persistent TriggerState record
* ``meta:index`` / ``meta:catalog`` — trigger-index buckets, catalog

Footprints feed four passes:

* **ODE300** — a watched event is postable from a read-only path (user
  events, transaction events, or member functions with no inferred
  writes) yet posting it acquires X locks: the exact amplifying lock set
  is reported.
* **ODE301** — the cross-trigger lock-order graph (footprint steps give
  intra-posting edges; per-instance resources acquired exclusively give
  multi-instance self-edges, since one transaction posts to several
  objects while holding everything under strict 2PL) contains a cycle:
  concurrent sessions can deadlock.
* **ODE302** — an S→X upgrade on a resource while other locks are held:
  two transactions that both reach the S step deadlock on the upgrade.
* **ODE310** — the Eraser-style *dynamic* lockset checker: observed
  ``repro.obs`` lock-trace records (live or loaded from JSONL) are
  cross-checked against the static footprints — an X acquisition or an
  upgrade on a resource class the footprints never predict, or an
  observed deadlock when no cycle was predicted, contradicts the model.

Predicted ODE301/ODE302 findings are *confirmed* by replaying a
synthesized two-session interleaving on the deterministic
:class:`~repro.sessions.scheduler.CooperativeScheduler` against a scratch
database: a replay that deadlocks tags the finding CONFIRMED, anything
else (down to "the witness could not even be constructed") stays
POSSIBLE.  Soundness caveats — ``unknown``-widened effects make the
footprint a *lower* bound on the action side while the FSM side stays
exact — are spelled out in DESIGN.md Section 12.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import shutil
import tempfile
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.analysis.diagnostics import Diagnostic, Location
from repro.analysis.effects import (
    EffectSet,
    _class_method,
    infer_callable_effects,
    infer_trigger_effects,
)
from repro.events.fsm import DEAD

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.trigger_def import TriggerInfo
    from repro.events.compile import CompiledMachine
    from repro.obs.trace import TraceRecord
    from repro.objects.metatype import Metatype

__all__ = [
    "LockStep",
    "LockFootprint",
    "Witness",
    "advancing_symbols",
    "infer_lock_footprint",
    "check_concurrency",
    "check_lock_trace",
    "observed_lock_profile",
    "static_lock_profile",
    "replay_witness",
]

S = "S"
X = "X"

#: Resource kinds that name one record *per instance* — a transaction
#: touching two instances of the class holds two distinct locks, which is
#: what makes multi-instance self-edges (and therefore single-class
#: deadlock cycles) real.
_PER_INSTANCE_KINDS = ("object", "state")

#: Upper bound on cooperative witness replays per analyzer run — each one
#: spins up a scratch database; predicted cycles beyond the cap stay
#: POSSIBLE.
_MAX_WITNESSES = 8


@dataclasses.dataclass(frozen=True)
class LockStep:
    """One symbolic acquisition in a posting's lock sequence."""

    resource: str
    mode: str  # "S" or "X"
    why: str = ""

    @property
    def kind(self) -> str:
        return self.resource.split(":", 1)[0]

    def __str__(self) -> str:
        return f"{self.mode}({self.resource})"


@dataclasses.dataclass(frozen=True)
class LockFootprint:
    """The ordered S/X acquisitions one posting performs for one trigger."""

    type_name: str
    trigger: str
    expression: str
    steps: tuple[LockStep, ...]
    #: symbols the trigger's machine consumes
    watched: frozenset[str]
    #: watched symbols whose posting can change the stored state number
    advancing: frozenset[str]
    #: declared symbols postable without any inferred write (per symbol,
    #: the reason it counts as read-only)
    readonly_postable: frozenset[str]
    #: the action runs in its own transaction (dependent/!dependent), so
    #: its effects are excluded from this (detector-transaction) footprint
    detached_action: bool
    #: the action's effects were widened to unknown — the action side of
    #: the footprint is a lower bound (DESIGN Section 12 caveat)
    unknown: bool

    @property
    def label(self) -> str:
        return f"{self.type_name}.{self.trigger}"

    def classes(self) -> frozenset[str]:
        return frozenset(step.resource for step in self.steps)

    def modes(self) -> dict[str, set[str]]:
        out: dict[str, set[str]] = {}
        for step in self.steps:
            out.setdefault(step.resource, set()).add(step.mode)
        return out

    def x_steps(self) -> tuple[LockStep, ...]:
        return tuple(step for step in self.steps if step.mode == X)

    def upgrades(self) -> tuple[tuple[str, tuple[str, ...]], ...]:
        """``(resource, other-resources-held-at-the-upgrade)`` pairs."""
        out = []
        seen_s: set[str] = set()
        held: list[str] = []
        for step in self.steps:
            if step.mode == X and step.resource in seen_s:
                out.append(
                    (step.resource, tuple(r for r in held if r != step.resource))
                )
            if step.mode == S:
                seen_s.add(step.resource)
            if step.resource not in held:
                held.append(step.resource)
        return tuple(out)

    def describe(self) -> str:
        return " -> ".join(str(step) for step in self.steps)


# --------------------------------------------------------------------------
# footprint inference


def _reachable_states(fsm) -> list:
    by_num = {state.statenum: state for state in fsm.states}
    frontier = [fsm.start]
    seen = {fsm.start}
    while frontier:
        state = by_num.get(frontier.pop())
        if state is None:
            continue
        for target in state.transitions.values():
            if target != DEAD and target not in seen:
                seen.add(target)
                frontier.append(target)
    return [by_num[n] for n in sorted(seen) if n in by_num]


def _advances_from(state, symbol: str, compiled: "CompiledMachine", by_num) -> bool:
    """Whether consuming *symbol* in *state* may change the stored state.

    A missing transition leaves the state put (or kills an anchored
    machine); a consumed transition that lands on a *masked* state may
    move further during the same quiesce pass, so it counts as advancing
    even when it is a self-loop.
    """
    target = state.transitions.get(symbol)
    if target is None:
        return compiled.anchored  # any alphabet symbol drives anchored -> DEAD
    if target != state.statenum:
        return True
    landed = by_num.get(target)
    return bool(landed is not None and landed.masks)


def advancing_symbols(compiled: "CompiledMachine") -> frozenset[str]:
    """Watched symbols whose posting can write the TriggerState back
    (i.e. change the stored state number from some reachable state)."""
    fsm = compiled.fsm
    by_num = {state.statenum: state for state in fsm.states}
    out = set()
    for state in _reachable_states(fsm):
        for symbol in compiled.event_symbols:
            if _advances_from(state, symbol, compiled, by_num):
                out.add(symbol)
    return frozenset(out)


def start_advancing_symbols(compiled: "CompiledMachine") -> frozenset[str]:
    """Watched symbols that advance the machine *from the start state* —
    the ones a witness can post first to take the X lock immediately."""
    fsm = compiled.fsm
    by_num = {state.statenum: state for state in fsm.states}
    start = by_num.get(fsm.start)
    if start is None:
        return frozenset()
    return frozenset(
        symbol
        for symbol in compiled.event_symbols
        if _advances_from(start, symbol, compiled, by_num)
    )


def _readonly_reason(metatype: "Metatype", decl) -> Optional[str]:
    """Why *decl* is postable from a read-only path, or None if it is not."""
    if decl.kind == "user":
        return "user event (postable on any handle via post_event)"
    if decl.is_transaction_event:
        return "transaction event (posted at commit of read-only transactions)"
    method = _class_method(metatype.pyclass, decl.name)
    if method is None:
        return None
    eff = infer_callable_effects(method, metatype.pyclass)
    if not eff.analyzed or eff.unknown:
        return None  # conservative: an unanalyzable method may write
    if eff.writes or eff.db_ops:
        return None
    return f"member function {decl.name}() has no inferred writes"


def _index_steps() -> tuple[tuple[str, str], ...]:
    from repro.core.trigger_index import TriggerIndex

    return TriggerIndex.lock_footprint()


def infer_lock_footprint(
    info: "TriggerInfo",
    metatype: "Metatype",
    effects: EffectSet | None = None,
) -> LockFootprint:
    """Map one trigger's FSM + effect set to its ordered lock sequence."""
    from repro.core.trigger_def import CouplingMode

    if effects is None:
        effects = infer_trigger_effects(info, metatype)
    compiled = info.compiled
    type_name = info.defining_type
    obj = f"object:{type_name}"
    state = f"state:{type_name}.{info.name}"
    watched = frozenset(compiled.event_symbols)
    advancing = advancing_symbols(compiled)

    decls = {decl.symbol: decl for decl in metatype.declared_events}
    readonly = frozenset(
        symbol
        for symbol in decls
        if _readonly_reason(metatype, decls[symbol]) is not None
    )

    steps: list[LockStep] = []
    held: dict[str, str] = {}

    def push(resource: str, mode: str, why: str) -> None:
        if held.get(resource) == X or held.get(resource) == mode:
            return
        held[resource] = X if mode == X else held.get(resource, S)
        steps.append(LockStep(resource, mode, why))

    push(obj, S, "dereference of the posted-to object")
    # A watched member function's own writes land before its after-event
    # posts — the transaction already holds the object exclusively.
    for symbol in sorted(watched):
        decl = decls.get(symbol)
        if decl is None or decl.kind == "user" or decl.is_transaction_event:
            continue
        method = _class_method(metatype.pyclass, decl.name)
        if method is None:
            continue
        meff = infer_callable_effects(method, metatype.pyclass)
        if any(not w.startswith("*.") for w in meff.writes):
            push(obj, X, f"watched member function {decl.name}() writes the object")
            break
    for resource, mode in _index_steps():
        push(resource, mode, "trigger-index bucket lookup")
    push(state, S, "TriggerState read")
    if advancing:
        push(state, X, "TriggerState write-back on FSM advance")

    detached = info.coupling in (CouplingMode.DEPENDENT, CouplingMode.INDEPENDENT)
    if not detached:
        if any(not w.startswith("*.") for w in effects.writes):
            push(obj, X, "action writes the anchor object")
        if effects.foreign_calls or any(
            w.startswith("*.") for w in effects.writes
        ):
            push("object:*", X, "action writes other objects")
        if effects.db_ops:
            push("meta:catalog", X, "action allocates/deletes persistent records")

    return LockFootprint(
        type_name=type_name,
        trigger=info.name,
        expression=compiled.text,
        steps=tuple(steps),
        watched=watched,
        advancing=advancing,
        readonly_postable=readonly,
        detached_action=detached,
        unknown=bool(effects.unknown or not effects.analyzed),
    )


def _lockable(metatype: "Metatype") -> bool:
    """Only persistent classes take storage locks; monitored (volatile)
    classes run their local rules with zero lock traffic."""
    from repro.objects.persistent import Persistent

    pyclass = getattr(metatype, "pyclass", None)
    return isinstance(pyclass, type) and issubclass(pyclass, Persistent)


def _collect_footprints(
    metatypes: Iterable["Metatype"],
    effect_of: Callable[["TriggerInfo", "Metatype"], EffectSet] | None = None,
) -> list[tuple["Metatype", "TriggerInfo", LockFootprint]]:
    if effect_of is None:
        effect_of = lambda info, metatype: infer_trigger_effects(info, metatype)
    out = []
    seen: set[int] = set()
    for metatype in metatypes:
        if not _lockable(metatype):
            continue
        for info in metatype.all_trigger_infos:
            if id(info) in seen:
                continue
            seen.add(id(info))
            out.append(
                (metatype, info, infer_lock_footprint(info, metatype, effect_of(info, metatype)))
            )
    return out


# --------------------------------------------------------------------------
# the lock-order graph


def _order_graph(footprints: list[LockFootprint]):
    """Edges ``a -> b`` with the mode of the *later* acquisition and the
    contributing trigger labels.

    Within one posting, step i precedes step j (strict 2PL holds i while
    requesting j).  Across postings of one transaction, any per-instance
    resource acquired exclusively yields a self-edge: the transaction
    holds instance 1 of the class while requesting instance 2, and two
    transactions visiting instances in opposite orders close the cycle.
    """
    edges: dict[tuple[str, str], set[str]] = {}
    contributors: dict[tuple[str, str], set[str]] = {}

    def add(a: str, b: str, mode: str, label: str) -> None:
        edges.setdefault((a, b), set()).add(mode)
        contributors.setdefault((a, b), set()).add(label)

    for fp in footprints:
        for i, earlier in enumerate(fp.steps):
            for later in fp.steps[i + 1 :]:
                if earlier.resource != later.resource:
                    add(earlier.resource, later.resource, later.mode, fp.label)
        for step in fp.x_steps():
            if step.kind in _PER_INSTANCE_KINDS:
                add(step.resource, step.resource, X, fp.label)
    return edges, contributors


def _find_cycles(
    edges: dict[tuple[str, str], set[str]], max_len: int = 4
) -> list[tuple[str, ...]]:
    """Simple cycles (as node tuples, canonical rotation) containing at
    least one exclusive edge — S-only cycles cannot block."""
    succ: dict[str, list[str]] = {}
    for a, b in edges:
        succ.setdefault(a, []).append(b)
    for targets in succ.values():
        targets.sort()

    cycles: set[tuple[str, ...]] = set()

    def canonical(path: tuple[str, ...]) -> tuple[str, ...]:
        pivot = min(range(len(path)), key=lambda i: path[i])
        return path[pivot:] + path[:pivot]

    def qualifies(path: tuple[str, ...]) -> bool:
        pairs = list(zip(path, path[1:] + path[:1]))
        return any(X in edges.get(pair, ()) for pair in pairs)

    def dfs(start: str, node: str, path: tuple[str, ...]) -> None:
        for nxt in succ.get(node, ()):
            if nxt == start:
                if qualifies(path):
                    cycles.add(canonical(path))
            elif nxt > start and nxt not in path and len(path) < max_len:
                dfs(start, nxt, path + (nxt,))

    for start in sorted(succ):
        dfs(start, start, (start,))
    return sorted(cycles, key=lambda c: (len(c), c))


# --------------------------------------------------------------------------
# cooperative witness confirmation


@dataclasses.dataclass(frozen=True)
class Witness:
    """Outcome of one synthesized-interleaving replay."""

    confirmed: bool
    detail: str

    def tag(self) -> str:
        return ("CONFIRMED: " if self.confirmed else "POSSIBLE: ") + self.detail


_witness_ids = itertools.count(1)


def _poster(metatype: "Metatype", decl):
    """A ``handle -> None`` callable that posts *decl*, or None."""
    import inspect as _inspect

    if decl.kind == "user":
        return lambda handle, _name=decl.name: handle.post_event(_name)
    if decl.is_transaction_event:
        return None
    method = _class_method(metatype.pyclass, decl.name)
    if method is None:
        return None
    try:
        sig = _inspect.signature(method)
        required = [
            p
            for p in list(sig.parameters.values())[1:]
            if p.default is _inspect.Parameter.empty
            and p.kind
            in (
                _inspect.Parameter.POSITIONAL_ONLY,
                _inspect.Parameter.POSITIONAL_OR_KEYWORD,
            )
        ]
    except (TypeError, ValueError):
        return None
    if required:
        return None
    return lambda handle, _name=decl.name: getattr(handle, _name)()


def _pick_poster(metatype: "Metatype", symbols: Iterable[str]):
    """The best postable declared event among *symbols*: user events
    first (pure postings), then read-only members, then any nullary one."""
    decls = {decl.symbol: decl for decl in metatype.declared_events}
    ranked = []
    for symbol in sorted(symbols):
        decl = decls.get(symbol)
        if decl is None:
            continue
        poster = _poster(metatype, decl)
        if poster is None:
            continue
        if decl.kind == "user":
            rank = 0
        elif _readonly_reason(metatype, decl) is not None:
            rank = 1
        else:
            rank = 2
        ranked.append((rank, symbol, poster))
    ranked.sort(key=lambda item: (item[0], item[1]))
    return ranked[0][2] if ranked else None


def replay_witness(
    metatype: "Metatype", info: "TriggerInfo", plan: str = "cross"
) -> Witness:
    """Replay a synthesized two-session interleaving deterministically.

    ``plan="cross"``: each session posts an advancing event to two
    activated objects in opposite orders — the multi-instance ODE301
    witness.  ``plan="upgrade"``: both sessions post a *non-advancing*
    event to one shared object (taking S on the TriggerState), yield, and
    then post an advancing one (requesting the X upgrade) — the ODE302
    witness.  Confirmation is a strict increase of the lock manager's
    deadlock counter during the replay.
    """
    try:
        return _replay_witness(metatype, info, plan)
    except BaseException as exc:  # any failure downgrades, never propagates
        return Witness(False, f"witness replay not constructible ({exc!r})")


def _replay_witness(metatype: "Metatype", info: "TriggerInfo", plan: str) -> Witness:
    from repro.objects.database import Database
    from repro.sessions.scheduler import CooperativeScheduler

    if info.params:
        return Witness(False, "trigger takes activation parameters")
    advance = _pick_poster(metatype, start_advancing_symbols(info.compiled))
    if advance is None:
        return Witness(False, "no postable event advances the machine from start")
    posts = [advance]
    if plan == "upgrade":
        # Any posting on the object reads this trigger's state (S); one
        # that does not advance it *from the start state* leaves the lock
        # shared for the race.
        start_adv = start_advancing_symbols(info.compiled)
        passive = _pick_poster(
            metatype,
            (
                decl.symbol
                for decl in metatype.declared_events
                if decl.symbol not in start_adv
            ),
        )
        if passive is None:
            return Witness(
                False,
                "no postable non-advancing event exists, so the shared "
                "phase of the upgrade race cannot be scheduled",
            )
        posts = [passive, advance]

    workdir = tempfile.mkdtemp(prefix="ode-witness-")
    db = None
    try:
        db = Database.open(
            os.path.join(workdir, f"witness-{next(_witness_ids)}"), engine="mm"
        )
        with db.transaction():
            first = db.pnew(metatype.pyclass)
            second = db.pnew(metatype.pyclass)
            getattr(first, info.name)()
            getattr(second, info.name)()
            ptrs = (first.ptr, second.ptr)
        stats = db.storage.lock_manager.stats
        deadlocks_before = stats.deadlocks
        scheduler = CooperativeScheduler()

        def program(session, order):
            def body(txn):
                for ptr in order:
                    handle = session.deref(ptr)
                    for post in posts:
                        post(handle)
                        scheduler.yield_now()

            def run():
                session.run(body, retries=8)
                session.close()

            return run

        orders = (
            (ptrs, tuple(reversed(ptrs)))
            if plan == "cross"
            else ((ptrs[0],), (ptrs[0],))
        )
        for index, order in enumerate(orders):
            session = db.session(f"witness-{index}")
            scheduler.spawn(
                program(session, order), name=f"witness-{index}", session=session
            )
        scheduler.run(max_switches=20_000)
        delta = stats.deadlocks - deadlocks_before
        if delta:
            return Witness(
                True,
                f"cooperative replay deadlocked {delta} time(s) in "
                f"{scheduler.switches} switches (victims retried and "
                "committed)",
            )
        return Witness(False, "cooperative replay completed without deadlock")
    finally:
        if db is not None:
            try:
                db.close()
            except Exception:
                pass
        shutil.rmtree(workdir, ignore_errors=True)


# --------------------------------------------------------------------------
# the static passes (ODE300 / ODE301 / ODE302)


def check_concurrency(
    metatypes: Iterable["Metatype"],
    effect_of: Callable[["TriggerInfo", "Metatype"], EffectSet] | None = None,
    *,
    confirm: bool = False,
    suppressed: dict[tuple[str, str], frozenset[str]] | None = None,
) -> list[Diagnostic]:
    """Run every static concurrency pass over *metatypes*.

    *suppressed* (``(type, trigger) -> codes``) does not filter the
    findings — the caller's suppression filter does, and stale-suppression
    detection needs the pre-filter set — but witness replays are skipped
    for findings that are about to be dropped anyway.
    """
    suppressed = suppressed or {}
    entries = _collect_footprints(metatypes, effect_of)
    diagnostics: list[Diagnostic] = []
    witnesses_left = _MAX_WITNESSES if confirm else 0
    witness_cache: dict[tuple[int, str], Witness] = {}

    def witness_for(metatype, info, plan: str) -> Witness:
        nonlocal witnesses_left
        key = (id(info), plan)
        if key not in witness_cache:
            if witnesses_left <= 0:
                return Witness(False, "witness replay not attempted")
            witnesses_left -= 1
            witness_cache[key] = replay_witness(metatype, info, plan)
        return witness_cache[key]

    def is_suppressed(fp: LockFootprint, code: str) -> bool:
        return code in suppressed.get((fp.type_name, fp.trigger), ())

    by_label = {fp.label: (metatype, info, fp) for metatype, info, fp in entries}

    # -- ODE300: read access becomes write access --------------------------
    for metatype, info, fp in entries:
        # The X a watched member function takes for its *own* writes is the
        # application writing, not trigger machinery — and it never occurs
        # on the read-only posting paths this check is about.
        amplifying = tuple(
            step
            for step in fp.x_steps()
            if not step.why.startswith("watched member function")
        )
        if not amplifying:
            continue
        culprits = sorted(fp.readonly_postable & fp.advancing)
        if not culprits and not fp.advancing:
            # A machine that never moves still fires the action when its
            # start state accepts; the action's X locks amplify too.
            from repro.events.dfa import firing_symbols

            culprits = sorted(
                fp.readonly_postable & firing_symbols(info.compiled.fsm)
            )
        if not culprits:
            continue
        decls = {decl.symbol: decl for decl in metatype.declared_events}
        reasons = "; ".join(
            f"{symbol!r} is {_readonly_reason(metatype, decls[symbol])}"
            for symbol in culprits
            if symbol in decls
        )
        lockset = ", ".join(f"{step} [{step.why}]" for step in amplifying)
        diagnostics.append(
            Diagnostic(
                "ODE300",
                f"expression {fp.expression!r}: posting {', '.join(map(repr, culprits))} "
                f"needs only read access ({reasons}), but the trigger makes the "
                f"transaction acquire {lockset} — read access becomes write "
                "access (Section 6), adding lock waits and deadlock risk to "
                "every read-only client",
                Location(fp.type_name, fp.trigger),
            )
        )

    # -- ODE302: S->X upgrades under held locks ----------------------------
    for metatype, info, fp in entries:
        for resource, held in fp.upgrades():
            if not held:
                continue
            if confirm and not is_suppressed(fp, "ODE302"):
                witness = witness_for(metatype, info, "upgrade")
            else:
                witness = Witness(False, "witness replay not attempted")
            diagnostics.append(
                Diagnostic(
                    "ODE302",
                    f"posting upgrades {resource} from S to X while holding "
                    f"{', '.join(held)}; two transactions that both reach the "
                    "shared phase deadlock on the upgrade (the lock manager "
                    f"queue-jumps upgraders, but cannot grant two). "
                    f"{witness.tag()}",
                    Location(fp.type_name, fp.trigger),
                )
            )

    # -- ODE301: lock-order cycles -----------------------------------------
    edges, contributors = _order_graph([fp for _, _, fp in entries])
    for cycle in _find_cycles(edges):
        pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
        labels = sorted(set().union(*(contributors.get(p, set()) for p in pairs)))
        involved = [by_label[l] for l in labels if l in by_label]
        # Locate the finding at the first contributor that does not
        # suppress ODE301 (so one acknowledged trigger cannot hide a
        # cycle other triggers participate in).
        located = next(
            (e for e in involved if not is_suppressed(e[2], "ODE301")),
            involved[0] if involved else None,
        )
        if located is None:
            continue
        metatype, info, fp = located
        witness = Witness(False, "witness replay not attempted")
        if confirm and not is_suppressed(fp, "ODE301"):
            # Prefer a contributor whose X step sits on a per-instance
            # resource in the cycle — that is the one the cross-order
            # witness can drive.
            for candidate_mt, candidate_info, candidate_fp in [located] + involved:
                if any(
                    step.kind in _PER_INSTANCE_KINDS and step.resource in cycle
                    for step in candidate_fp.x_steps()
                ):
                    witness = witness_for(candidate_mt, candidate_info, "cross")
                    break
        arrows = " -> ".join(cycle + (cycle[0],))
        diagnostics.append(
            Diagnostic(
                "ODE301",
                f"predicted deadlock cycle in the lock-order graph: {arrows}; "
                "concurrent sessions acquiring these locks in conflicting "
                f"orders can deadlock. {witness.tag()}",
                Location(fp.type_name, fp.trigger),
                related=tuple(l for l in labels if l != fp.label),
            )
        )

    return diagnostics


# --------------------------------------------------------------------------
# the dynamic lockset checker (ODE310)


def static_lock_profile(
    metatypes: Iterable["Metatype"],
    effect_of: Callable[["TriggerInfo", "Metatype"], EffectSet] | None = None,
) -> dict[str, set[str]]:
    """Resource class -> modes the static footprints may acquire."""
    profile: dict[str, set[str]] = {}
    for _, _, fp in _collect_footprints(metatypes, effect_of):
        for resource, modes in fp.modes().items():
            profile.setdefault(resource, set()).update(modes)
    return profile


def _classify_rids(
    records: Iterable["TraceRecord"], metatypes: Iterable["Metatype"]
) -> dict[object, str]:
    """Map concrete rids in a trace to symbolic resource classes.

    Objects are named by ``post.begin`` records (which carry the type),
    TriggerStates by ``state.write`` / ``trigger.activate`` records (which
    carry the trigger name, resolved to its defining type).  Everything
    else — index buckets, pmap headers, catalog records — is ``meta``.
    """
    owner: dict[str, str] = {}
    for metatype in metatypes:
        for info in getattr(metatype, "all_trigger_infos", ()):
            owner[info.name] = info.defining_type
    classes: dict[object, str] = {}
    for record in records:
        if record.kind == "post.begin":
            rid = record.get("rid")
            if rid is not None:
                classes.setdefault(rid, f"object:{record.get('type')}")
        elif record.kind in ("state.write", "trigger.activate"):
            state_rid = record.get("state_rid")
            trigger = record.get("trigger")
            if state_rid is not None and trigger is not None:
                classes.setdefault(
                    state_rid, f"state:{owner.get(trigger, '*')}.{trigger}"
                )
    return classes


def _acquisition_sequences(
    records: Iterable["TraceRecord"], classes: dict[object, str]
):
    """Per-transaction ordered ``(rid, class, mode, upgrade)`` sequences,
    merged from grant and wait records (a granted-after-waiting request
    emits only ``lock.wait``)."""
    sequences: dict[int, list[tuple[object, str, str, bool]]] = {}
    held: dict[tuple[int, object], str] = {}
    for record in records:
        if record.kind not in ("lock.acquire", "lock.wait"):
            continue
        txid = record.get("txid")
        rid = record.get("resource")
        mode = record.get("mode")
        if txid is None or mode is None:
            continue
        prior = held.get((txid, rid))
        if prior == X or prior == mode:
            continue  # re-request at held strength: not a new acquisition
        upgrade = prior == S and mode == X
        held[(txid, rid)] = mode
        sequences.setdefault(txid, []).append(
            (rid, classes.get(rid, "meta"), mode, upgrade)
        )
    return sequences


def observed_lock_profile(
    records: Iterable["TraceRecord"], metatypes: Iterable["Metatype"]
) -> dict[str, set[str]]:
    """Resource class -> modes actually observed in an obs lock trace."""
    records = list(records)
    classes = _classify_rids(records, metatypes)
    profile: dict[str, set[str]] = {}
    for sequence in _acquisition_sequences(records, classes).values():
        for _, cls, mode, _ in sequence:
            profile.setdefault(cls, set()).add(mode)
    return profile


def _location_of(resource: str) -> Location:
    kind, _, rest = resource.partition(":")
    if kind == "state" and "." in rest:
        type_name, trigger = rest.rsplit(".", 1)
        return Location(type_name, trigger)
    if kind == "object":
        return Location(rest)
    return Location()


def check_lock_trace(
    records: Iterable["TraceRecord"],
    metatypes: Iterable["Metatype"],
    effect_of: Callable[["TriggerInfo", "Metatype"], EffectSet] | None = None,
) -> list[Diagnostic]:
    """ODE310: cross-check an observed lock trace against the static model.

    *records* is any iterable of :class:`~repro.obs.trace.TraceRecord`\\ s
    — a live recorder's ring or a JSONL round-trip.  Contradictions:

    * an X acquisition on an object/state class no footprint predicts X on;
    * an S→X upgrade on a class with no predicted upgrade;
    * an observed ``lock.deadlock`` when the static graph predicts no
      cycle at all.

    The trace should cover the steady-state posting window — activation
    transactions insert TriggerStates and flip object flags, which the
    per-posting footprints deliberately do not model.
    """
    records = list(records)
    metatypes = [m for m in metatypes if _lockable(m)]
    entries = _collect_footprints(metatypes, effect_of)
    footprints = [fp for _, _, fp in entries]
    static = static_lock_profile(metatypes, effect_of)
    static_x = {r for r, modes in static.items() if X in modes}
    static_upgrades = set()
    for fp in footprints:
        for resource, _ in fp.upgrades():
            static_upgrades.add(resource)
        # An upgrade with nothing else held is still an upgrade.
        seen_s = set()
        for step in fp.steps:
            if step.mode == X and step.resource in seen_s:
                static_upgrades.add(step.resource)
            seen_s.add(step.resource) if step.mode == S else None
    edges, _ = _order_graph(footprints)
    predicted_cycles = _find_cycles(edges)

    classes = _classify_rids(records, metatypes)
    sequences = _acquisition_sequences(records, classes)

    diagnostics: list[Diagnostic] = []
    flagged: set[tuple[str, str]] = set()

    def flag(code_key: str, resource: str, message: str) -> None:
        if (code_key, resource) in flagged:
            return
        flagged.add((code_key, resource))
        diagnostics.append(
            Diagnostic("ODE310", message, _location_of(resource))
        )

    for txid in sorted(sequences):
        for _, cls, mode, upgrade in sequences[txid]:
            kind = cls.split(":", 1)[0]
            if kind not in _PER_INSTANCE_KINDS:
                continue  # meta records (buckets, catalog) are shared plumbing
            if mode == X and cls not in static_x:
                flag(
                    "x",
                    cls,
                    f"transaction {txid} acquired X({cls}) but no static "
                    "footprint predicts an exclusive lock on that class — "
                    "the inferred footprints under-approximate the observed "
                    "behaviour (unknown-widened effects?)",
                )
            if upgrade and cls not in static_upgrades:
                flag(
                    "upgrade",
                    cls,
                    f"transaction {txid} upgraded {cls} from S to X but no "
                    "static footprint predicts an upgrade on that class",
                )

    if not predicted_cycles and any(r.kind == "lock.deadlock" for r in records):
        deadlocks = sum(1 for r in records if r.kind == "lock.deadlock")
        diagnostics.append(
            Diagnostic(
                "ODE310",
                f"trace contains {deadlocks} deadlock(s) but the static "
                "lock-order graph predicts no cycle — the footprint model "
                "is missing an ordering source",
                Location(),
            )
        )
    return diagnostics
