"""Static confluence analysis (ODE202).

Two triggers are *confluent* when their firing order does not matter:
whichever runs first, the final state is the same.  Active-database
theory (Flesca & Greco, PAPERS.md) decides this over rule algebras; here
we use the classic sufficient condition — commutativity of effects.  Two
actions commute when neither writes an attribute the other reads or
writes.

The pass only compares triggers that can actually race:

* same anchor class (effects are attribute sets *of that class*), taken
  over ``all_trigger_infos`` so inherited triggers are compared against
  the subclass's own;
* same coupling mode — immediate firings interleave within a cascade,
  END firings within the commit pass, detached ones as separate
  transactions; across buckets the transaction machinery already
  serializes them;
* overlapping *firing symbols* (:func:`repro.events.dfa.firing_symbols`)
  — if no single posting can complete both detections, the pair shares
  no coupling point and activation order is irrelevant.

Pairs where either effect set is ``unknown`` are skipped: asserting
non-confluence from a widened effect set would drown real findings (the
unknown itself is reported as ODE206 by the metadata pass).

The verdict is also consumed at run time: the trigger manager asks
:func:`non_confluent_pairs` for the racy pairs of a class and counts
postings whose ready set contains one, while keeping the documented
deterministic order (activation order) — see DESIGN.md §9.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.analysis.diagnostics import Diagnostic, Location
from repro.analysis.effects import EffectSet, infer_trigger_effects
from repro.events.dfa import firing_symbols

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.trigger_def import TriggerInfo
    from repro.objects.metatype import Metatype

__all__ = ["check_confluence", "non_confluent_pairs"]


def check_confluence(
    metatypes: list["Metatype"],
    effect_of: Callable[["TriggerInfo", "Metatype"], Optional[EffectSet]],
) -> list[Diagnostic]:
    """Report non-confluent trigger pairs across *metatypes*.

    *effect_of* resolves (and caches) the inferred effect set of a
    trigger in the context of the anchor class being analyzed.
    """
    diagnostics: list[Diagnostic] = []
    seen_pairs: set[frozenset[int]] = set()
    for metatype in metatypes:
        infos = metatype.all_trigger_infos
        for i, a in enumerate(infos):
            for b in infos[i + 1 :]:
                pair = frozenset((id(a), id(b)))
                if len(pair) < 2 or pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                overlap = _conflict(a, b, metatype, effect_of)
                if not overlap:
                    continue
                diagnostics.append(
                    Diagnostic(
                        "ODE202",
                        f"triggers {a.name!r} and {b.name!r} can fire on "
                        "the same posting at the same coupling point but "
                        "their actions do not commute (both touch "
                        f"{', '.join(sorted(overlap))}); the final state "
                        "depends on activation order — see DESIGN.md §9 "
                        "for the canonical order",
                        Location(metatype.name, a.name),
                        related=(f"{metatype.name}.{b.name}",),
                    )
                )
    return diagnostics


def _conflict(
    a: "TriggerInfo",
    b: "TriggerInfo",
    metatype: "Metatype",
    effect_of: Callable[["TriggerInfo", "Metatype"], Optional[EffectSet]],
) -> frozenset[str]:
    if a.coupling is not b.coupling:
        return frozenset()
    if not (
        firing_symbols(a.compiled.fsm) & firing_symbols(b.compiled.fsm)
    ):
        return frozenset()
    ea = effect_of(a, metatype)
    eb = effect_of(b, metatype)
    if ea is None or eb is None or ea.unknown or eb.unknown:
        return frozenset()
    if not ea.analyzed or not eb.analyzed:
        return frozenset()
    return ea.conflicts(eb)


def non_confluent_pairs(metatype: "Metatype") -> frozenset[frozenset[str]]:
    """Runtime helper: the pairs of trigger *names* on *metatype* whose
    firing order is observable.  Pure computation over declarations —
    safe to call (and cache) from inside a transaction."""
    cache: dict[int, EffectSet] = {}

    def effect_of(info: "TriggerInfo", mt: "Metatype") -> EffectSet:
        eff = cache.get(id(info))
        if eff is None:
            eff = infer_trigger_effects(info, mt)
            cache[id(info)] = eff
        return eff

    pairs: set[frozenset[str]] = set()
    infos = metatype.all_trigger_infos
    for i, a in enumerate(infos):
        for b in infos[i + 1 :]:
            if a is b:
                continue
            if _conflict(a, b, metatype, effect_of):
                pairs.add(frozenset((a.name, b.name)))
    return frozenset(pairs)
