"""Coupling-mode lints (ODE040–ODE041).

The ECA coupling modes change what a trigger action's primitives mean:

* ``ODE040`` — an action that calls ``tabort`` under *dependent* or
  *!dependent* coupling.  Detached actions run in their own transaction
  (Section 4.2); ``tabort`` there aborts only that private transaction,
  never the triggering one — almost certainly not what a declaration
  ported from an immediate trigger intends.  Detection is static: the
  ``__ode_tabort__`` tag the O++ front end stamps on compiled ``tabort``
  actions, falling back to scanning the action's Python source for a
  ``tabort`` call.
* ``ODE041`` — a deferred (``end``-coupled) trigger whose expression
  watches ``before tcomplete``.  Deferred firings are processed while the
  commit is already underway — the same point the transaction event is
  posted — so anchoring a deferred trigger on commit is a race against
  its own firing pass.
"""

from __future__ import annotations

import inspect
import re
from typing import TYPE_CHECKING, Any, Callable

from repro.analysis.diagnostics import Diagnostic, Location
from repro.core.trigger_def import CouplingMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.trigger_def import TriggerInfo

_TABORT_CALL = re.compile(r"\btabort\b")


def action_may_tabort(action: Callable[..., Any]) -> bool:
    """Whether the action statically looks like it calls ``tabort``.

    Checks the ``__ode_tabort__`` tag first (set by the O++ action
    compiler), then scans the callable's source.  Unreadable source (C
    extensions, exec'd code) conservatively counts as "no".
    """
    if getattr(action, "__ode_tabort__", False):
        return True
    try:
        source = inspect.getsource(action)
    except (OSError, TypeError):
        return False
    return bool(_TABORT_CALL.search(source))


def check_coupling(info: "TriggerInfo", type_name: str) -> list[Diagnostic]:
    """Run the coupling-mode lints over one compiled trigger."""
    diagnostics: list[Diagnostic] = []
    where = Location(type_name, info.name)

    if info.coupling in (
        CouplingMode.DEPENDENT,
        CouplingMode.INDEPENDENT,
    ) and action_may_tabort(info.action):
        diagnostics.append(
            Diagnostic(
                "ODE040",
                f"action calls tabort but the trigger is "
                f"{info.coupling.value}-coupled: the action runs in its "
                "own transaction, so tabort aborts only that detached "
                "transaction — the triggering transaction commits anyway",
                where,
            )
        )

    if info.coupling is CouplingMode.END:
        watched = {event.symbol for event in info.compiled.expr.basic_events()}
        if "before tcomplete" in watched:
            diagnostics.append(
                Diagnostic(
                    "ODE041",
                    "deferred (end-coupled) trigger watches 'before "
                    "tcomplete': deferred firings are processed during "
                    "commit, the same point the transaction event is "
                    "posted, so the detection races its own firing pass",
                    where,
                )
            )
    return diagnostics
