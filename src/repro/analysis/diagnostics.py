"""Diagnostic records for the static trigger analyzer.

Every finding the analyzer can produce has a *stable* code (``ODE001``,
``ODE002``, ...) so tooling — CI gates, suppression lists, the test suite's
fixture assertions — can match on codes rather than message text.  A
:class:`Diagnostic` pairs a code with a severity, a human-readable message,
and a :class:`Location` naming the class / trigger / FSM state it refers
to.  ``render_text`` and ``render_json`` are the two output formats of
``python -m repro.analysis``.
"""

from __future__ import annotations

import dataclasses
import enum
import json


class Severity(enum.IntEnum):
    """Ordered severity levels; comparisons follow the integer order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "warning", not "Severity.WARNING"
        return self.name.lower()

    @classmethod
    def parse(cls, value: "Severity | str") -> "Severity":
        if isinstance(value, cls):
            return value
        try:
            return cls[value.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {value!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None


#: The stable diagnostic catalogue: code -> (default severity, title).
#: Codes are grouped by pass: 00x reachability/liveness, 01x masks,
#: 02x subsumption, 03x cascades, 04x coupling modes, 05x database state,
#: 20x effect-inference termination/confluence/metadata, 30x/31x static and
#: dynamic concurrency (lock footprints, Section 6 amplification), 40x
#: compilability (the generated-code posting fast path's gating judgments
#: — an ODE4xx finding means the compile tier withholds its proof and the
#: trigger posts through the interpreter).
CODES: dict[str, tuple[Severity, str]] = {
    "ODE001": (Severity.WARNING, "unreachable FSM state"),
    "ODE002": (Severity.WARNING, "FSM state cannot reach an accept state"),
    "ODE003": (Severity.ERROR, "trigger can never fire (empty language)"),
    "ODE010": (Severity.WARNING, "vacuous mask"),
    "ODE011": (Severity.WARNING, "trigger-level mask predicate is never used"),
    "ODE020": (Severity.WARNING, "trigger subsumed by another trigger"),
    "ODE021": (Severity.WARNING, "triggers accept identical event sequences"),
    "ODE030": (Severity.ERROR, "unbounded immediate trigger cascade cycle"),
    "ODE031": (Severity.WARNING, "unbounded cross-transaction trigger cascade cycle"),
    "ODE032": (Severity.WARNING, "action posts an unknown user event"),
    "ODE040": (Severity.WARNING, "tabort from a detached action"),
    "ODE041": (Severity.WARNING, "deferred trigger watches 'before tcomplete'"),
    "ODE050": (Severity.WARNING, "active trigger is stuck in a dead state"),
    "ODE051": (Severity.INFO, "trigger state references a type not loaded"),
    "ODE200": (Severity.ERROR, "irrefutable inferred cascade cycle"),
    "ODE201": (Severity.WARNING, "predicate-guarded cascade cycle"),
    "ODE202": (Severity.WARNING, "non-confluent trigger pair"),
    "ODE203": (Severity.WARNING, "stale posts= declaration"),
    "ODE204": (Severity.INFO, "action posts an undeclared user event"),
    "ODE205": (Severity.INFO, "stale suppress= declaration"),
    "ODE206": (Severity.INFO, "action effects unknown (source unavailable)"),
    "ODE300": (Severity.WARNING, "trigger turns read access into write access"),
    "ODE301": (Severity.WARNING, "predicted lock-order deadlock cycle"),
    "ODE302": (Severity.WARNING, "S->X lock upgrade under held locks"),
    "ODE310": (Severity.WARNING, "observed lock trace contradicts static footprint"),
    "ODE400": (Severity.INFO, "impure mask blocks codegen"),
    "ODE401": (Severity.WARNING, "mask references unresolvable free names"),
    "ODE402": (Severity.INFO, "FSM too large or dense to specialize"),
    "ODE403": (Severity.INFO, "immediate action may re-enter posting mid-advance"),
    "ODE404": (Severity.INFO, "effects unknown; compilability unprovable"),
}


@dataclasses.dataclass(frozen=True)
class Location:
    """What a diagnostic points at: type, trigger, and/or FSM state."""

    type_name: str = ""
    trigger: str = ""
    state: int | None = None

    def __str__(self) -> str:
        parts = []
        if self.type_name:
            parts.append(self.type_name)
        if self.trigger:
            parts.append(self.trigger)
        label = ".".join(parts) or "<machine>"
        if self.state is not None:
            label += f" state {self.state}"
        return label


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    message: str
    location: Location = dataclasses.field(default_factory=Location)
    severity: Severity | None = None
    #: Names of other triggers involved (the subsuming trigger, the other
    #: members of a cascade cycle, ...) — machine-readable cross references.
    related: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity is None:
            object.__setattr__(self, "severity", CODES[self.code][0])

    @property
    def title(self) -> str:
        return CODES[self.code][1]

    def render(self) -> str:
        related = f" (see: {', '.join(self.related)})" if self.related else ""
        return f"{self.code} {self.severity} {self.location}: {self.message}{related}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "title": self.title,
            "type": self.location.type_name,
            "trigger": self.location.trigger,
            "state": self.location.state,
            "message": self.message,
            "related": list(self.related),
        }


def render_text(diagnostics: list[Diagnostic]) -> str:
    """One line per finding plus a severity summary — the CLI's default."""
    lines = [d.render() for d in diagnostics]
    errors = sum(1 for d in diagnostics if d.severity >= Severity.ERROR)
    warnings = sum(1 for d in diagnostics if d.severity == Severity.WARNING)
    lines.append(
        f"{len(diagnostics)} finding(s): {errors} error(s), {warnings} warning(s)"
    )
    return "\n".join(lines)


def render_json(diagnostics: list[Diagnostic]) -> str:
    """The findings as a JSON array (stable keys, machine consumption)."""
    return json.dumps([d.to_dict() for d in diagnostics], indent=2)
