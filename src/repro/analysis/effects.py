"""Effect inference for trigger actions.

The PR-1 linter saw only what declarations *said* (``posts=`` metadata);
this module infers what actions *do*.  Given a trigger's action callable
we recover its source with :func:`inspect.getsource`, parse it with
:mod:`ast`, and abstract the body into an :class:`EffectSet`:

* ``reads`` / ``writes`` — attributes loaded/stored on the anchor
  (``self``); attributes touched on other objects appear as ``"*.attr"``.
* ``calls`` — member functions invoked *through the anchor handle*.
  These are the calls that post member events at run time (inside an
  ordinary method body ``self`` is the raw object, so nested
  method-to-method calls post nothing and are only *inlined* for their
  data effects, never surfaced here).
* ``foreign_calls`` — methods invoked on other handles (``deref``'d
  pointers, parameters); they may post member events on *other* classes.
* ``posts`` — user events raised via ``post_event``/``post_user_event``
  with a literal name.
* ``db_ops`` — persistent allocation/deletion/index mutations through
  ``ctx.db``.
* ``aborts`` — the action can abort the transaction (``ctx.tabort`` or a
  ``raise``).

The analysis is a *may* analysis with a sound escape hatch: anything
dynamic — a computed ``getattr``, a non-literal event name, a call to an
unknown bare name — sets ``unknown`` instead of guessing, and the ODE2xx
passes treat unknown effects conservatively (no inferred cascade edges
are claimed, confluence is not asserted).  Actions whose source cannot
be recovered at all (``eval``'d lambdas, C callables) come back with
``analyzed=False``, which the metadata pass reports as ODE206.

O++-compiled actions (``repro.opp``) are closures over parsed syntax,
not inspectable source; they carry ``__ode_calls__`` / ``__ode_tabort__``
tags instead, which this module prefers over source parsing.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
import textwrap
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.trigger_def import TriggerInfo
    from repro.objects.metatype import Metatype

__all__ = ["EffectSet", "infer_trigger_effects", "infer_callable_effects"]

# How deep same-class method calls are inlined before giving up.  The
# repo's deepest real chain is 2 (action -> method); 5 leaves headroom
# without letting pathological recursion blow up the walker.
_MAX_INLINE_DEPTH = 5

# Builtins whose calls neither mutate the anchor nor post events; calls
# to any other bare name widen to ``unknown``.
_PURE_BUILTINS = frozenset(
    {
        "abs", "all", "any", "bool", "dict", "divmod", "enumerate",
        "filter", "float", "format", "frozenset", "hasattr", "id", "int",
        "isinstance", "issubclass", "iter", "len", "list", "map", "max",
        "min", "next", "print", "range", "repr", "round", "set", "sorted",
        "str", "sum", "tuple", "type", "zip",
    }
)

# Container methods that mutate their receiver: ``self.items.append(x)``
# is a *write* of ``items`` even though the attribute is only loaded.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "sort",
        "reverse", "add", "discard", "update", "setdefault", "popitem",
    }
)

_POST_METHODS = frozenset({"post_event", "post_user_event"})

_DB_OPS = {
    "pnew": "new",
    "pdelete": "delete",
    "create_index": "index",
    "drop_index": "index",
}


@dataclasses.dataclass(frozen=True)
class EffectSet:
    """The inferred may-effects of one trigger action."""

    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()
    calls: frozenset[str] = frozenset()
    foreign_calls: frozenset[str] = frozenset()
    posts: frozenset[str] = frozenset()
    db_ops: frozenset[str] = frozenset()
    aborts: bool = False
    unknown: bool = False
    unknown_reasons: tuple[str, ...] = ()
    analyzed: bool = True

    def union(self, other: "EffectSet") -> "EffectSet":
        return EffectSet(
            reads=self.reads | other.reads,
            writes=self.writes | other.writes,
            calls=self.calls | other.calls,
            foreign_calls=self.foreign_calls | other.foreign_calls,
            posts=self.posts | other.posts,
            db_ops=self.db_ops | other.db_ops,
            aborts=self.aborts or other.aborts,
            unknown=self.unknown or other.unknown,
            unknown_reasons=tuple(
                dict.fromkeys(self.unknown_reasons + other.unknown_reasons)
            ),
            analyzed=self.analyzed and other.analyzed,
        )

    def without_member_calls(self) -> "EffectSet":
        """Drop anchor-method calls (used when inlining a method body:
        inside a method ``self`` is the raw object, so its own
        ``self.m()`` calls cannot post member events)."""
        return dataclasses.replace(self, calls=frozenset())

    def conflicts(self, other: "EffectSet") -> frozenset[str]:
        """Attributes over which two actions fail to commute
        (write/write or read/write overlap)."""
        return (
            (self.writes & other.writes)
            | (self.writes & other.reads)
            | (self.reads & other.writes)
        )

    def widen(self, reason: str) -> "EffectSet":
        return dataclasses.replace(
            self,
            unknown=True,
            unknown_reasons=tuple(dict.fromkeys(self.unknown_reasons + (reason,))),
        )


def infer_trigger_effects(
    info: "TriggerInfo", metatype: Optional["Metatype"] = None
) -> EffectSet:
    """Infer the effect set of *info*'s action, resolving string actions
    and method inlining against *metatype* (the anchor class)."""
    cls = getattr(metatype, "pyclass", None) if metatype is not None else None
    spec = getattr(info, "action_spec", None)
    if isinstance(spec, str):
        # ``action="raise_limit"`` calls the named member through the
        # anchor handle, so the member's event fires and its body runs.
        eff = EffectSet(calls=frozenset({spec}))
        method = _class_method(cls, spec)
        if method is None:
            return eff.widen(f"string action names unknown method {spec!r}")
        body = _callable_effects(method, cls, _MAX_INLINE_DEPTH, set())
        return eff.union(body.without_member_calls())
    fn = spec if callable(spec) else info.action
    if fn is None:
        return EffectSet(analyzed=False, unknown=True,
                         unknown_reasons=("no action",))
    return _callable_effects(fn, cls, _MAX_INLINE_DEPTH, set())


def infer_callable_effects(fn, cls=None) -> EffectSet:
    """Public helper: infer the effects of a bare action callable."""
    return _callable_effects(fn, cls, _MAX_INLINE_DEPTH, set())


# --------------------------------------------------------------------------
# internals


def _class_method(cls, name):
    if cls is None:
        return None
    method = inspect.getattr_static(cls, name, None)
    if isinstance(method, (staticmethod, classmethod)):
        method = method.__func__
    return method if callable(method) else None


def _callable_effects(fn, cls, depth: int, visited: set) -> EffectSet:
    # O++-compiled closures carry effect tags; prefer them (their shared
    # closure source would only widen to unknown).
    calls_tag = getattr(fn, "__ode_calls__", None)
    posts_tag = getattr(fn, "__ode_posts__", None)
    if calls_tag is not None or posts_tag is not None:
        eff = EffectSet(
            calls=frozenset(calls_tag or ()),
            posts=frozenset(posts_tag or ()),
            aborts=bool(getattr(fn, "__ode_tabort__", False)),
        )
        return _inline_calls(eff, cls, depth, visited)

    node = _action_ast(fn)
    if node is None:
        return EffectSet(
            analyzed=False,
            unknown=True,
            unknown_reasons=("source unavailable",),
            aborts=bool(getattr(fn, "__ode_tabort__", False)),
        )
    argnames = _argnames(fn)
    anchor = argnames[0] if argnames else None
    ctx = argnames[1] if len(argnames) > 1 else None
    walker = _EffectWalker(anchor, ctx)
    body = node.body if isinstance(node.body, list) else [node.body]
    for stmt in body:
        walker.visit(stmt)
    eff = walker.result()
    if getattr(fn, "__ode_tabort__", False):
        eff = dataclasses.replace(eff, aborts=True)
    return _inline_calls(eff, cls, depth, visited)


def _inline_calls(eff: EffectSet, cls, depth: int, visited: set) -> EffectSet:
    if cls is None or depth <= 0:
        return eff
    for name in sorted(eff.calls):
        key = (id(cls), name)
        if key in visited:
            continue
        visited.add(key)
        method = _class_method(cls, name)
        if method is None:
            # Could be a trigger-activation attribute or a field; neither
            # reads/writes anything the walker can name, and member-event
            # mapping only needs the call name itself.
            continue
        body = _callable_effects(method, cls, depth - 1, visited)
        eff = eff.union(body.without_member_calls())
    return eff


def _argnames(fn) -> tuple[str, ...]:
    code = getattr(fn, "__code__", None)
    if code is None:
        return ()
    return tuple(code.co_varnames[: code.co_argcount])


def _action_ast(fn):
    """Source -> AST for a def or lambda, tolerating lambdas embedded in
    declaration lines (``trigger(..., action=lambda self, ctx: ...)``)."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        return None
    try:
        tree = ast.parse(source)
    except SyntaxError:
        tree = _reparse_lambda_fragment(source)
    if tree is None:
        return None
    argnames = _argnames(fn)
    candidates = [
        n
        for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
    ]
    for node in candidates:
        if tuple(a.arg for a in node.args.args) == argnames:
            return node
    return candidates[0] if candidates else None


def _reparse_lambda_fragment(source: str):
    """``getsource`` on a lambda returns the enclosing statement, which
    may not parse in isolation (it can be the middle of a call).  Slice
    out the lambda expression by progressive right-trimming."""
    start = source.find("lambda")
    while start != -1:
        tail = source[start:]
        for end in range(len(tail), 6, -1):
            try:
                return ast.parse("(" + tail[:end] + ")", mode="eval")
            except SyntaxError:
                continue
        start = source.find("lambda", start + 1)
    return None


class _EffectWalker(ast.NodeVisitor):
    """One pass over an action body, accumulating an EffectSet."""

    def __init__(self, anchor: Optional[str], ctx: Optional[str]):
        self.anchor = anchor
        self.ctx = ctx
        self.reads: set[str] = set()
        self.writes: set[str] = set()
        self.calls: set[str] = set()
        self.foreign_calls: set[str] = set()
        self.posts: set[str] = set()
        self.db_ops: set[str] = set()
        self.aborts = False
        self.unknown_reasons: list[str] = []
        self._in_raise = 0

    def result(self) -> EffectSet:
        return EffectSet(
            reads=frozenset(self.reads),
            writes=frozenset(self.writes),
            calls=frozenset(self.calls),
            foreign_calls=frozenset(self.foreign_calls),
            posts=frozenset(self.posts),
            db_ops=frozenset(self.db_ops),
            aborts=self.aborts,
            unknown=bool(self.unknown_reasons),
            unknown_reasons=tuple(dict.fromkeys(self.unknown_reasons)),
        )

    def _widen(self, reason: str) -> None:
        self.unknown_reasons.append(reason)

    # -- attribute tracking ------------------------------------------------

    def _attr_key(self, node: ast.Attribute) -> Optional[str]:
        """Name for an attribute access, or None if it should be ignored
        (ctx plumbing) or isn't a simple base."""
        base = node.value
        if isinstance(base, ast.Name):
            if base.id == self.anchor:
                return node.attr
            if base.id == self.ctx:
                return None
            return f"*.{node.attr}"
        return None

    def visit_Attribute(self, node: ast.Attribute) -> None:
        key = self._attr_key(node)
        if key is not None:
            if isinstance(node.ctx, ast.Load):
                self.reads.add(key)
            else:
                self.writes.add(key)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # ``self.x += 1`` both reads and writes x (the target is marked
        # Store, so record the read here).
        if isinstance(node.target, ast.Attribute):
            key = self._attr_key(node.target)
            if key is not None:
                self.reads.add(key)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # ``self.x[i] = v`` loads x then mutates the container: a write.
        if not isinstance(node.ctx, ast.Load) and isinstance(
            node.value, ast.Attribute
        ):
            key = self._attr_key(node.value)
            if key is not None:
                self.writes.add(key)
        self.generic_visit(node)

    # -- aborts ------------------------------------------------------------

    def visit_Raise(self, node: ast.Raise) -> None:
        self.aborts = True
        # Constructor calls inside a raise are not effects; still walk
        # the children so attribute reads in messages are seen.
        self._in_raise += 1
        try:
            self.generic_visit(node)
        finally:
            self._in_raise -= 1

    # -- calls -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        handled = False
        if isinstance(func, ast.Attribute):
            handled = self._attribute_call(node, func)
        elif isinstance(func, ast.Name):
            handled = self._name_call(node, func)
        if not handled:
            self.generic_visit(node)
        else:
            for arg in node.args:
                self.visit(arg)
            for kw in node.keywords:
                self.visit(kw.value)

    def _attribute_call(self, node: ast.Call, func: ast.Attribute) -> bool:
        base = func.value
        method = func.attr
        if method in _POST_METHODS:
            self._record_post(node)
            return True
        if isinstance(base, ast.Name):
            if base.id == self.anchor:
                self.calls.add(method)
                return True
            if base.id == self.ctx:
                if method == "tabort":
                    self.aborts = True
                return True
            if method in _MUTATOR_METHODS:
                # mutating a non-anchor name: a local or global container
                self.writes.add(f"*.{base.id}")
                return True
            self.foreign_calls.add(method)
            return True
        if isinstance(base, ast.Attribute):
            # ctx.db.<op>(...)
            if (
                isinstance(base.value, ast.Name)
                and base.value.id == self.ctx
                and base.attr == "db"
            ):
                op = _DB_OPS.get(method)
                if op is not None:
                    self.db_ops.add(op)
                return True
            key = self._attr_key(base)
            if key is not None:
                if method in _MUTATOR_METHODS:
                    self.writes.add(key)
                else:
                    self.reads.add(key)
                return True
            self.foreign_calls.add(method)
            return True
        # computed receiver: effects depend on runtime values
        self._widen("call on a computed receiver")
        return False

    def _name_call(self, node: ast.Call, func: ast.Name) -> bool:
        name = func.id
        if name in _PURE_BUILTINS:
            return True
        if name in ("getattr", "setattr", "delattr"):
            self._record_dynamic_attr(node, name)
            return True
        if self._in_raise:
            # exception constructors
            return True
        self._widen(f"call to bare name {name!r}")
        return True

    def _record_dynamic_attr(self, node: ast.Call, name: str) -> None:
        args = node.args
        if not args or not (
            isinstance(args[0], ast.Name) and args[0].id == self.anchor
        ):
            return
        if len(args) > 1 and isinstance(args[1], ast.Constant) and isinstance(
            args[1].value, str
        ):
            attr = args[1].value
            if name == "getattr":
                self.reads.add(attr)
            else:
                self.writes.add(attr)
        else:
            self._widen(f"{name} with a computed attribute name")

    def _record_post(self, node: ast.Call) -> None:
        args = node.args
        if args and isinstance(args[0], ast.Constant) and isinstance(
            args[0].value, str
        ):
            self.posts.add(args[0].value)
        else:
            self._widen("post_event with a non-literal event name")
