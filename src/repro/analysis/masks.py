"""Mask lints (ODE010–ODE011).

Two ways a mask predicate can be dead weight:

* ``ODE010`` *vacuous mask* — the predicate's outcome cannot change what
  the trigger does.  Structurally: a state whose ``True``/``False``
  pseudo-transitions resolve to the same place (the exact condition
  :func:`repro.events.minimize.prune_irrelevant_masks` eliminates — seeing
  it in a compiled machine means the pipeline is broken).  Semantically,
  for once-only triggers: a mask evaluated *only* in accept states.  By
  the time the predicate runs, acceptance has already been decided (the
  run time counts any visited accept state, footnote 5), the trigger fires
  regardless of the outcome and then deactivates — so the mask the
  declaration appears to gate the trigger with is purely decorative.
  ``Deposit || (Deposit & big)`` is the canonical example.

* ``ODE011`` — a per-trigger mask predicate (``trigger(..., masks={...})``)
  whose name the event expression never mentions.  The predicate is
  registered, shadows any class-level mask of the same name, and is never
  called.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, Location
from repro.events.fsm import DEAD, FALSE_PREFIX, TRUE_PREFIX, Fsm

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.trigger_def import TriggerInfo


def check_vacuous_masks(fsm: Fsm, where: Location) -> list[Diagnostic]:
    """Structural check: ``True``/``False`` edges that converge (ODE010)."""
    diagnostics: list[Diagnostic] = []
    for state in fsm.states:
        for mask in state.masks:
            true_dst = state.transitions.get(TRUE_PREFIX + mask)
            false_dst = state.transitions.get(FALSE_PREFIX + mask)

            def resolved(dst: int | None) -> int:
                if dst is not None:
                    return dst
                return DEAD if fsm.anchored else state.statenum

            if resolved(true_dst) == resolved(false_dst):
                diagnostics.append(
                    Diagnostic(
                        "ODE010",
                        f"mask {mask!r} is vacuous in this state: both "
                        "outcomes lead to the same successor, so the "
                        "predicate call is pure overhead",
                        Location(where.type_name, where.trigger, state.statenum),
                    )
                )
    return diagnostics


def check_trigger_masks(info: "TriggerInfo", type_name: str) -> list[Diagnostic]:
    """Trigger-level mask lints over a compiled declaration."""
    diagnostics: list[Diagnostic] = []
    where = Location(type_name, info.name)

    # ODE011: per-trigger predicates the expression never names.
    for name in sorted(info.declared_masks):
        if name not in info.compiled.masks:
            diagnostics.append(
                Diagnostic(
                    "ODE011",
                    f"trigger-level mask {name!r} is not used by event "
                    f"expression {info.compiled.text!r}; the predicate is "
                    "never evaluated",
                    where,
                )
            )

    # ODE010 (pruned form): the expression names a mask the compiled
    # machine never evaluates — minimization proved both outcomes
    # equivalent everywhere (prune_irrelevant_masks), so the predicate
    # cannot gate the trigger.  ``Ping || (Ping & maybe)`` compiles to a
    # machine with no mask states at all.
    evaluated_in: dict[str, list[int]] = {}
    for state in info.compiled.fsm.states:
        for mask in state.masks:
            evaluated_in.setdefault(mask, []).append(state.statenum)
    for mask in sorted(info.compiled.masks - set(evaluated_in)):
        diagnostics.append(
            Diagnostic(
                "ODE010",
                f"mask {mask!r} appears in event expression "
                f"{info.compiled.text!r} but the compiled machine never "
                "evaluates it: both outcomes are equivalent everywhere, "
                "so the predicate cannot gate the trigger",
                where,
            )
        )

    # ODE010 (semantic form): for a once-only trigger, a mask evaluated
    # only where acceptance is already decided cannot gate anything.
    if not info.perpetual:
        for mask, statenums in sorted(evaluated_in.items()):
            if all(info.compiled.fsm.states[n].accept for n in statenums):
                diagnostics.append(
                    Diagnostic(
                        "ODE010",
                        f"mask {mask!r} is only evaluated in accept "
                        f"state(s) {statenums}; this once-only trigger "
                        "fires regardless of the outcome and then "
                        "deactivates, so the mask cannot gate it",
                        where,
                    )
                )
    return diagnostics
