"""Declaration-metadata validation against inferred effects (ODE203–ODE206).

``posts=`` and ``suppress=`` are promises about what an action does and
which findings are deliberate.  Effect inference lets the linter check
the promises:

* ``ODE203`` (warning) — *stale posts*: the declaration claims the
  action raises a user event, the event exists, but a confidently
  analyzed body never posts it.  Stale metadata feeds phantom edges to
  the termination pass.  Only reported when inference is confident
  (``unknown`` actions might post anything) and the name resolves to a
  known user event (unresolvable names are ODE032's business).
* ``ODE204`` (info) — *missing posts*: the body posts a user event the
  declaration does not mention.  The termination pass sees it anyway
  (that is the point of inference), so this is informational hygiene.
* ``ODE205`` (info) — *stale suppress*: ``suppress=`` acknowledges a
  diagnostic code that the analyzer did not produce at this trigger (or
  that is not a known code).  Emitted by the runner, which knows the
  full pre-suppression report.
* ``ODE206`` (info) — *unknown effects*: the action's source cannot be
  recovered at all (``eval``'d code, C callables); every effect-based
  pass degrades to "unknown" for it, so the trigger is effectively
  exempt from ODE200–ODE204.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.analysis.diagnostics import CODES, Diagnostic, Location

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.effects import EffectSet
    from repro.core.trigger_def import TriggerInfo

__all__ = ["check_metadata", "check_stale_suppressions"]


def check_metadata(
    triggers: list[tuple[str, "TriggerInfo"]],
    known_user_events: set[str],
    effects: Sequence[Optional["EffectSet"]],
) -> list[Diagnostic]:
    """Compare each trigger's declared metadata with its inferred effects."""
    diagnostics: list[Diagnostic] = []
    for (type_name, info), eff in zip(triggers, effects):
        if eff is None:
            continue
        where = Location(type_name, info.name)
        if not eff.analyzed:
            diagnostics.append(
                Diagnostic(
                    "ODE206",
                    "action source is unavailable, so its effects cannot "
                    "be inferred; termination/confluence/metadata checks "
                    "treat this action as unknown",
                    where,
                )
            )
            continue
        if not eff.unknown:
            for name in info.posts:
                if name in known_user_events and name not in eff.posts:
                    diagnostics.append(
                        Diagnostic(
                            "ODE203",
                            f"posts={name!r} is declared but the action "
                            "never posts that event; stale metadata feeds "
                            "phantom cascade edges — drop the declaration "
                            "or restore the post",
                            where,
                        )
                    )
        for name in sorted(eff.posts - set(info.posts)):
            diagnostics.append(
                Diagnostic(
                    "ODE204",
                    f"action posts user event {name!r} that posts= does "
                    "not declare; inference covers it, but declaring it "
                    "documents the cascade edge",
                    where,
                )
            )
    return diagnostics


def check_stale_suppressions(
    triggers: list[tuple[str, "TriggerInfo"]],
    produced: set[tuple[str, str, str]],
    unchecked_prefixes: tuple[str, ...] = (),
) -> list[Diagnostic]:
    """ODE205: ``suppress=`` entries that acknowledge nothing.

    *produced* holds ``(type_name, trigger_name, code)`` for every
    diagnostic the passes emitted (pre-suppression).  A suppression for
    a code that never fires here — or that is not a known code at all —
    is stale and should be deleted so it cannot mask a future finding.

    *unchecked_prefixes* names code families whose passes did not run in
    this invocation (e.g. ``("ODE3",)`` when the opt-in concurrency pass
    is off): their suppressions cannot be judged, so they are skipped.
    """
    diagnostics: list[Diagnostic] = []
    for type_name, info in triggers:
        for code in info.suppress:
            if unchecked_prefixes and code in CODES and code.startswith(unchecked_prefixes):
                continue
            if code in CODES and (
                (type_name, info.name, code) in produced
                or (info.defining_type, info.name, code) in produced
            ):
                continue
            detail = (
                "an unknown diagnostic code"
                if code not in CODES
                else "a finding the analyzer does not produce here"
            )
            diagnostics.append(
                Diagnostic(
                    "ODE205",
                    f"suppress={code!r} acknowledges {detail}; delete the "
                    "stale entry so it cannot hide a future finding",
                    Location(type_name, info.name),
                )
            )
    return diagnostics
