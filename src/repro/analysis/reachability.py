"""FSM reachability and liveness analysis (ODE001–ODE003).

The compilation pipeline (subset construction + Moore minimization with a
virtual dead class) should never emit an unreachable state or a trap state
— this pass *proves* that for each compiled trigger, and diagnoses machines
of other provenance (hand-built machines, baseline detectors, machines
compiled with optimization disabled):

* ``ODE001`` — a state no event sequence can reach;
* ``ODE002`` — a reachable state from which no accept state is reachable
  (for a trigger sitting there the remaining language is empty: it is
  active, consumes lock bandwidth on every posting, and can never fire);
* ``ODE003`` — the accept states themselves are unreachable from the
  start: the trigger's language is empty and activating it is always a
  declaration bug.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, Location
from repro.events.fsm import Fsm
from repro.events.minimize import coreachable_states, reachable_states


def check_reachability(fsm: Fsm, where: Location) -> list[Diagnostic]:
    """Run the reachability/liveness checks over one machine."""
    diagnostics: list[Diagnostic] = []
    reachable = reachable_states(fsm)
    coreachable = coreachable_states(fsm)

    if fsm.start not in coreachable:
        diagnostics.append(
            Diagnostic(
                "ODE003",
                "no accept state is reachable from the start state; the "
                "trigger's event expression matches no sequence and the "
                "trigger can never fire",
                _at_state(where, fsm.start),
            )
        )
        # Unreachable/trap findings below would all be consequences of the
        # same defect; report the root cause alone.
        return diagnostics

    for state in fsm.states:
        if state.statenum not in reachable:
            diagnostics.append(
                Diagnostic(
                    "ODE001",
                    "state is unreachable from the start state; it can be "
                    "deleted without changing the trigger's behaviour",
                    _at_state(where, state.statenum),
                )
            )
        elif state.statenum not in coreachable:
            diagnostics.append(
                Diagnostic(
                    "ODE002",
                    "no path from this state leads to an accept state; a "
                    "trigger reaching it stays active forever but can "
                    "never fire (anchored machines should fall into the "
                    "implicit dead state instead)",
                    _at_state(where, state.statenum),
                )
            )
    return diagnostics


def _at_state(where: Location, state: int) -> Location:
    """*where* with the state number filled in."""
    return Location(where.type_name, where.trigger, state)
