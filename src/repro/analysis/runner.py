"""Pass orchestration: run every analysis over machines, classes, databases.

The passes themselves live one-per-module (:mod:`reachability`,
:mod:`masks`, :mod:`subsumption`, :mod:`cascade`, :mod:`coupling`); this
module knows how to walk the object model — a bare :class:`Fsm`, a
compiled :class:`TriggerInfo`, a class (via its metatype), a set of
classes, the whole type registry, or an open database — and aggregate the
findings into an :class:`AnalysisReport`.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterable

from repro.analysis.cascade import check_cascades
from repro.analysis.concurrency import check_concurrency
from repro.analysis.confluence import check_confluence
from repro.analysis.coupling import check_coupling
from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    render_json,
    render_text,
)
from repro.analysis.effects import EffectSet, infer_trigger_effects
from repro.analysis.masks import check_trigger_masks, check_vacuous_masks
from repro.analysis.metadata import check_metadata, check_stale_suppressions
from repro.analysis.reachability import check_reachability
from repro.analysis.subsumption import check_subsumption
from repro.events.fsm import DEAD, Fsm
from repro.events.minimize import coreachable_states

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.trigger_def import TriggerInfo
    from repro.objects.database import Database
    from repro.objects.metatype import Metatype, TypeRegistry


@dataclasses.dataclass
class AnalysisReport:
    """The aggregated findings of one analyzer run."""

    diagnostics: list[Diagnostic] = dataclasses.field(default_factory=list)

    def extend(self, found: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(found)

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def render_text(self) -> str:
        return render_text(self.diagnostics)

    def render_json(self) -> str:
        return render_json(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)


def analyze_machine(fsm: Fsm, where: Location | None = None) -> list[Diagnostic]:
    """The machine-level passes: reachability/liveness + structural masks."""
    where = where or Location()
    return check_reachability(fsm, where) + check_vacuous_masks(fsm, where)


def analyze_trigger(info: "TriggerInfo", type_name: str) -> list[Diagnostic]:
    """Every per-trigger pass over one compiled declaration."""
    where = Location(type_name, info.name)
    return (
        analyze_machine(info.compiled.fsm, where)
        + check_trigger_masks(info, type_name)
        + check_coupling(info, type_name)
    )


def _metatype_of(target) -> "Metatype":
    metatype = getattr(target, "__metatype__", target)
    if not hasattr(metatype, "all_trigger_infos"):
        raise TypeError(
            f"cannot analyze {target!r}: expected a persistent class or "
            "metatype with compiled triggers"
        )
    return metatype


def analyze_classes(
    targets: Iterable,
    *,
    concurrency: bool = False,
    confirm_witnesses: bool = False,
    compilability: bool = False,
) -> AnalysisReport:
    """Analyze a set of classes (or metatypes) together.

    Per-trigger passes run over each class's *own* triggers (so a base
    class shared by several analyzed subclasses is not re-analyzed through
    each of them); subsumption runs over each class's full trigger set —
    inherited against own — with pairs deduplicated; cascade detection
    runs over the union, since posted user events cross class boundaries.

    ``concurrency=True`` adds the opt-in ODE3xx lock-footprint pass;
    ``confirm_witnesses=True`` additionally replays synthesized
    interleavings on the cooperative scheduler to tag predicted
    ODE301/ODE302 deadlocks CONFIRMED vs POSSIBLE (slower: each witness
    spins up a scratch in-memory database).  ``compilability=True`` adds
    the opt-in ODE4xx pass judging which triggers the generated-code
    posting tier may specialize (findings are advisory — a flagged
    trigger simply posts through the interpreter).
    """
    report = AnalysisReport()
    metatypes = [_metatype_of(t) for t in targets]

    # Declaration-level suppressions: a trigger may acknowledge a code as
    # intended (``trigger(..., suppress=("ODE020",))``); findings located
    # at that trigger with that code are dropped.
    suppressed: dict[tuple[str, str], frozenset[str]] = {}
    for metatype in metatypes:
        for info in metatype.all_trigger_infos:
            if info.suppress:
                suppressed[(metatype.name, info.name)] = frozenset(info.suppress)
                suppressed[(info.defining_type, info.name)] = frozenset(info.suppress)

    # Effect inference is memoized per run: the cascade, confluence and
    # metadata passes all consult the same sets, and inference (source
    # retrieval + an AST walk) is the expensive part.
    effect_cache: dict[tuple[int, int], EffectSet] = {}

    def effect_of(info: "TriggerInfo", metatype: "Metatype") -> EffectSet:
        key = (id(info), id(metatype))
        eff = effect_cache.get(key)
        if eff is None:
            eff = infer_trigger_effects(info, metatype)
            effect_cache[key] = eff
        return eff

    seen_infos: set[int] = set()
    all_triggers: list[tuple[str, "TriggerInfo"]] = []
    trigger_effects: list[EffectSet] = []
    trigger_decls: list[list] = []
    known_user_events: set[str] = set()
    for metatype in metatypes:
        for decl in metatype.declared_events:
            if decl.kind == "user":
                known_user_events.add(decl.name)
        for info in metatype.trigger_infos:
            if id(info) in seen_infos:
                continue
            seen_infos.add(id(info))
            all_triggers.append((metatype.name, info))
            trigger_effects.append(effect_of(info, metatype))
            trigger_decls.append(metatype.declared_events)
            report.extend(analyze_trigger(info, metatype.name))

    seen_pairs: set[frozenset[int]] = set()
    for metatype in metatypes:
        infos = metatype.all_trigger_infos
        fresh = []
        for i, first in enumerate(infos):
            for second in infos[i + 1 :]:
                pair = frozenset((id(first), id(second)))
                if pair not in seen_pairs:
                    seen_pairs.add(pair)
                    fresh.append((first, second))
        # check_subsumption wants a flat list; hand it exactly the fresh
        # pairs by running it pair-at-a-time.
        for first, second in fresh:
            report.extend(check_subsumption([first, second], metatype.name))

    report.extend(
        check_cascades(
            all_triggers,
            known_user_events,
            effects=trigger_effects,
            declared_events=trigger_decls,
        )
    )
    report.extend(check_confluence(metatypes, effect_of))
    report.extend(
        check_metadata(all_triggers, known_user_events, trigger_effects)
    )
    if concurrency:
        report.extend(
            check_concurrency(
                metatypes,
                effect_of,
                confirm=confirm_witnesses,
                suppressed=suppressed,
            )
        )
    if compilability:
        from repro.analysis.compilable import check_compilability

        report.extend(check_compilability(metatypes, effect_of))

    # ODE205 must see the *pre-suppression* report: a suppression is live
    # exactly when the code it names was produced at its trigger.  The
    # opt-in passes are judged only when they actually ran — a skipped
    # pass cannot prove a suppression stale.
    produced = {
        (diag.location.type_name, diag.location.trigger, diag.code)
        for diag in report.diagnostics
    }
    unchecked = tuple(
        prefix
        for prefix, ran in (("ODE3", concurrency), ("ODE4", compilability))
        if not ran
    )
    report.extend(
        check_stale_suppressions(
            all_triggers,
            produced,
            unchecked_prefixes=unchecked,
        )
    )

    if suppressed:
        report.diagnostics = [
            diag
            for diag in report.diagnostics
            if diag.code
            not in suppressed.get(
                (diag.location.type_name, diag.location.trigger), ()
            )
        ]
    return report


def analyze_class(
    target,
    *,
    concurrency: bool = False,
    confirm_witnesses: bool = False,
    compilability: bool = False,
) -> AnalysisReport:
    """Analyze one persistent class (or metatype) in isolation."""
    return analyze_classes(
        [target],
        concurrency=concurrency,
        confirm_witnesses=confirm_witnesses,
        compilability=compilability,
    )


def analyze_registry(
    registry: "TypeRegistry | None" = None,
    *,
    concurrency: bool = False,
    confirm_witnesses: bool = False,
    compilability: bool = False,
) -> AnalysisReport:
    """Analyze every registered class that declares events or triggers."""
    from repro.objects.metatype import Metatype, global_type_registry

    registry = registry or global_type_registry()
    actives = [
        metatype
        for name in sorted(registry.names())
        if isinstance(metatype := registry.find(name), Metatype)
        and metatype.has_active_facilities()
    ]
    return analyze_classes(
        actives,
        concurrency=concurrency,
        confirm_witnesses=confirm_witnesses,
        compilability=compilability,
    )


def analyze_database(db: "Database") -> AnalysisReport:
    """Database-level pass: active triggers stuck in dead/trap states.

    Declaration-level defects are caught before activation; this inspects
    the *persistent* trigger states — an anchored trigger whose match
    window passed sits in the dead state forever, still consuming an index
    entry and a lock on every posting (ODE050).
    """
    report = AnalysisReport()
    manager = db.txn_manager
    own = manager.current_or_none() is None
    if own:
        txn = manager.begin(system=True)
    else:
        txn = manager.current()
    try:
        from repro.core.trigger_state import TriggerState

        unresolved: set[str] = set()
        for obj_rid, state_rids in db.trigger_system.index.entries(txn):
            for state_rid in state_rids:
                tstate = TriggerState.decode(db.storage.read(txn.txid, state_rid))
                try:
                    info = db.registry.find(tstate.trigobjtype).trigger_info(
                        tstate.triggernum
                    )
                except Exception:
                    # An unresolvable type silently skipping its states would
                    # make a bare database target look clean no matter what;
                    # say so once per type (ODE051).
                    if tstate.trigobjtype not in unresolved:
                        unresolved.add(tstate.trigobjtype)
                        report.extend(
                            [
                                Diagnostic(
                                    "ODE051",
                                    "active trigger states reference type "
                                    f"{tstate.trigobjtype!r}, which is not "
                                    "loaded in this process; pass the module "
                                    "defining it alongside the database path "
                                    "to analyze those states",
                                    Location(tstate.trigobjtype),
                                )
                            ]
                        )
                    continue
                where = Location(
                    tstate.trigobjtype, info.name, tstate.statenum
                )
                if tstate.statenum == DEAD:
                    report.extend(
                        [
                            Diagnostic(
                                "ODE050",
                                f"active trigger on object rid {obj_rid} is "
                                "in the dead state: its anchored match "
                                "window has passed and it can never fire; "
                                "deactivate it to stop paying for it",
                                where,
                            )
                        ]
                    )
                elif tstate.statenum not in coreachable_states(info.compiled.fsm):
                    report.extend(
                        [
                            Diagnostic(
                                "ODE050",
                                f"active trigger on object rid {obj_rid} is "
                                "in a trap state with no path to an accept "
                                "state; it can never fire again",
                                where,
                            )
                        ]
                    )
    finally:
        if own:
            manager.commit(txn)
    return report
