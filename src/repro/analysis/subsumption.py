"""Trigger overlap and subsumption analysis (ODE020–ODE021).

Two triggers active on the same class both watch the class's whole event
stream, so their relationship is a language question: if every event
sequence accepted by trigger *A* is also accepted by trigger *B*
(``L(A) ⊆ L(B)``), then whenever *A* fires, *B* fires too — *A* adds no
detection power, only a second action.  That is occasionally intentional
(a logging catch-all next to a specific handler) but more often one
trigger silently shadowing a forgotten duplicate; either way the declaration
deserves a warning pointing at the pair.

The check runs the product automaton of the two extended machines
(:func:`repro.events.dfa.find_inclusion_witness`) over the union of their
alphabets.  Mask pseudo-events participate as ordinary letters: a shared
mask name means a shared predicate and so a shared letter, while a pseudo
event the other machine has never heard of is ignored by it — exactly the
run-time semantics of out-of-alphabet symbols.  Because the encoding lets
the "oracle" choose mask outcomes freely, an inclusion verdict
over-approximates real runs and is therefore *sound*: if we report
``L(A) ⊆ L(B)``, it holds for every actual predicate behaviour.

``ODE021`` flags the degenerate case — both inclusions hold, the two
triggers accept exactly the same sequences.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, Location
from repro.events.dfa import find_inclusion_witness

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.trigger_def import TriggerInfo


def _render_word(word: list[str]) -> str:
    return " · ".join(word) if word else "<empty>"


def check_subsumption(
    infos: list["TriggerInfo"], type_name: str
) -> list[Diagnostic]:
    """Pairwise language-inclusion check over one class's triggers."""
    diagnostics: list[Diagnostic] = []
    for i, first in enumerate(infos):
        for second in infos[i + 1 :]:
            extra_first = find_inclusion_witness(
                first.compiled.fsm, second.compiled.fsm
            )
            extra_second = find_inclusion_witness(
                second.compiled.fsm, first.compiled.fsm
            )
            if extra_first is None and extra_second is None:
                diagnostics.append(
                    Diagnostic(
                        "ODE021",
                        f"triggers {first.name!r} and {second.name!r} accept "
                        "identical event sequences "
                        f"({first.compiled.text!r} vs {second.compiled.text!r}); "
                        "every detection fires both actions",
                        Location(type_name, first.name),
                        related=(second.name,),
                    )
                )
            elif extra_first is None:
                diagnostics.append(
                    _subsumed(type_name, first, second, extra_second)
                )
            elif extra_second is None:
                diagnostics.append(
                    _subsumed(type_name, second, first, extra_first)
                )
            # Incomparable languages: the normal case, nothing to report.
    return diagnostics


def _subsumed(
    type_name: str,
    narrow: "TriggerInfo",
    broad: "TriggerInfo",
    witness: list[str],
) -> Diagnostic:
    return Diagnostic(
        "ODE020",
        f"every event sequence accepted by {narrow.name!r} "
        f"({narrow.compiled.text!r}) is also accepted by {broad.name!r} "
        f"({broad.compiled.text!r}); when both are active, {broad.name!r} "
        f"fires on everything {narrow.name!r} detects (and also on e.g. "
        f"{_render_word(witness)})",
        Location(type_name, narrow.name),
        related=(broad.name,),
    )
