"""Baselines and counter-designs the paper compares against.

Each module here implements a design the paper *rejected* or a competing
system it cites, so the benchmark harness can measure the claims:

* :mod:`repro.baselines.sentinel_events` — Sentinel's string-triple event
  representation [7] vs. Ode's run-time integers (experiment E1),
* :mod:`repro.baselines.rescan` — naive history-rescanning detection vs.
  incremental FSMs (experiment E2),
* :mod:`repro.baselines.event_graph` — Chakravarthy-style event-graph
  detection [6] (experiment E2),
* :mod:`repro.baselines.dense_fsm` — the dense 2-D transition array the
  implementation originally planned and abandoned as "very space
  inefficient" (Section 6, experiment E4).
"""

from repro.baselines.dense_fsm import DenseFsm
from repro.baselines.event_graph import EventGraphDetector
from repro.baselines.rescan import RescanDetector
from repro.baselines.sentinel_events import (
    IntEventTable,
    SentinelEventTable,
    sentinel_triple,
)

__all__ = [
    "DenseFsm",
    "EventGraphDetector",
    "IntEventTable",
    "RescanDetector",
    "SentinelEventTable",
    "sentinel_triple",
]
