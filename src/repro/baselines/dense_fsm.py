"""The dense 2-D transition array the paper abandoned (experiment E4).

    "We originally planned to represent each FSM's transition function as a
    normal two-dimensional array using the current state and an integer
    representing the posted event to index into an array of (next) states.
    However, this representation is very space inefficient for sparse
    arrays, so event identifiers had to be reused ...  It was found to be
    much cleaner to map each event to a unique integer and use a sparse
    array representation of the transition function."  (Section 6)

:class:`DenseFsm` materializes ``next[state][eventnum]`` over the whole
global event-integer space (0..max assigned), so its memory grows with the
number of events registered *process-wide*, not with the machine's own
alphabet — precisely the blowup that forced the redesign.  Lookup is O(1)
array indexing; the sparse list is a short linear scan.  E4 measures both
sides of that trade.
"""

from __future__ import annotations

from repro.core.trigger_def import IntFsm
from repro.events.fsm import DEAD

#: Sentinel meaning "no transition" inside the dense array.
NO_TRANSITION = -2


class DenseFsm:
    """An :class:`IntFsm` re-encoded as a dense ``next[state][event]`` array."""

    def __init__(self, fsm: IntFsm, global_event_count: int):
        """Build from *fsm*, sized for *global_event_count* event integers.

        ``global_event_count`` is ``len(global_event_registry())`` in a real
        process — every event of every class, because the integers are
        globally unique (the whole point of the Section 6 lesson).
        """
        if global_event_count < 1:
            raise ValueError("global_event_count must be positive")
        self.anchored = fsm.anchored
        self.start = fsm.start
        self.width = global_event_count + 1  # event ints are 1-based
        self.next: list[list[int]] = []
        for state in fsm.states:
            row = [NO_TRANSITION] * self.width
            for transition in state.transfunc:
                if transition.eventnum < self.width:
                    row[transition.eventnum] = transition.newstate
            self.next.append(row)
        self.accept = [state.accept for state in fsm.states]

    def move(self, statenum: int, eventnum: int) -> tuple[int, bool]:
        """O(1) dense lookup with the same ignore/dead semantics as IntFsm."""
        if statenum == DEAD:
            return DEAD, False
        if 0 <= eventnum < self.width:
            nxt = self.next[statenum][eventnum]
            if nxt != NO_TRANSITION:
                return nxt, True
        if self.anchored:
            return DEAD, True
        return statenum, False

    # -- accounting ---------------------------------------------------------------

    def cells(self) -> int:
        """Total array cells (the dense memory footprint driver)."""
        return len(self.next) * self.width

    def approx_bytes(self) -> int:
        """Approximate memory, at 8 bytes per cell (C ``int``-ish, rounded up)."""
        return self.cells() * 8

    def used_cells(self) -> int:
        """Cells holding a real transition (what the sparse form stores)."""
        return sum(
            1 for row in self.next for cell in row if cell != NO_TRANSITION
        )

    def occupancy(self) -> float:
        """Fraction of the dense array actually used."""
        return self.used_cells() / self.cells() if self.cells() else 0.0
