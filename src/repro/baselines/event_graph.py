"""Event-graph composite-event detection (experiment E2 baseline).

A simplified reimplementation of the operator-graph technique of
Chakravarthy et al. [6] (Sentinel's detector): the expression becomes a DAG
of operator nodes; each incoming event flows bottom-up, and operator nodes
combine child *occurrences* (index intervals) into larger ones, storing
partial matches inside the nodes.

To compare apples to apples with Ode's FSMs we use the same contiguous-
window semantics (a sequence ``a, b`` requires ``b`` immediately after
``a``) and report a detection when an occurrence ends at the current event.
Sequence nodes remember the end positions of completed left children —
that stored partial-match state is the per-event overhead the FSM design
avoids by collapsing everything into one integer state.

Supported operators: basic events, ``any``, sequence, union, star.  Masks
are out of scope for this baseline (Sentinel's detector handles them in a
separate condition phase).
"""

from __future__ import annotations

from repro.errors import EventError
from repro.events.ast import (
    AnyEvent,
    BasicEvent,
    EventExpr,
    ExtAnyEvent,
    Seq,
    Star,
    Union,
)


class _Node:
    """One operator node; ``feed`` returns occurrences (start, end=index)."""

    def feed(self, symbol: str, index: int) -> list[tuple[int, int]]:
        raise NotImplementedError

    def reset(self) -> None:
        pass

    def partial_state_size(self) -> int:
        return 0


class _Leaf(_Node):
    def __init__(self, symbol: str):
        self.symbol = symbol

    def feed(self, symbol: str, index: int) -> list[tuple[int, int]]:
        if symbol == self.symbol:
            return [(index, index)]
        return []


class _Any(_Node):
    def feed(self, symbol: str, index: int) -> list[tuple[int, int]]:
        return [(index, index)]


class _Union(_Node):
    def __init__(self, children: list[_Node]):
        self.children = children

    def feed(self, symbol: str, index: int) -> list[tuple[int, int]]:
        occurrences: list[tuple[int, int]] = []
        for child in self.children:
            occurrences.extend(child.feed(symbol, index))
        return occurrences

    def reset(self) -> None:
        for child in self.children:
            child.reset()

    def partial_state_size(self) -> int:
        return sum(child.partial_state_size() for child in self.children)


class _Sequence(_Node):
    """Binary sequence with contiguity: right must start at left end + 1."""

    def __init__(self, left: _Node, right: _Node):
        self.left = left
        self.right = right
        # start positions of left occurrences, keyed by their end index + 1
        # (where a right occurrence must begin).
        self._pending: dict[int, list[int]] = {}

    def feed(self, symbol: str, index: int) -> list[tuple[int, int]]:
        right_occurrences = self.right.feed(symbol, index)
        left_occurrences = self.left.feed(symbol, index)
        results: list[tuple[int, int]] = []
        for start, end in right_occurrences:
            for left_start in self._pending.get(start, ()):
                results.append((left_start, end))
        # Record left completions *after* matching so right can't use an
        # occurrence of the same event instance for both sides.
        for start, end in left_occurrences:
            self._pending.setdefault(end + 1, []).append(start)
        # A nullable right (a star) emits an empty occurrence (index+1,
        # index) in this same feed; it consumes nothing, so it may combine
        # with a left occurrence that just completed at this index.
        empty_right_starts = {
            start for start, end in right_occurrences if end < start
        }
        for left_start, left_end in left_occurrences:
            if left_end + 1 in empty_right_starts:
                results.append((left_start, left_end))
        return results

    def reset(self) -> None:
        self._pending.clear()
        self.left.reset()
        self.right.reset()

    def partial_state_size(self) -> int:
        return (
            sum(len(v) for v in self._pending.values())
            + self.left.partial_state_size()
            + self.right.partial_state_size()
        )


class _Star(_Node):
    """Zero-or-more contiguous repetitions of the child."""

    def __init__(self, child: _Node):
        self.child = child
        # Iterated runs: start -> set of "next expected" positions.
        self._runs: dict[int, set[int]] = {}

    def feed(self, symbol: str, index: int) -> list[tuple[int, int]]:
        child_occurrences = self.child.feed(symbol, index)
        results: list[tuple[int, int]] = [(index + 1, index)]  # empty match
        new_runs: list[tuple[int, int]] = []
        for start, end in child_occurrences:
            new_runs.append((start, end))  # run of length 1
            for run_start, expected in list(self._runs.items()):
                if start in expected:
                    new_runs.append((run_start, end))
        for start, end in new_runs:
            self._runs.setdefault(start, set()).add(end + 1)
            results.append((start, end))
        return results

    def reset(self) -> None:
        self._runs.clear()
        self.child.reset()

    def partial_state_size(self) -> int:
        return (
            sum(len(v) for v in self._runs.values())
            + self.child.partial_state_size()
        )


def _build(node: EventExpr) -> _Node:
    if isinstance(node, BasicEvent):
        return _Leaf(node.symbol)
    if isinstance(node, (AnyEvent, ExtAnyEvent)):
        return _Any()
    if isinstance(node, Union):
        return _Union([_build(part) for part in node.parts])
    if isinstance(node, Seq):
        built = [_build(part) for part in node.parts]
        root = built[0]
        for right in built[1:]:
            root = _Sequence(root, right)
        return root
    if isinstance(node, Star):
        return _Star(_build(node.child))
    raise EventError(f"event graph cannot handle {type(node).__name__} (masks?)")


class EventGraphDetector:
    """Operator-graph detector with contiguous-window semantics."""

    def __init__(self, expression: EventExpr):
        if expression.mask_names():
            raise EventError("the event-graph baseline does not support masks")
        self._root = _build(expression.desugar())
        self._index = -1
        self.detections = 0

    def post(self, symbol: str) -> bool:
        """Feed one event; returns whether an occurrence ends here."""
        self._index += 1
        occurrences = self._root.feed(symbol, self._index)
        matched = any(end == self._index for _, end in occurrences)
        if matched:
            self.detections += 1
        return matched

    def reset(self) -> None:
        self._root.reset()
        self._index = -1

    def partial_state_size(self) -> int:
        """Stored partial matches — the memory the FSM design avoids."""
        return self._root.partial_state_size()
