"""Naive history-rescanning composite-event detection (experiment E2).

The obvious alternative to compiling event expressions into FSMs: keep the
object's whole event history and, on every new event, re-scan it for a
match *ending at* the new event (the paper's firing rule: "the
corresponding trigger will fire at most once in response to the posting of
a single event", footnote 5).

Per-event cost grows with the history length — O(history × expression) —
whereas the incremental FSM pays O(1) state transitions.  Design goal 2
("detection of composite events should be efficient") is exactly the gap
this baseline makes visible.

The matcher interprets the AST directly with memoized backtracking.  Masks
are supported by recording every posting's mask outcomes: a ``Masked``
node completing at history position *e* consults the outcomes recorded at
the event that completed it (*e − 1*; the activation snapshot for an
empty-prefix completion at 0) — the same instant the FSM's mask state
would evaluate the predicate.  This module doubles as the executable
*oracle* for the property-based equivalence tests.
"""

from __future__ import annotations

from repro.errors import EventError
from repro.events.ast import (
    AnyEvent,
    BasicEvent,
    EventExpr,
    ExtAnyEvent,
    Masked,
    Plus,
    Relative,
    Seq,
    Star,
    Union,
)


class RescanDetector:
    """Detects a composite event by re-scanning the full history per post."""

    def __init__(
        self,
        expression: EventExpr,
        anchored: bool = False,
        activation_masks: dict[str, bool] | None = None,
    ):
        self.expr = expression
        self.anchored = anchored
        self.history: list[str] = []
        self.mask_history: list[dict[str, bool]] = []
        self.activation_masks = dict(activation_masks or {})
        self.scans = 0
        self.positions_visited = 0

    # -- posting -----------------------------------------------------------------

    def post(self, symbol: str, mask_outcomes: dict[str, bool] | None = None) -> bool:
        """Append one event; returns whether the expression now matches.

        ``mask_outcomes`` records each mask's value *at this instant*;
        later rescans replay them, since a predicate cannot be re-evaluated
        against a past object state.
        """
        self.history.append(symbol)
        self.mask_history.append(dict(mask_outcomes or {}))
        return self._match_ending_now()

    def reset(self) -> None:
        self.history.clear()
        self.mask_history.clear()

    # -- matching -------------------------------------------------------------------

    def _match_ending_now(self) -> bool:
        """Does any window of the history ending at its tail match?"""
        self.scans += 1
        n = len(self.history)
        starts = range(n) if not self.anchored else (0,)
        for start in starts:
            memo: dict[tuple[int, int], frozenset[int]] = {}
            if n in self._ends(self.expr, start, memo):
                return True
        return False

    def _mask_value(self, name: str, end: int) -> bool:
        """The recorded value of *name* at the instant position *end* was
        reached (activation snapshot for end == 0)."""
        if end == 0:
            return bool(self.activation_masks.get(name, False))
        return bool(self.mask_history[end - 1].get(name, False))

    def _ends(
        self,
        node: EventExpr,
        pos: int,
        memo: dict[tuple[int, int], frozenset[int]],
    ) -> frozenset[int]:
        """All positions where *node*, started at *pos*, can end."""
        key = (id(node), pos)
        cached = memo.get(key)
        if cached is not None:
            return cached
        self.positions_visited += 1
        history = self.history
        if isinstance(node, BasicEvent):
            if node.is_pseudo():
                raise EventError("rescan matches raw ASTs; do not desugar masks")
            if pos < len(history) and history[pos] == node.symbol:
                result = frozenset((pos + 1,))
            else:
                result = frozenset()
        elif isinstance(node, (AnyEvent, ExtAnyEvent)):
            # No pseudo-events exist in the raw history: both wildcards
            # match exactly one real event.
            if pos < len(history):
                result = frozenset((pos + 1,))
            else:
                result = frozenset()
        elif isinstance(node, Masked):
            result = frozenset(
                end
                for end in self._ends(node.child, pos, memo)
                if self._mask_value(node.mask, end)
            )
        elif isinstance(node, Seq):
            current = frozenset((pos,))
            for part in node.parts:
                nxt: set[int] = set()
                for p in current:
                    nxt |= self._ends(part, p, memo)
                current = frozenset(nxt)
                if not current:
                    break
            result = current
        elif isinstance(node, Union):
            collected: set[int] = set()
            for part in node.parts:
                collected |= self._ends(part, pos, memo)
            result = frozenset(collected)
        elif isinstance(node, Plus):
            # e+ = e followed by e*
            result = self._star_from(
                node.child, self._ends(node.child, pos, memo), memo
            )
        elif isinstance(node, Relative):
            # relative(a, b) = a, any*, b
            after_first = self._ends(node.first, pos, memo)
            reachable: set[int] = set()
            for p in after_first:
                reachable.update(range(p, len(history) + 1))  # any* gap
            collected: set[int] = set()
            for p in reachable:
                collected |= self._ends(node.second, p, memo)
            result = frozenset(collected)
        elif isinstance(node, Star):
            result = self._star_from(node.child, frozenset((pos,)), memo)
        else:
            raise EventError(f"rescan matcher cannot handle {type(node).__name__}")
        memo[key] = result
        return result

    def _star_from(
        self,
        child: EventExpr,
        seeds: frozenset[int],
        memo: dict[tuple[int, int], frozenset[int]],
    ) -> frozenset[int]:
        """Closure of *child* repetitions starting from each seed position."""
        reached: set[int] = set(seeds)
        frontier = set(seeds)
        while frontier:
            new: set[int] = set()
            for p in frontier:
                for q in self._ends(child, p, memo):
                    if q not in reached and q > p:
                        new.add(q)
            reached |= new
            frontier = new
        return frozenset(reached)
