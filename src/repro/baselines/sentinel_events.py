"""Sentinel's event representation vs. Ode's integers (experiment E1).

    "Ode's mapping of basic events to globally unique integers is likely to
    have significantly lower event posting overhead than Sentinel's method
    of representing an event as a triple of strings: the class name, the
    member function prototype, and the string 'begin' (before) or 'end'
    (after)."  (paper Section 7)

Both tables below map an event identity to its subscriber list; the posting
hot path differs only in the key work:

* :class:`IntEventTable` — the Ode design: the wrapper captured the integer
  at class-processing time, so a post is one integer-keyed dict probe.
* :class:`SentinelEventTable` — the Sentinel design: every post *builds*
  the ``(class name, member prototype, "begin"/"end")`` triple and hashes
  three strings to find subscribers.

The benchmark drives both with identical subscriber fan-outs.
"""

from __future__ import annotations

from collections.abc import Callable


def sentinel_triple(class_name: str, prototype: str, modifier: str) -> tuple[str, str, str]:
    """Construct Sentinel's event identity (built fresh on every post)."""
    return (class_name, prototype, modifier)


class IntEventTable:
    """Subscriber table keyed by Ode's globally-unique event integers."""

    def __init__(self) -> None:
        self._subscribers: dict[int, list[Callable[[], None]]] = {}
        self.posts = 0
        self.deliveries = 0

    def subscribe(self, eventnum: int, callback: Callable[[], None]) -> None:
        self._subscribers.setdefault(eventnum, []).append(callback)

    def post(self, eventnum: int) -> int:
        """The Ode hot path: one int-keyed probe."""
        self.posts += 1
        callbacks = self._subscribers.get(eventnum)
        if not callbacks:
            return 0
        for callback in callbacks:
            callback()
        self.deliveries += len(callbacks)
        return len(callbacks)


class SentinelEventTable:
    """Subscriber table keyed by Sentinel's string triples."""

    def __init__(self) -> None:
        self._subscribers: dict[tuple[str, str, str], list[Callable[[], None]]] = {}
        self.posts = 0
        self.deliveries = 0

    def subscribe(
        self, class_name: str, prototype: str, modifier: str, callback: Callable[[], None]
    ) -> None:
        self._subscribers.setdefault(
            sentinel_triple(class_name, prototype, modifier), []
        ).append(callback)

    def post(self, class_name: str, prototype: str, modifier: str) -> int:
        """The Sentinel hot path: build and hash the triple per post."""
        self.posts += 1
        triple = sentinel_triple(class_name, prototype, modifier)
        callbacks = self._subscribers.get(triple)
        if not callbacks:
            return 0
        for callback in callbacks:
            callback()
        self.deliveries += len(callbacks)
        return len(callbacks)
