"""The Ode trigger system — the paper's primary contribution.

``event-expression ==> action`` triggers declared in persistent class
definitions, activated per object at run time, detected by extended finite
state machines, fired under the ECA coupling modes, with all trigger state
persistent so composite events may span applications.

Layout mirrors Section 5 of the paper:

* :mod:`repro.core.registry` — run-time assignment of globally-unique
  integers to basic events (``eventRep``, Section 5.2),
* :mod:`repro.core.trigger_def` — ``TriggerInfo`` containers and the
  integer-keyed sparse FSM representation (Sections 5.4.3–5.4.4),
* :mod:`repro.core.trigger_state` — the persistent ``TriggerState``
  (Section 5.4.1),
* :mod:`repro.core.trigger_index` — the object → active-triggers index,
* :mod:`repro.core.wrappers` — generated member-function wrappers that
  post events (Section 5.3),
* :mod:`repro.core.posting` — ``PostEvent`` (Section 5.4.5),
* :mod:`repro.core.manager` — activation/deactivation, coupling modes,
  transaction events (Sections 4.1–4.2, 5.5),
* :mod:`repro.core.declarations` — the O++-analogue class declaration DSL,
* :mod:`repro.core.monitored`, :mod:`repro.core.timers`,
  :mod:`repro.core.interobject`, :mod:`repro.core.constraints` — the
  extensions Section 8 lists as future work.
"""

from repro.core.constraints import activate_constraints
from repro.core.declarations import set_strict_analysis, strict_analysis_enabled, trigger
from repro.core.interobject import InterObjectTrigger
from repro.core.manager import TriggerSystem
from repro.core.monitored import LocalTriggerSystem, Monitored
from repro.core.posting import EventOccurrence, TriggerContext
from repro.core.registry import EventRegistry, global_event_registry
from repro.core.timers import TimerService, VirtualClock
from repro.core.trigger_def import CouplingMode, TriggerDecl, TriggerInfo
from repro.core.trigger_state import TriggerId, TriggerState

__all__ = [
    "CouplingMode",
    "EventOccurrence",
    "EventRegistry",
    "InterObjectTrigger",
    "LocalTriggerSystem",
    "Monitored",
    "TimerService",
    "TriggerContext",
    "TriggerDecl",
    "TriggerId",
    "TriggerInfo",
    "TriggerState",
    "TriggerSystem",
    "VirtualClock",
    "activate_constraints",
    "global_event_registry",
    "set_strict_analysis",
    "strict_analysis_enabled",
    "trigger",
]
