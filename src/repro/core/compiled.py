"""The generated-code posting fast path (the ROADMAP's "compile tier").

The interpreter in :mod:`repro.core.posting` pays, per active trigger per
posting: a ``TriggerState`` decode, a registry lookup, a fresh ``evaluate``
closure, and :meth:`IntFsm.advance`'s linear transition search plus one
pseudo-int dictionary hop per mask.  For triggers the ODE4xx pass
(:mod:`repro.analysis.compilable`) proves COMPILABLE — pure masks, a
resolvable free-name environment, a machine small enough to specialize,
and no immediate action that re-enters posting mid-advance — all of that
can be burned into one generated Python function per trigger:

* the sparse transition dispatch becomes branchy ``if eventnum == k``
  code over the concrete event integers;
* the §5.4.5 pseudo-event quiesce walk is unrolled at compile time into a
  decision tree over mask outcomes, with the mask predicates called
  inline;
* because compiled masks are *proven pure*, an outcome already decided on
  the current path is reused rather than re-evaluated — the pseudo-step
  counter still advances exactly as the interpreter's would, so the
  ``posting.masks_evaluated_posting`` metric is preserved.

Artifacts are cached per ``TriggerInfo`` and keyed by a process-global
**schema version** (the edgedb ``edb/server/compiler`` artifact-cache
shape): any trigger add/remove (class (re)compilation, shim registration)
or strict-mode flip bumps the version and evicts every artifact, so a
stale closure can never fire for a redefined trigger.  Correctness never
depends on codegen — whenever the pass withholds its proof (or obs
tracing wants per-mask events) the posting loop falls back to the
interpreter and counts ``posting.compiled_fallbacks``.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import FSMError
from repro.events.fsm import DEAD, MAX_PSEUDO_STEPS

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.trigger_def import IntFsm, TriggerInfo
    from repro.objects.metatype import Metatype

__all__ = [
    "CompiledArtifact",
    "CompiledTier",
    "PlanError",
    "UNROLL_BUDGET",
    "bump_schema_version",
    "generate_advance",
    "generate_advance_source",
    "global_compiled_tier",
    "last_bump_reason",
    "plan_unroll",
    "schema_version",
]

#: Cap on emitted decision-tree nodes (branches + leaves) when unrolling
#: one machine's quiesce cascades.  Real expression-compiled machines sit
#: far below this; blowing the budget is the ODE402 "too dense" judgment.
UNROLL_BUDGET = 256


class PlanError(Exception):
    """The machine cannot be statically specialized (ODE402 territory)."""


# ---------------------------------------------------------------------------
# Schema / trigger-index versioning
# ---------------------------------------------------------------------------

_VERSION_LOCK = threading.Lock()
_SCHEMA_VERSION = 0
_LAST_BUMP_REASON = ""


def schema_version() -> int:
    """The process-global trigger-schema version counter."""
    return _SCHEMA_VERSION


def last_bump_reason() -> str:
    return _LAST_BUMP_REASON


def bump_schema_version(reason: str = "") -> int:
    """Invalidate every compiled artifact (trigger set or mode changed).

    Called from the three places the trigger universe can shift under a
    running process: :func:`repro.core.declarations.process_active_class`
    (a class — and its triggers — was (re)compiled),
    :meth:`repro.objects.metatype.TypeRegistry.register_shim` (a run-time
    bridge trigger appeared), and
    :func:`repro.core.declarations.set_strict_analysis` (the analysis
    regime flipped).  Bumping is cheap; artifact caches re-validate
    lazily against the counter.
    """
    global _SCHEMA_VERSION, _LAST_BUMP_REASON
    with _VERSION_LOCK:
        _SCHEMA_VERSION += 1
        _LAST_BUMP_REASON = reason
        return _SCHEMA_VERSION


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


class _Budget:
    __slots__ = ("remaining",)

    def __init__(self, limit: int):
        self.remaining = limit

    def charge(self, n: int = 1) -> None:
        self.remaining -= n
        if self.remaining < 0:
            raise PlanError(
                "unrolled mask-cascade decision tree exceeds "
                f"{UNROLL_BUDGET} nodes"
            )


def _unroll(
    fsm: "IntFsm",
    mask_ids: dict[str, str],
    current: int,
    steps: int,
    seen: bool,
    fixed: dict[str, bool],
    indent: str,
    lines: list[str],
    budget: _Budget,
) -> None:
    """Emit the quiesce walk from *current* (mirrors ``_quiesce_tracking``).

    ``fixed`` pins mask outcomes already observed on this path: a compiled
    mask is proven pure, so within one posting instant it cannot change
    its mind — the generated code follows the pinned arm while still
    advancing the step counter the interpreter would have charged for the
    re-evaluation.
    """
    while True:
        if current == DEAD or not fsm.states[current].masks:
            budget.charge()
            lines.append(f"{indent}return ({current}, True, {seen}, {steps})")
            return
        if steps >= MAX_PSEUDO_STEPS:
            # The pinned outcomes force a cycle; the interpreter raises
            # after MAX_PSEUDO_STEPS evaluations and so do we.
            budget.charge()
            lines.append(
                f"{indent}raise FSMError('mask cascade did not quiesce')"
            )
            return
        mask = fsm.states[current].masks[0]
        if mask in fixed:
            outcome = fixed[mask]
            nxt, consumed = fsm.move(current, fsm.pseudo_ints[(mask, outcome)])
            steps += 1
            if not consumed:
                budget.charge()
                lines.append(
                    f"{indent}return ({current}, True, {seen}, {steps})"
                )
                return
            current = nxt
            seen = seen or (current != DEAD and fsm.states[current].accept)
            continue
        budget.charge()
        lines.append(f"{indent}if {mask_ids[mask]}(obj, params, event):")
        for outcome in (True, False):
            arm_indent = indent + "    "
            if not outcome:
                lines.append(f"{indent}else:")
            nxt, consumed = fsm.move(current, fsm.pseudo_ints[(mask, outcome)])
            if not consumed:
                budget.charge()
                lines.append(
                    f"{arm_indent}return ({current}, True, {seen}, {steps + 1})"
                )
                continue
            arm_seen = seen or (nxt != DEAD and fsm.states[nxt].accept)
            _unroll(
                fsm,
                mask_ids,
                nxt,
                steps + 1,
                arm_seen,
                {**fixed, mask: outcome},
                arm_indent,
                lines,
                budget,
            )
        return


def generate_advance_source(
    fsm: "IntFsm", mask_ids: dict[str, str]
) -> str:
    """Generate the specialized ``_advance`` source for one machine.

    The function mirrors :meth:`IntFsm.advance` exactly — same returned
    ``(state, consumed, accepted, pseudo_steps)`` quadruple, same
    anchored-death rule, same acceptance-of-visited-states semantics —
    with the transition search and quiesce loop resolved at compile time.
    Raises :class:`PlanError` when the decision tree blows the budget.
    """
    budget = _Budget(UNROLL_BUDGET)
    lines = ["def _advance(statenum, eventnum, obj, params, event):"]
    lines.append("    if statenum == -1:")
    lines.append("        return (-1, False, False, 0)")
    for state in fsm.states:
        lines.append(f"    if statenum == {state.statenum}:")
        for tr in state.transfunc:
            lines.append(f"        if eventnum == {tr.eventnum}:")
            nxt = tr.newstate
            seen = nxt != DEAD and fsm.states[nxt].accept
            _unroll(fsm, mask_ids, nxt, 0, seen, {}, " " * 12, lines, budget)
        # Event not in the sparse transition list: anchored machines die
        # on in-alphabet misses, everything else ignores the event.
        if fsm.anchored:
            lines.append("        if eventnum in _ALPHA:")
            lines.append("            return (-1, True, False, 0)")
        lines.append(f"        return ({state.statenum}, False, False, 0)")
    lines.append(
        "    raise IndexError('compiled advance: state %r out of range'"
        " % (statenum,))"
    )
    return "\n".join(lines) + "\n"


def plan_unroll(fsm: "IntFsm") -> int:
    """Dry-run the unroll, returning the emitted line count.

    The ODE4xx pass uses this to judge ODE402 without keeping the code;
    it is exactly the generator, so the judgment can never drift from
    what the tier can actually compile.
    """
    mask_ids = {
        name: f"_m{i}"
        for i, name in enumerate(
            sorted({m for s in fsm.states for m in s.masks})
        )
    }
    return len(generate_advance_source(fsm, mask_ids).splitlines())


@dataclasses.dataclass
class CompiledArtifact:
    """One trigger's generated advance function plus its provenance."""

    info: "TriggerInfo"
    advance: Callable[..., tuple]
    source: str
    version: int


def generate_advance(info: "TriggerInfo") -> CompiledArtifact:
    """Compile *info*'s machine into a :class:`CompiledArtifact`."""
    fsm = info.fsm
    used_masks = sorted({m for s in fsm.states for m in s.masks})
    mask_ids = {name: f"_m{i}" for i, name in enumerate(used_masks)}
    source = generate_advance_source(fsm, mask_ids)
    namespace: dict = {
        "FSMError": FSMError,
        "_ALPHA": fsm.alphabet_ints,
    }
    for name, ident in mask_ids.items():
        namespace[ident] = info.masks[name]
    code = compile(
        source,
        f"<ode-compiled:{info.defining_type}.{info.name}>",
        "exec",
    )
    exec(code, namespace)
    return CompiledArtifact(
        info=info,
        advance=namespace["_advance"],
        source=source,
        version=schema_version(),
    )


# ---------------------------------------------------------------------------
# Artifact cache
# ---------------------------------------------------------------------------

_UNSET = object()


class CompiledTier:
    """Verdict + artifact cache gating the posting fast path.

    Lookups are id-keyed on the ``TriggerInfo`` (a strong reference is
    pinned so ids stay unique) and validated against the process schema
    version: the first lookup after any bump drops everything.  Negative
    verdicts are cached too — the ODE4xx classification runs once per
    trigger per schema version, not once per posting.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._version = schema_version()
        self._artifacts: dict[int, Optional[CompiledArtifact]] = {}
        self._verdicts: dict[int, object] = {}
        self._pins: dict[int, "TriggerInfo"] = {}

    # -- invalidation ------------------------------------------------------

    def _maybe_evict(self) -> None:
        if self._version != _SCHEMA_VERSION:
            with self._lock:
                if self._version != _SCHEMA_VERSION:
                    self._artifacts.clear()
                    self._verdicts.clear()
                    self._pins.clear()
                    self._version = _SCHEMA_VERSION

    @property
    def version(self) -> int:
        """Current validated version (evicts first if the world moved)."""
        self._maybe_evict()
        return self._version

    def cached_count(self) -> int:
        self._maybe_evict()
        return len(self._artifacts)

    # -- lookup ------------------------------------------------------------

    def advancer_for(
        self, info: "TriggerInfo", metatype: Optional["Metatype"] = None
    ) -> Optional[Callable[..., tuple]]:
        """The compiled advance for *info*, or None (proof withheld)."""
        self._maybe_evict()
        key = id(info)
        artifact = self._artifacts.get(key, _UNSET)
        if artifact is _UNSET:
            with self._lock:
                artifact = self._artifacts.get(key, _UNSET)
                if artifact is _UNSET:
                    artifact = self._classify_and_compile(info, metatype)
                    self._pins[key] = info
                    self._artifacts[key] = artifact
        return None if artifact is None else artifact.advance

    def artifact_for(self, info: "TriggerInfo") -> Optional[CompiledArtifact]:
        """The cached artifact (for tests and dump introspection)."""
        self._maybe_evict()
        artifact = self._artifacts.get(id(info))
        return artifact if isinstance(artifact, CompiledArtifact) else None

    def explain(self, info: "TriggerInfo") -> tuple:
        """The ODE4xx diagnostics naming why the proof was withheld
        (empty for compilable or never-classified triggers)."""
        self._maybe_evict()
        verdict = self._verdicts.get(id(info))
        return tuple(getattr(verdict, "diagnostics", ()))

    def _classify_and_compile(
        self, info: "TriggerInfo", metatype: Optional["Metatype"]
    ) -> Optional[CompiledArtifact]:
        try:
            from repro.analysis.compilable import classify_trigger

            verdict = classify_trigger(info, metatype)
            self._verdicts[id(info)] = verdict
            if not verdict.compilable:
                return None
            return generate_advance(info)
        except Exception:
            # Codegen and classification failures degrade to the
            # interpreter — the tier must never take posting down.
            return None


_GLOBAL_TIER = CompiledTier()


def global_compiled_tier() -> CompiledTier:
    """The artifact cache shared by every trigger system in the process
    (trigger infos are process-global, so their artifacts are too)."""
    return _GLOBAL_TIER
