"""Constraints as a special case of triggers (paper Section 8 future work).

    "Finally, we need to support intra- and inter-object constraints as a
    special case of triggers."

A persistent class declares invariants in ``__constraints__``::

    class Account(Persistent):
        balance = field(float, default=0.0)
        __events__ = ["after deposit", "after withdraw"]
        __constraints__ = {
            "non_negative": lambda self: self.balance >= 0,
        }

Each constraint compiles to a perpetual immediate trigger with the event
expression ``any & <violated>`` — after *every* declared event on the
object, the predicate is evaluated; if it fails, the generated action
raises :class:`~repro.errors.ConstraintViolationError`, which aborts the
surrounding transaction and propagates to the caller.

Constraints are auto-activated when an object is created with ``pnew``
(and by :func:`activate_constraints` for pre-existing objects), so unlike
ordinary triggers they hold class-wide without explicit activation calls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.trigger_def import CouplingMode, TriggerDecl
from repro.errors import ConstraintViolationError, TriggerDeclarationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database
    from repro.objects.handle import PersistentHandle

CONSTRAINT_PREFIX = "__constraint_"


def make_constraint_decl(name: str, predicate: Callable[..., bool]) -> TriggerDecl:
    """Compile one ``__constraints__`` entry into a trigger declaration."""
    if not callable(predicate):
        raise TriggerDeclarationError(
            f"constraint {name!r}: the predicate must be callable"
        )
    mask_name = f"violated_{name}"

    def violated(obj) -> bool:
        return not predicate(obj)

    def action(handle, ctx) -> None:
        raise ConstraintViolationError(name, f"on {type(handle.obj).__name__}")

    return TriggerDecl(
        name=CONSTRAINT_PREFIX + name,
        expression=f"any & {mask_name}",
        action=action,
        params=(),
        perpetual=True,
        coupling=CouplingMode.IMMEDIATE,
        masks={mask_name: violated},
        # Every constraint machine advances (start -> masked state), so the
        # concurrency pass would report the TriggerState write-back on
        # every constrained class; that cost is inherent to constraint
        # checking, not a per-declaration defect worth a warning each.
        suppress=("ODE301", "ODE302"),
    )


def constraint_infos(cls: type) -> list:
    """The compiled constraint TriggerInfos of a persistent class."""
    metatype = cls.__metatype__
    return [
        info
        for info in metatype.all_trigger_infos
        if info.name.startswith(CONSTRAINT_PREFIX)
    ]


def activate_constraints(db: "Database", handle: "PersistentHandle") -> list:
    """Activate every declared constraint on one object; returns TriggerIds.

    Already-active constraints (by trigger name) are not duplicated, so the
    call is idempotent.
    """
    active_names = {
        info.name for _, _, info in db.trigger_system.active_triggers(handle.ptr)
    }
    trigger_ids = []
    for info in constraint_infos(type(handle.obj)):
        if info.name in active_names:
            continue
        trigger_ids.append(db.trigger_system.activate(db, handle.ptr, info))
    return trigger_ids
