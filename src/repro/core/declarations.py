"""The active-class declaration processor — our stand-in for the O++ compiler.

An active persistent class declares, alongside its fields and methods::

    class CredCard(Persistent):
        issued_to = field(str)
        cred_lim = field(float, default=0.0)
        curr_bal = field(float, default=0.0)

        __events__ = ["after buy", "after pay_bill", "BigBuy"]
        __masks__ = {
            "over_limit": lambda self: self.curr_bal > self.cred_lim,
            "MoreCred": lambda self: self.more_cred(),
        }
        __triggers__ = [
            trigger("DenyCredit", "after buy & over_limit",
                    action=deny_credit_action, perpetual=True),
            trigger("AutoRaiseLimit",
                    "relative((after buy & MoreCred), after pay_bill)",
                    action="raise_limit", params=("amount",)),
        ]

        def buy(self, store, amount): ...

When the class is created, this module does what the O++ compiler did at
compile time (Sections 5.2–5.4): construct the ``eventRep`` integers,
compile each trigger's event expression to an extended FSM (every program
run — the strategy of Section 5.1.3), generate the mask and action
functions, generate the member-function wrappers that post events, and
store it all in the class's metatype (the ``type_CredCard`` descriptor).

Mask callables may take ``(self)`` or ``(self, params)`` — the latter sees
the trigger's activation arguments.  Actions may be callables taking
``(self, ctx)`` (``self`` is a persistent handle in the action's
transaction, ``ctx`` a :class:`~repro.core.manager.TriggerContext`) or a
string naming a method, which is then called with the activation arguments
(the paper's ``RaiseLimit(amount)``).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable

from repro.core.registry import global_event_registry
from repro.core.trigger_def import CouplingMode, IntFsm, TriggerDecl, TriggerInfo
from repro.core.wrappers import make_method_wrapper
from repro.errors import TriggerDeclarationError
from repro.events.compile import compile_expression
from repro.events.fsm import EventDecl


def trigger(
    name: str,
    expression: str,
    action: Callable[..., Any] | str,
    params: tuple[str, ...] | list[str] = (),
    perpetual: bool = False,
    coupling: CouplingMode | str = CouplingMode.IMMEDIATE,
    masks: dict[str, Callable[..., bool]] | None = None,
    posts: tuple[str, ...] | list[str] = (),
    suppress: tuple[str, ...] | list[str] = (),
) -> TriggerDecl:
    """Declare a trigger inside a class's ``__triggers__`` list.

    ``posts`` optionally names the user events the action raises; it is
    not enforced at run time but feeds the static analyzer's cascade-cycle
    detection (:mod:`repro.analysis.cascade`).  ``suppress`` lists
    analyzer codes this declaration acknowledges as intended (e.g.
    ``("ODE020",)`` on a deliberate escalation pair).
    """
    return TriggerDecl(
        name=name,
        expression=expression,
        action=action,
        params=tuple(params),
        perpetual=perpetual,
        coupling=CouplingMode.parse(coupling),
        masks=dict(masks or {}),
        posts=tuple(posts),
        suppress=tuple(suppress),
    )


# ---------------------------------------------------------------------------
# Strict declaration analysis
# ---------------------------------------------------------------------------

#: Process-wide default for running the static analyzer during declaration
#: processing.  Per-class ``__strict_triggers__`` overrides it either way.
_STRICT_ANALYSIS = False


def set_strict_analysis(enabled: bool) -> bool:
    """Toggle strict declaration-time analysis; returns the previous value.

    With strict analysis on, :func:`process_active_class` runs the full
    static analyzer (:mod:`repro.analysis`) over each freshly compiled
    class and raises :class:`TriggerDeclarationError` if any finding of
    warning severity or above comes back — the moral equivalent of
    ``-Werror`` for trigger declarations.
    """
    global _STRICT_ANALYSIS
    previous = _STRICT_ANALYSIS
    _STRICT_ANALYSIS = bool(enabled)
    if previous != _STRICT_ANALYSIS:
        # The analysis regime is part of the compile tier's cache key:
        # flipping it invalidates every generated posting artifact.
        from repro.core.compiled import bump_schema_version

        bump_schema_version(f"strict_analysis:{_STRICT_ANALYSIS}")
    return previous


def strict_analysis_enabled() -> bool:
    return _STRICT_ANALYSIS


def _adapt_mask(name: str, fn: Callable[..., bool]) -> Callable[..., bool]:
    """Normalize a mask callable to the (instance, params, event) form.

    Masks may take ``(self)``, ``(self, params)`` — the trigger's
    activation arguments — or ``(self, params, event)``, where ``event``
    is an :class:`~repro.core.posting.EventOccurrence` exposing the member
    function's arguments (the Section 8 "attributes of events" extension:
    "allowing each member function event to look at the parameters passed
    to the corresponding member function, at least in masks").
    """
    try:
        parameters = [
            p
            for p in inspect.signature(fn).parameters.values()
            if p.kind
            in (inspect.Parameter.POSITIONAL_ONLY, inspect.Parameter.POSITIONAL_OR_KEYWORD)
        ]
    except (TypeError, ValueError):
        parameters = []
    arity = len(parameters)
    if arity >= 3:
        return fn
    if arity == 2:
        return lambda obj, params, event, _fn=fn: _fn(obj, params)
    if arity == 1:
        return lambda obj, params, event, _fn=fn: _fn(obj)
    raise TriggerDeclarationError(
        f"mask {name!r} must accept (self), (self, params), or "
        "(self, params, event); it accepts nothing"
    )


def _adapt_action(
    cls_name: str, decl: TriggerDecl
) -> Callable[..., Any]:
    """Normalize the action to the (handle, ctx) calling form."""
    action = decl.action
    if isinstance(action, str):
        method_name = action

        def call_method(handle, ctx):
            method = getattr(handle, method_name, None)
            if method is None:
                raise TriggerDeclarationError(
                    f"trigger {cls_name}.{decl.name}: action method "
                    f"{method_name!r} does not exist"
                )
            return method(*ctx.args)

        return call_method
    if not callable(action):
        raise TriggerDeclarationError(
            f"trigger {cls_name}.{decl.name}: action must be callable or a "
            f"method name, got {type(action).__name__}"
        )
    return action


def process_active_class(cls: type, strict: bool | None = None) -> None:
    """Compile a class's ``__events__`` / ``__masks__`` / ``__triggers__``.

    Called from ``Persistent.__init_subclass__``.  Inherited events, masks,
    wrappers, and triggers are merged in (events of a base class are posted
    to derived objects too, Section 4), and each trigger defined *here* is
    compiled against the full inherited alphabet.

    *strict* runs the static analyzer over the compiled class and rejects
    it on findings; ``None`` defers to a class-level ``__strict_triggers__``
    attribute, then to the process default (:func:`set_strict_analysis`).
    """
    from repro.objects.metatype import global_type_registry

    registry = global_type_registry()
    metatype = registry.require_by_class(cls)
    event_registry = global_event_registry()

    # -- merge inherited machinery (nearest base first) ----------------------
    inherited_events: list[EventDecl] = []
    inherited_masks: dict[str, Callable[..., bool]] = {}
    inherited_mask_specs: dict[str, Callable[..., bool]] = {}
    inherited_wrappers: dict[str, Callable[..., Any]] = {}
    inherited_infos: list[TriggerInfo] = []
    for base in reversed(metatype.base_metatypes(registry)):
        for decl in base.declared_events:
            if decl not in inherited_events:
                inherited_events.append(decl)
        inherited_masks.update(base.masks)
        inherited_mask_specs.update(base.mask_specs)
        inherited_wrappers.update(base.method_wrappers)
        for info in base.all_trigger_infos:
            if all(existing.name != info.name for existing in inherited_infos):
                inherited_infos.append(info)
        metatype.event_ints.update(base.event_ints)
        metatype.event_owner.update(base.event_owner)

    # -- own event declarations ------------------------------------------------
    own_events: list[EventDecl] = []
    for item in cls.__dict__.get("__events__", []):
        decl = item if isinstance(item, EventDecl) else EventDecl.parse(str(item))
        if decl.is_method_event and not callable(getattr(cls, decl.name, None)):
            raise TriggerDeclarationError(
                f"{cls.__name__} declares event {decl.symbol!r} but has no "
                f"method {decl.name!r}"
            )
        if any(decl.symbol == d.symbol for d in own_events):
            raise TriggerDeclarationError(
                f"{cls.__name__} declares event {decl.symbol!r} twice"
            )
        own_events.append(decl)

    declared = list(inherited_events)
    for decl in own_events:
        if all(decl.symbol != d.symbol for d in declared):
            declared.append(decl)
            # Run-time unique-integer assignment (Section 5.2), owned by
            # the declaring class.
            metatype.event_ints[decl.symbol] = event_registry.assign(
                cls.__name__, decl.symbol
            )
            metatype.event_owner[decl.symbol] = cls.__name__

    metatype.declared_events = declared

    # -- masks --------------------------------------------------------------------
    masks = dict(inherited_masks)
    mask_specs = dict(inherited_mask_specs)
    for name, fn in cls.__dict__.get("__masks__", {}).items():
        masks[name] = _adapt_mask(name, fn)
        mask_specs[name] = fn
    metatype.masks = masks
    metatype.mask_specs = mask_specs

    # -- triggers --------------------------------------------------------------------
    from repro.core.constraints import make_constraint_decl

    declared_triggers = list(cls.__dict__.get("__triggers__", []))
    own_constraints = cls.__dict__.get("__constraints__", {})
    if own_constraints and not declared:
        raise TriggerDeclarationError(
            f"{cls.__name__} declares constraints but no events; constraints "
            "are checked after declared events, so declare the mutating "
            "methods' events"
        )
    for name, predicate in own_constraints.items():
        declared_triggers.append(make_constraint_decl(name, predicate))

    own_infos: list[TriggerInfo] = []
    for decl in declared_triggers:
        if not isinstance(decl, TriggerDecl):
            raise TriggerDeclarationError(
                f"{cls.__name__}.__triggers__ entries must come from trigger(); "
                f"got {type(decl).__name__}"
            )
        trigger_masks = dict(masks)
        trigger_mask_specs = dict(mask_specs)
        for name, fn in decl.masks.items():
            trigger_masks[name] = _adapt_mask(name, fn)
            trigger_mask_specs[name] = fn
        compiled = compile_expression(
            decl.expression,
            declared,
            known_masks=trigger_masks.keys(),
        )
        symbol_to_int = {
            symbol: metatype.event_ints[symbol] for symbol in compiled.event_symbols
        }
        pseudo_ints = {}
        for mask in compiled.masks:
            pseudo_ints[(mask, True)] = event_registry.assign(
                cls.__name__, f"true:{decl.name}:{mask}"
            )
            pseudo_ints[(mask, False)] = event_registry.assign(
                cls.__name__, f"false:{decl.name}:{mask}"
            )
        info = TriggerInfo(
            name=decl.name,
            triggernum=len(own_infos),
            defining_type=cls.__name__,
            compiled=compiled,
            fsm=IntFsm(compiled, symbol_to_int, pseudo_ints),
            action=_adapt_action(cls.__name__, decl),
            perpetual=decl.perpetual,
            coupling=CouplingMode.parse(decl.coupling),
            params=decl.params,
            masks={name: trigger_masks[name] for name in compiled.masks},
            mask_specs={
                name: trigger_mask_specs[name]
                for name in compiled.masks
                if name in trigger_mask_specs
            },
            posts=tuple(decl.posts),
            declared_masks=tuple(sorted(decl.masks)),
            suppress=tuple(decl.suppress),
            action_spec=decl.action,
        )
        own_infos.append(info)

    metatype.trigger_infos = own_infos
    metatype.all_trigger_infos = inherited_infos + own_infos

    # -- member-function wrappers --------------------------------------------------
    wrappers = dict(inherited_wrappers)
    by_method: dict[str, dict[str, EventDecl]] = {}
    for decl in declared:
        if decl.is_method_event:
            by_method.setdefault(decl.name, {})[decl.kind] = decl
    for method_name, kinds in by_method.items():
        before_int = (
            metatype.event_ints[kinds["before"].symbol] if "before" in kinds else None
        )
        after_int = (
            metatype.event_ints[kinds["after"].symbol] if "after" in kinds else None
        )
        wrappers[method_name] = make_method_wrapper(
            method_name, before_int, after_int
        )
    metatype.method_wrappers = wrappers

    # A class (re)compilation changes the trigger universe — its infos are
    # fresh objects and event integers may have shifted — so every compiled
    # posting artifact keyed by the old schema version must be evicted.
    from repro.core.compiled import bump_schema_version

    bump_schema_version(f"process_active_class:{cls.__name__}")

    # -- strict declaration-time analysis ------------------------------------------
    if strict is None:
        strict = bool(cls.__dict__.get("__strict_triggers__", _STRICT_ANALYSIS))
    if strict:
        from repro.analysis import Severity, analyze_class, render_text

        findings = analyze_class(metatype).at_least(Severity.WARNING)
        if findings:
            raise TriggerDeclarationError(
                f"strict trigger analysis rejected {cls.__name__}:\n"
                + render_text(findings)
            )
