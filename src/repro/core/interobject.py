"""Inter-object triggers (paper Section 8 future work).

    "Our current work considers only intra-object triggers, triggers
    involving a single anchor object.  We need to extend this to
    inter-object triggers where there are several anchoring events so that
    triggers like 'if AT&T goes below 60 and the price of gold stabilizes,
    buy 1000 shares of AT&T' can be expressed."

Implementation strategy — built *entirely out of intra-object machinery*,
which is why it made a natural extension:

* A hidden persistent **coordinator** object is created per inter-object
  trigger; its dynamically-built class declares one user-defined event per
  anchor alias and one trigger whose composite expression ranges over those
  alias events.
* Each anchor object gets a perpetual **bridge trigger** (a run-time-
  constructed ``TriggerInfo`` registered under a shim type name) whose
  expression watches that anchor's events; its action posts the alias event
  to the coordinator.
* The coordinator's trigger fires the user action with all anchor pointers
  available in its parameters.

Everything persistent (bridge states, coordinator state) survives sessions;
an application reopening the database re-creates the
:class:`InterObjectTrigger` with the same name, which re-registers the
dynamic classes so ``trigobjtype`` resolution works again — the run-time
analogue of recompiling FSMs with every program (Section 5.1.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.declarations import trigger as trigger_decl
from repro.core.registry import global_event_registry
from repro.core.trigger_def import CouplingMode, IntFsm, TriggerInfo
from repro.errors import TriggerDeclarationError, TriggerError
from repro.events.compile import compile_expression
from repro.objects.oid import PersistentPtr
from repro.objects.persistent import Persistent

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database


class _BridgeShim:
    """Pseudo-metatype resolving a single run-time bridge trigger."""

    def __init__(self, name: str, info: TriggerInfo):
        self.name = name
        self.pyclass = object  # bridges attach to any anchor class
        self.trigger_infos = [info]

    def trigger_info(self, triggernum: int) -> TriggerInfo:
        if triggernum != 0:
            raise TriggerError(f"bridge {self.name} has only trigger 0")
        return self.trigger_infos[0]


_COORD_CACHE: dict[str, type] = {}


def _coordinator_class(
    name: str,
    aliases: tuple[str, ...],
    expression: str,
    action: Callable[..., Any],
    masks: dict[str, Callable[..., bool]],
    perpetual: bool,
    coupling: CouplingMode | str,
) -> type:
    """Build (or rebuild) the coordinator class for this trigger name."""
    cls_name = f"InterObj_{name}"
    cls = type(
        cls_name,
        (Persistent,),
        {
            "__events__": list(aliases),
            "__masks__": dict(masks),
            "__triggers__": [
                trigger_decl(
                    "Main",
                    expression,
                    action=action,
                    params=("anchors",),
                    perpetual=perpetual,
                    coupling=coupling,
                )
            ],
        },
    )
    _COORD_CACHE[cls_name] = cls
    return cls


class InterObjectTrigger:
    """A trigger anchored at several objects.

    ``anchors`` maps an alias to ``(pointer, fragment_expression)``: when
    the fragment (an ordinary event expression over the anchor's declared
    events, masks allowed via ``anchor_masks``) is satisfied on that
    anchor, the alias fires as a user-defined event of the coordinator.
    ``expression`` is a composite expression over the aliases.  ``action``
    receives the coordinator handle and a context whose parameters include
    ``anchors`` (alias → pointer), so it can reach every anchor object.
    """

    def __init__(
        self,
        db: "Database",
        name: str,
        anchors: dict[str, tuple[PersistentPtr, str]],
        expression: str,
        action: Callable[..., Any],
        *,
        anchor_masks: dict[str, dict[str, Callable[..., bool]]] | None = None,
        masks: dict[str, Callable[..., bool]] | None = None,
        perpetual: bool = False,
        coupling: CouplingMode | str = CouplingMode.IMMEDIATE,
    ):
        if not anchors:
            raise TriggerDeclarationError("an inter-object trigger needs anchors")
        self.db = db
        self.name = name
        self.anchors = dict(anchors)
        aliases = tuple(sorted(anchors))
        anchor_masks = anchor_masks or {}

        coordinator_cls = _coordinator_class(
            name, aliases, expression, action, masks or {}, perpetual, coupling
        )

        catalog_key = f"interobject:{name}"
        manager = db.txn_manager
        own_txn = manager.current_or_none() is None
        if own_txn:
            txn = manager.begin()
        try:
            rid = db.catalog_get(catalog_key)
            fresh = rid is None
            if fresh:
                handle = db.pnew(coordinator_cls)
                db.catalog_set(manager.current(), catalog_key, handle.ptr.rid)
                self.coordinator = handle.ptr
            else:
                self.coordinator = PersistentPtr(db.name, rid)
            self._install_bridges(anchor_masks, fresh)
            if fresh:
                anchors_param = {alias: ptr for alias, (ptr, _) in anchors.items()}
                main_info = coordinator_cls.__metatype__.trigger_by_name("Main")
                self.main_trigger_id = db.trigger_system.activate(
                    db, self.coordinator, main_info, anchors_param
                )
            if own_txn:
                manager.commit(txn)
        except BaseException:
            if own_txn and txn.is_active:
                manager.abort(txn, explicit=False)
            raise

    def _install_bridges(
        self,
        anchor_masks: dict[str, dict[str, Callable[..., bool]]],
        fresh: bool,
    ) -> None:
        db = self.db
        registry = db.registry
        event_registry = global_event_registry()
        coordinator = self.coordinator

        for alias in sorted(self.anchors):
            ptr, fragment = self.anchors[alias]
            anchor_handle = db.deref(ptr)
            anchor_meta = type(anchor_handle.obj).__metatype__
            bridge_type = f"InterObjBridge_{self.name}_{alias}"

            raw_masks = dict(anchor_meta.masks)
            for mask_name, fn in (anchor_masks.get(alias) or {}).items():
                from repro.core.declarations import _adapt_mask

                raw_masks[mask_name] = _adapt_mask(mask_name, fn)

            compiled = compile_expression(
                fragment, anchor_meta.declared_events, known_masks=raw_masks.keys()
            )
            symbol_to_int = {
                symbol: anchor_meta.event_ints[symbol]
                for symbol in compiled.event_symbols
            }
            pseudo_ints = {}
            for mask in compiled.masks:
                pseudo_ints[(mask, True)] = event_registry.assign(
                    bridge_type, f"true:{mask}"
                )
                pseudo_ints[(mask, False)] = event_registry.assign(
                    bridge_type, f"false:{mask}"
                )

            def bridge_action(handle, ctx, _alias=alias, _coord=coordinator):
                coord_handle = db.deref(_coord)
                coord_handle.post_event(_alias)

            info = TriggerInfo(
                name=f"bridge_{alias}",
                triggernum=0,
                defining_type=bridge_type,
                compiled=compiled,
                fsm=IntFsm(compiled, symbol_to_int, pseudo_ints),
                action=bridge_action,
                perpetual=True,
                coupling=CouplingMode.IMMEDIATE,
                params=(),
                masks={name: raw_masks[name] for name in compiled.masks},
            )
            registry.register_shim(bridge_type, _BridgeShim(bridge_type, info))
            if fresh:
                db.trigger_system.activate(db, ptr, info)

    def deactivate(self) -> None:
        """Remove the inter-object trigger: bridges, coordinator, catalog."""
        db = self.db
        manager = db.txn_manager
        own_txn = manager.current_or_none() is None
        if own_txn:
            txn = manager.begin()
        try:
            for alias in sorted(self.anchors):
                ptr, _ = self.anchors[alias]
                for trigger_id, tstate, _info in db.trigger_system.active_triggers(ptr):
                    if tstate.trigobjtype == f"InterObjBridge_{self.name}_{alias}":
                        db.trigger_system.deactivate(trigger_id)
            db.pdelete(self.coordinator)
            if own_txn:
                manager.commit(txn)
        except BaseException:
            if own_txn and txn.is_active:
                manager.abort(txn, explicit=False)
            raise
