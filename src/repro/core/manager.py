"""The trigger system: activation, deactivation, coupling modes, tx events.

One :class:`TriggerSystem` is attached to each open database.  It owns the
persistent trigger index, installs the coupling-mode hooks on every
transaction, and implements the Section 5.5 transaction integration:

* **end** (deferred) actions run inside the committing transaction,
  *immediately before* the ``before tcomplete`` events are posted;
* **dependent** actions run in one system transaction after commit (their
  commit dependency on the detecting transaction is then satisfied);
* **!dependent** actions run in their own system transaction after commit
  *or* after abort — they are the only trigger effect an aborted
  transaction can leave behind;
* ``before tcomplete`` / ``before tabort`` are posted to the transaction's
  "transaction event object" list, built when interested objects are first
  accessed in the transaction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro import obs
from repro.core.posting import (
    COMPILED_STATE_CACHE,
    DEPENDENT_LIST,
    END_LIST,
    INDEPENDENT_LIST,
    PostingStats,
    TriggerContext,
    post_event,
    run_action,
)
from repro.core.trigger_def import TriggerInfo
from repro.core.trigger_index import TriggerIndex
from repro.core.trigger_state import TriggerId, TriggerState
from repro.errors import (
    RecordNotFoundError,
    TriggerArgumentError,
    TriggerError,
    TriggerNotActiveError,
    UnknownEventError,
)
from repro.objects.oid import PersistentPtr
from repro.objects.serialize import FLAG_HAS_TRIGGERS

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database
    from repro.objects.persistent import Persistent
    from repro.transactions.txn import Transaction

TX_EVENT_OBJECTS = "trigger:tx_event_objects"


class TriggerSystem:
    """Run-time trigger facilities for one database."""

    def __init__(self, db: "Database"):
        self.db = db
        self.index = TriggerIndex(db)
        self.stats = PostingStats()
        metrics = getattr(db, "metrics", None)
        if metrics is not None:
            metrics.register_source("posting", self.stats)
        # Static confluence verdicts, lazily computed per anchor class:
        # metatype id -> frozenset of non-confluent trigger-name pairs.
        self._confluence_cache: dict[int, frozenset[frozenset[str]]] = {}
        # The generated-code posting fast path (DESIGN.md §14).  The tier
        # is process-global (trigger infos and their artifacts are); the
        # flag is per-system so a database can opt out (benchmarks use it
        # for interpreted baselines).  Correctness never depends on it:
        # any withheld ODE4xx proof falls back to the interpreter.
        from repro.core.compiled import global_compiled_tier

        self.compiled = global_compiled_tier()
        self.compiled_enabled = True
        # The trigger-state concurrency-control A/B switch (DESIGN.md §15):
        # ``None`` means strict 2PL (the baseline — advances X-lock and
        # rewrite the state record in place); a TriggerVersionManager means
        # advances buffer against copy-on-write versions and merge at commit.
        self.versions = None
        if getattr(db, "trigger_cc", "2pl") == "mvcc":
            from repro.core.versioned import TriggerVersionManager

            self.versions = TriggerVersionManager(
                db, conflict_policy=getattr(db, "mvcc_conflict", "replay")
            )
            if metrics is not None:
                metrics.register_source("mvcc", self.versions.stats)
        db.txn_manager.on_begin(self._install_hooks)

    # -- transaction hook installation ----------------------------------------

    def _install_hooks(self, txn: "Transaction") -> None:
        txn.before_commit.append(self._before_commit)
        txn.after_commit.append(self._after_commit)
        txn.before_abort.append(self._before_abort)
        txn.after_abort.append(self._after_abort)

    # -- activation / deactivation (Section 4.1, 5.4.1) -------------------------

    def activate(
        self, db: "Database", ptr: PersistentPtr, info: TriggerInfo, *args: Any
    ) -> TriggerId:
        """Activate *info* on the object at *ptr*; returns the TriggerId.

        This is the run-time half of the generated static activation
        function of Section 5.4.1: allocate the TriggerState, store the
        arguments, put the machine in its start state (evaluating any
        start-state masks), and index it.
        """
        txn = db.txn_manager.current()
        if len(args) != len(info.params):
            raise TriggerArgumentError(
                f"trigger {info.defining_type}.{info.name} takes "
                f"{len(info.params)} argument(s) {info.params}, got {len(args)}"
            )
        handle = db.deref(ptr)
        defining_meta = db.registry.find(info.defining_type)
        defining_cls = defining_meta.pyclass
        if not isinstance(handle.obj, defining_cls):
            raise TriggerError(
                f"trigger {info.name} is defined by {info.defining_type}; "
                f"{type(handle.obj).__name__} is not derived from it"
            )
        params = dict(zip(info.params, args))
        tstate = TriggerState(
            triggernum=info.triggernum,
            trigobj=ptr,
            statenum=info.fsm.start,
            trigobjtype=info.defining_type,
            params=params,
        )

        def evaluate(mask_name: str) -> bool:
            from repro.core.posting import NULL_OCCURRENCE

            # Activation-time quiescing, not posting: counted separately so
            # per-posting overhead numbers (E3) stay honest.
            self.stats.masks_evaluated_activation += 1
            outcome = bool(info.masks[mask_name](handle.obj, params, NULL_OCCURRENCE))
            if obs.ENABLED:
                obs.emit(
                    "mask.eval",
                    mask=mask_name,
                    trigger=info.name,
                    outcome=outcome,
                    phase="activation",
                )
            return outcome

        tstate.statenum, _ = info.fsm.quiesce(tstate.statenum, evaluate)
        state_rid = db.storage.insert(txn.txid, tstate.encode())
        self.index.add(txn, ptr.rid, state_rid)
        if self.versions is not None:
            # Same-transaction postings must find this machine in the
            # advance buffer (its record is uncommitted, so the version
            # chain cannot be loaded from storage yet).
            self.versions.register_fresh(
                txn, state_rid, tstate, info, defining_meta, handle.obj
            )
        if obs.ENABLED:
            obs.emit(
                "trigger.activate",
                trigger=info.name,
                rid=ptr.rid,
                state_rid=state_rid,
                start_state=tstate.statenum,
            )
        # Flip the object's control bit so PostEvent stops skipping it.
        flags = handle.obj.__dict__.get("_p_flags", 0)
        if not flags & FLAG_HAS_TRIGGERS:
            db.set_object_flags(ptr, flags | FLAG_HAS_TRIGGERS)
        return PersistentPtr(db.name, state_rid)

    def deactivate(self, trigger_id: TriggerId, *, missing_ok: bool = False) -> None:
        """Remove an active trigger (paper ``deactivate(TriggerId)``)."""
        db = self.db
        txn = db.txn_manager.current()
        try:
            raw = db.storage.read(txn.txid, trigger_id.rid)
        except RecordNotFoundError:
            if missing_ok:
                return
            raise TriggerNotActiveError(f"{trigger_id!r} is not active") from None
        tstate = TriggerState.decode(raw)
        remaining = self.index.remove(txn, tstate.trigobj.rid, trigger_id.rid)
        db.storage.delete(txn.txid, trigger_id.rid)
        # Storage may reuse the freed rid within this very transaction; a
        # stale compiled-cache entry would then advance a dead machine.
        compiled_cache = txn.attachments.get(COMPILED_STATE_CACHE)
        if compiled_cache:
            compiled_cache.pop(trigger_id.rid, None)
        if self.versions is not None:
            self.versions.mark_deactivated(txn, trigger_id.rid)
        if remaining == 0:
            try:
                handle = db.deref(tstate.trigobj)
            except Exception:
                return  # object already deleted
            flags = handle.obj.__dict__.get("_p_flags", 0)
            if flags & FLAG_HAS_TRIGGERS:
                db.set_object_flags(tstate.trigobj, flags & ~FLAG_HAS_TRIGGERS)

    def active_triggers(
        self, ptr: PersistentPtr
    ) -> list[tuple[TriggerId, TriggerState, TriggerInfo]]:
        """The triggers currently active on the object at *ptr*."""
        txn = self.db.txn_manager.current()
        result = []
        buffer = None
        if self.versions is not None:
            from repro.core.versioned import ADVANCE_BUFFER

            buffer = txn.attachments.get(ADVANCE_BUFFER)
        for state_rid in self.index.lookup(txn, ptr.rid):
            entry = buffer.entries.get(state_rid) if buffer is not None else None
            if entry is not None:
                # This transaction's own buffered advances are visible to
                # it (read-your-writes); clone so callers can't mutate the
                # working copy.
                tstate = entry.state.clone()
            else:
                tstate = TriggerState.decode(
                    self.db.storage.read(txn.txid, state_rid)
                )
            info = self.db.registry.find(tstate.trigobjtype).trigger_info(
                tstate.triggernum
            )
            result.append((PersistentPtr(self.db.name, state_rid), tstate, info))
        return result

    def verify_integrity(self) -> list[str]:
        """Cross-check the trigger index against the TriggerState records.

        Returns a list of problem descriptions (empty = consistent):
        index entries pointing at missing/corrupt state records, states
        whose anchor object is gone, states whose ``trigobjtype`` or
        ``triggernum`` no longer resolves, and FSM state numbers outside
        the compiled machine.  Runs in the current transaction.
        """
        db = self.db
        txn = db.txn_manager.current()
        problems: list[str] = []
        for key, state_rids in self.index._map.items(txn):
            obj_rid = int(key)
            for state_rid in state_rids:
                try:
                    raw = db.storage.read(txn.txid, state_rid)
                except RecordNotFoundError:
                    problems.append(
                        f"index entry {obj_rid} -> {state_rid}: state record missing"
                    )
                    continue
                try:
                    tstate = TriggerState.decode(raw)
                except TriggerError as exc:
                    problems.append(f"state {state_rid}: corrupt ({exc})")
                    continue
                if tstate.trigobj.rid != obj_rid:
                    problems.append(
                        f"state {state_rid}: anchored at {tstate.trigobj.rid}, "
                        f"indexed under {obj_rid}"
                    )
                if not db.storage.exists(txn.txid, tstate.trigobj.rid):
                    problems.append(
                        f"state {state_rid}: anchor object {tstate.trigobj.rid} deleted"
                    )
                try:
                    defining = db.registry.find(tstate.trigobjtype)
                    info = defining.trigger_info(tstate.triggernum)
                except Exception as exc:
                    problems.append(
                        f"state {state_rid}: cannot resolve "
                        f"{tstate.trigobjtype}#{tstate.triggernum} ({exc})"
                    )
                    continue
                from repro.events.fsm import DEAD

                if tstate.statenum != DEAD and not (
                    0 <= tstate.statenum < len(info.fsm)
                ):
                    problems.append(
                        f"state {state_rid}: FSM state {tstate.statenum} out of "
                        f"range for {info.name} ({len(info.fsm)} states)"
                    )
        return problems

    def on_pdelete(self, db: "Database", ptr: PersistentPtr) -> None:
        """Deactivate everything anchored at a deleted object."""
        txn = db.txn_manager.current()
        compiled_cache = txn.attachments.get(COMPILED_STATE_CACHE)
        for state_rid in self.index.drop_all(txn, ptr.rid):
            try:
                db.storage.delete(txn.txid, state_rid)
            except RecordNotFoundError:
                pass
            if compiled_cache:
                compiled_cache.pop(state_rid, None)
            if self.versions is not None:
                self.versions.mark_deactivated(txn, state_rid)

    # -- firing-order guard (DESIGN.md §9) ---------------------------------------

    def nonconfluent_pairs(self, cls: type) -> frozenset[frozenset[str]]:
        """The statically non-confluent trigger-name pairs of *cls*.

        Computed once per class from inferred action effects (see
        ``repro.analysis.confluence``) and cached; analysis failures
        degrade to "no known races" rather than breaking posting.
        """
        metatype = getattr(cls, "__metatype__", None)
        if metatype is None:
            return frozenset()
        cached = self._confluence_cache.get(id(metatype))
        if cached is None:
            from repro.analysis.confluence import non_confluent_pairs

            try:
                cached = non_confluent_pairs(metatype)
            except Exception:
                cached = frozenset()
            self._confluence_cache[id(metatype)] = cached
        return cached

    def order_ready(self, ready: list, cls: type) -> list:
        """Canonical firing order for one posting's ready set.

        The documented order is *activation order* — exactly what the
        trigger index yields — so the list is returned unchanged.  The
        guard's job is detection: when the set contains a pair the
        analyzer proved non-confluent, the posting is counted in
        ``stats.nonconfluent_firing_sets`` (ODE202 flags the same pair
        statically; suppressing it and relying on this order is the
        sanctioned escape hatch).
        """
        pairs = self.nonconfluent_pairs(cls)
        if pairs:
            names = [record.info.name for record in ready]
            if any(
                frozenset((names[i], names[j])) in pairs
                for i in range(len(names))
                for j in range(i + 1, len(names))
            ):
                self.stats.nonconfluent_firing_sets += 1
        return ready

    # -- posting entry points -----------------------------------------------------

    def post_event(
        self,
        db: "Database",
        eventnum: int,
        ptr: PersistentPtr,
        obj: "Persistent",
        occurrence=None,
    ) -> int:
        """Post a basic event by its globally-unique integer."""
        return post_event(self, db, eventnum, ptr, obj, occurrence)

    def post_user_event(
        self, db: "Database", ptr: PersistentPtr, obj: "Persistent", name: str
    ) -> int:
        """Explicitly post a declared user-defined event by name."""
        metatype = type(obj).__metatype__
        for decl in metatype.declared_events:
            if decl.kind == "user" and decl.name == name:
                return post_event(self, db, metatype.event_ints[decl.symbol], ptr, obj)
        raise UnknownEventError(
            f"{metatype.name} declares no user-defined event {name!r}"
        )

    def post_many(self, db: "Database", items) -> int:
        """Post a batch of user-defined events by name; returns firings.

        *items* is an iterable of ``(ptr, obj, event_name)``.  Event
        names resolve to event integers once per metatype for the whole
        batch; names are validated for every item up front, so an
        unknown event aborts the call before anything is posted.  The
        postings themselves go through :func:`repro.core.posting
        .post_many`, which amortizes the per-posting fixed costs.
        """
        from repro.core.posting import post_many

        tables: dict[int, dict[str, int]] = {}
        batch = []
        for ptr, obj, name in items:
            metatype = type(obj).__metatype__
            table = tables.get(id(metatype))
            if table is None:
                table = {
                    decl.name: metatype.event_ints[decl.symbol]
                    for decl in metatype.declared_events
                    if decl.kind == "user"
                }
                tables[id(metatype)] = table
            eventnum = table.get(name)
            if eventnum is None:
                raise UnknownEventError(
                    f"{metatype.name} declares no user-defined event {name!r}"
                )
            batch.append((eventnum, ptr, obj, None))
        return post_many(self, db, batch)

    # -- transaction events (Section 5.5) --------------------------------------------

    def on_access(
        self, txn: "Transaction", ptr: PersistentPtr, obj: "Persistent"
    ) -> None:
        """First-access bookkeeping: build the transaction-event object list."""
        metatype = type(obj).__metatype__
        if any(decl.is_transaction_event for decl in metatype.declared_events):
            txn.attachment(TX_EVENT_OBJECTS, dict)[ptr.rid] = (ptr, obj)

    def _post_tx_event(self, txn: "Transaction", name: str) -> None:
        if obs.ENABLED:
            interested = len(txn.attachment(TX_EVENT_OBJECTS, dict))
            if interested:
                obs.emit(
                    "tx_event.post", event=f"before {name}",
                    txid=txn.txid, objects=interested,
                )
        for ptr, obj in list(txn.attachment(TX_EVENT_OBJECTS, dict).values()):
            metatype = type(obj).__metatype__
            symbol = f"before {name}"
            eventnum = metatype.event_ints.get(symbol)
            if eventnum is not None:
                post_event(self, self.db, eventnum, ptr, obj)

    # -- coupling-mode hooks ------------------------------------------------------------

    def _before_commit(self, txn: "Transaction") -> None:
        # 1. Scan the end list, executing deferred actions (which may
        #    themselves fire more triggers, growing the list — drain it).
        end_list = txn.attachment(END_LIST, list)
        if obs.ENABLED and end_list:
            obs.emit("txn.drain", list="end", txid=txn.txid, queued=len(end_list))
        while end_list:
            record = end_list.pop(0)
            run_action(self, self.db, txn, record)
        # 2. Post before tcomplete right before the commit proper.
        self._post_tx_event(txn, "tcomplete")
        # A tcomplete trigger may have queued further end actions.
        while end_list:
            record = end_list.pop(0)
            run_action(self, self.db, txn, record)

    def _before_abort(self, txn: "Transaction") -> None:
        self._post_tx_event(txn, "tabort")

    def _after_commit(self, txn: "Transaction") -> None:
        self._run_detached(txn, DEPENDENT_LIST, depends_on=txn.txid)
        self._run_detached(txn, INDEPENDENT_LIST, depends_on=None)

    def _after_abort(self, txn: "Transaction") -> None:
        # Dependent actions die with the detecting transaction; !dependent
        # actions run anyway (Section 5.5's abort-path scan).
        self._run_detached(txn, INDEPENDENT_LIST, depends_on=None)

    def _run_detached(
        self, txn: "Transaction", list_key: str, depends_on: int | None
    ) -> None:
        records = txn.attachments.get(list_key) or []
        if not records:
            return
        if obs.ENABLED:
            obs.emit(
                "txn.drain",
                list="dependent" if list_key == DEPENDENT_LIST else "independent",
                txid=txn.txid,
                queued=len(records),
            )

        def body(system_txn: "Transaction") -> None:
            for record in records:
                run_action(self, self.db, system_txn, record)

        # Scheduled, not run inline: the shared queue is drained by whichever
        # session is next between transactions (the committing one, in the
        # common case), and a failed commit dependency discards the entry.
        self.db.txn_manager.schedule_system(body, depends_on=depends_on)
