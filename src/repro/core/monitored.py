"""Local rules and monitored classes (paper Section 8 future work).

    "Including local rules would be useful, since they are low cost ...
    No persistent storage is required for such triggers, only data
    structures that can be deallocated at end-of-transaction.  Also, such
    triggers never require obtaining write locks ...  We are considering
    supplying monitored classes, non-persistent classes with triggers."

:class:`LocalTriggerSystem` implements both ideas:

* *local rules* — trigger states live in transient memory (a list), so
  activation, FSM advancing, and firing never touch the storage manager:
  no records, no logging, no locks.  Experiment E9 measures the saving.
* *monitored classes* — any class (persistent or plain) whose declarations
  went through the active-class processor can be monitored: wrap an
  instance with :meth:`monitor` and method calls through the
  :class:`MonitoredHandle` post events into the local system.  Unwrapped
  instances stay overhead-free, preserving the design principle that "only
  objects that have access to trigger functionality pay any trigger
  overhead".

Local rules support the immediate and end coupling modes; detached modes
need transactions and therefore the persistent system.  When constructed
with a database, local states are deallocated at end-of-transaction (the
paper's lifetime rule); standalone systems are cleared explicitly.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import TYPE_CHECKING, Any, Callable

from repro.core.posting import PostingStats, TriggerContext
from repro.core.trigger_def import CouplingMode, TriggerInfo
from repro.errors import (
    TriggerArgumentError,
    TriggerError,
    TriggerNotActiveError,
    UnknownEventError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database


class Monitored:
    """Optional base class for non-persistent classes with triggers.

    Subclasses may declare ``__events__`` / ``__masks__`` / ``__triggers__``
    exactly like persistent classes; instances are ordinary volatile
    objects until wrapped with :meth:`LocalTriggerSystem.monitor`.
    """

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        from repro.core.declarations import process_active_class
        from repro.objects.metatype import global_type_registry

        cls.__metatype__ = global_type_registry().register(cls)
        if cls.__dict__.get("__events__") or cls.__dict__.get("__triggers__"):
            process_active_class(cls)


@dataclasses.dataclass
class LocalTriggerState:
    """A transient trigger state (no persistent record, no locks)."""

    local_id: int
    info: TriggerInfo
    obj: Any
    statenum: int
    params: dict[str, Any]
    active: bool = True


class MonitoredHandle:
    """Volatile analogue of a persistent handle: posts to the local system."""

    __slots__ = ("_system", "_obj")

    def __init__(self, system: "LocalTriggerSystem", obj: Any):
        object.__setattr__(self, "_system", system)
        object.__setattr__(self, "_obj", obj)

    @property
    def obj(self) -> Any:
        return self._obj

    def __getattr__(self, name: str) -> Any:
        metatype = type(self._obj).__metatype__
        events = {
            (decl.kind, decl.name): metatype.event_ints[decl.symbol]
            for decl in metatype.declared_events
            if decl.is_method_event
        }
        before = events.get(("before", name))
        after = events.get(("after", name))
        if before is not None or after is not None:
            method = getattr(self._obj, name)

            @functools.wraps(method)
            def call(*args: Any, **kwargs: Any) -> Any:
                from repro.core.posting import EventOccurrence

                if before is not None:
                    self._system.post(
                        self._obj,
                        before,
                        EventOccurrence(before, name, args, dict(kwargs)),
                    )
                result = method(*args, **kwargs)
                if after is not None:
                    self._system.post(
                        self._obj,
                        after,
                        EventOccurrence(after, name, args, dict(kwargs)),
                    )
                return result

            return call
        for info in metatype.all_trigger_infos:
            if info.name == name:
                return functools.partial(self._system.activate, self._obj, info)
        return getattr(self._obj, name)

    def __setattr__(self, name: str, value: Any) -> None:
        setattr(self._obj, name, value)

    def post_event(self, event_name: str) -> None:
        self._system.post_user_event(self._obj, event_name)


class LocalTriggerSystem:
    """Transient trigger states for volatile objects — zero storage cost."""

    def __init__(self, db: "Database | None" = None):
        self._states: dict[int, LocalTriggerState] = {}
        self._by_obj: dict[int, list[int]] = {}
        self._next_id = 1
        self._end_list: list[tuple[LocalTriggerState, TriggerInfo]] = []
        self.stats = PostingStats()
        # Local states live in memory, so the compiled tier only saves the
        # dispatch work — but it is the same artifact cache and the same
        # ODE4xx gate as the persistent path (DESIGN.md §14).
        from repro.core.compiled import global_compiled_tier

        self.compiled = global_compiled_tier()
        self.compiled_enabled = True
        self.db = db
        if db is not None:
            # Local states are deallocated at end-of-transaction.
            db.txn_manager.on_begin(self._install_hooks)

    def _install_hooks(self, txn) -> None:
        txn.before_commit.append(lambda t: self._drain_end_list())
        txn.after_commit.append(lambda t: self.clear())
        txn.after_abort.append(lambda t: self.clear())

    # -- lifecycle ---------------------------------------------------------------

    def monitor(self, obj: Any) -> MonitoredHandle:
        """Wrap a volatile instance so its method calls post events."""
        if not hasattr(type(obj), "__metatype__"):
            raise TriggerError(
                f"{type(obj).__name__} has no metatype; derive from Monitored "
                "or Persistent and declare __events__/__triggers__"
            )
        return MonitoredHandle(self, obj)

    def activate(self, obj: Any, info: TriggerInfo, *args: Any) -> int:
        """Activate a local rule on a volatile object; returns a local id."""
        if info.coupling not in (CouplingMode.IMMEDIATE, CouplingMode.END):
            raise TriggerError(
                f"local rules support immediate/end coupling only, not "
                f"{info.coupling.value} (detached modes need transactions)"
            )
        if len(args) != len(info.params):
            raise TriggerArgumentError(
                f"trigger {info.name} takes {len(info.params)} argument(s), "
                f"got {len(args)}"
            )
        params = dict(zip(info.params, args))
        state = LocalTriggerState(
            local_id=self._next_id,
            info=info,
            obj=obj,
            statenum=info.fsm.start,
            params=params,
        )
        self._next_id += 1

        def evaluate(mask: str) -> bool:
            from repro.core.posting import NULL_OCCURRENCE

            self.stats.masks_evaluated_activation += 1
            return bool(info.masks[mask](obj, params, NULL_OCCURRENCE))

        state.statenum, _ = info.fsm.quiesce(state.statenum, evaluate)
        self._states[state.local_id] = state
        self._by_obj.setdefault(id(obj), []).append(state.local_id)
        return state.local_id

    def deactivate(self, local_id: int) -> None:
        state = self._states.pop(local_id, None)
        if state is None:
            raise TriggerNotActiveError(f"local trigger {local_id} is not active")
        state.active = False
        owners = self._by_obj.get(id(state.obj), [])
        if local_id in owners:
            owners.remove(local_id)

    def active_count(self, obj: Any | None = None) -> int:
        if obj is None:
            return len(self._states)
        return len(self._by_obj.get(id(obj), []))

    def clear(self) -> None:
        """End-of-transaction deallocation of every local state."""
        self._states.clear()
        self._by_obj.clear()
        self._end_list.clear()

    # -- posting --------------------------------------------------------------------

    def post(self, obj: Any, eventnum: int, occurrence=None) -> int:
        """Post a basic event integer to a volatile object."""
        from repro.core.posting import EventOccurrence

        if occurrence is None:
            occurrence = EventOccurrence(eventnum=eventnum)
        self.stats.events_posted += 1
        local_ids = self._by_obj.get(id(obj))
        if not local_ids:
            self.stats.skipped_no_triggers += 1
            return 0
        ready: list[LocalTriggerState] = []
        tier = self.compiled if self.compiled_enabled else None
        for local_id in list(local_ids):
            state = self._states[local_id]
            info = state.info

            if tier is not None:
                advance = tier.advancer_for(
                    info, getattr(type(state.obj), "__metatype__", None)
                )
                if advance is not None:
                    new_state, _consumed, accepted, steps = advance(
                        state.statenum, eventnum, state.obj, state.params, occurrence
                    )
                    self.stats.fsm_advances += 1
                    self.stats.masks_evaluated_posting += steps
                    self.stats.compiled_hits += 1
                    state.statenum = new_state
                    if accepted:
                        ready.append(state)
                    continue
                self.stats.compiled_fallbacks += 1

            def evaluate(mask: str, _info=info, _state=state) -> bool:
                self.stats.masks_evaluated_posting += 1
                return bool(
                    _info.masks[mask](_state.obj, _state.params, occurrence)
                )

            result = info.fsm.advance(state.statenum, eventnum, evaluate)
            self.stats.fsm_advances += 1
            state.statenum = result.state  # in-memory: no write lock, no log
            if result.accepted:
                ready.append(state)
        for state in ready:
            self._fire(state)
            self.stats.firings += 1
        return len(ready)

    def post_user_event(self, obj: Any, name: str) -> int:
        metatype = type(obj).__metatype__
        for decl in metatype.declared_events:
            if decl.kind == "user" and decl.name == name:
                return self.post(obj, metatype.event_ints[decl.symbol])
        raise UnknownEventError(
            f"{metatype.name} declares no user-defined event {name!r}"
        )

    # -- firing ----------------------------------------------------------------------

    def _fire(self, state: LocalTriggerState) -> None:
        if state.info.coupling is CouplingMode.END:
            self._end_list.append((state, state.info))
            return
        self._run(state)

    def _run(self, state: LocalTriggerState) -> None:
        ctx = TriggerContext(
            db=self.db,
            txn=None,
            trigger_id=None,
            info=state.info,
            params=dict(state.params),
            coupling=state.info.coupling,
        )
        handle = MonitoredHandle(self, state.obj)
        state.info.action(handle, ctx)
        if not state.info.perpetual and state.local_id in self._states:
            self.deactivate(state.local_id)

    def _drain_end_list(self) -> None:
        while self._end_list:
            state, _ = self._end_list.pop(0)
            if state.local_id in self._states or not state.info.perpetual:
                self._run(state)

    def drain_end_list(self) -> None:
        """Run queued end-mode local actions (for standalone use)."""
        self._drain_end_list()
