"""``PostEvent`` — the heart of trigger processing (paper Section 5.4.5).

Posting a basic event to an object:

1. Skip immediately if the object's control information says it has no
   active triggers (footnote 3) — the common, cheap case.
2. Look up the object's active ``TriggerState`` records in the trigger
   index.
3. For each, resolve the ``TriggerInfo`` through ``trigobjtype`` (needed
   because an object can carry active triggers from several base classes),
   advance its integer-keyed FSM — evaluating masks and feeding the
   ``True``/``False`` pseudo-events until quiescent — and, when the state
   changed, write the TriggerState back (acquiring a **write lock**: this
   is the "triggers turn read access into write access" effect of
   Section 6 that experiment E6 measures).
4. Only after *all* active triggers have seen the event are the ready ones
   fired — "to prevent the action of one trigger from affecting the mask of
   another trigger".  Immediate triggers run now (sequentially, in
   activation order — Ode lacks nested transactions and fires "in an
   unspecified order which maintains the conceptual semantics"); the other
   coupling modes queue onto the transaction's end / dependent /
   !dependent lists, processed by the commit and abort paths.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any

from repro import obs
from repro.core.trigger_def import CouplingMode, TriggerInfo
from repro.core.trigger_state import TriggerState
from repro.errors import TransactionAbort
from repro.objects.oid import PersistentPtr
from repro.objects.serialize import FLAG_HAS_TRIGGERS

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import TriggerSystem
    from repro.objects.database import Database
    from repro.objects.persistent import Persistent
    from repro.transactions.txn import Transaction

END_LIST = "trigger:end_list"
DEPENDENT_LIST = "trigger:dependent_list"
INDEPENDENT_LIST = "trigger:independent_list"
#: Per-transaction cache backing the compiled fast path: state_rid ->
#: (decoded TriggerState, TriggerInfo, generated advance).  Sound under
#: two-phase locking — the first ``storage.read`` of a state record takes
#: a shared lock held to commit, so within one transaction nobody else
#: can change it, and our own writes go through the cached object.  The
#: cache dies with the transaction, so aborts need no special handling.
#: The reserved ``"!v"`` entry (rids are ints, so no collision) pins the
#: compile-tier schema version the cache was built against.
COMPILED_STATE_CACHE = "trigger:compiled_states"


class FrozenKwargs(Mapping):
    """An immutable, hashable mapping for event keyword arguments.

    Masks read ``event.kwargs`` like a dict (``get``, ``[]``, ``in``); what
    they cannot do is mutate it — an occurrence is a snapshot of one
    instant, shared between every trigger the posting reaches and any
    trace record that captures it.  Hashing follows tuple semantics: it
    works when the values are hashable and raises otherwise.
    """

    __slots__ = ("_d",)

    def __init__(self, items: Mapping | tuple = ()):
        # bypass Mapping's __setattr__-less protocol; _d is never rebound
        object.__setattr__(self, "_d", dict(items))

    def __getitem__(self, key):
        return self._d[key]

    def __contains__(self, key):
        return key in self._d

    def __iter__(self):
        return iter(self._d)

    def __len__(self):
        return len(self._d)

    def __eq__(self, other):
        if isinstance(other, FrozenKwargs):
            return self._d == other._d
        if isinstance(other, Mapping):
            return self._d == dict(other)
        return NotImplemented

    def __hash__(self):
        return hash(tuple(sorted(self._d.items())))

    def __repr__(self):
        return f"FrozenKwargs({self._d!r})"


#: Shared empty mapping — the common "no keyword arguments" case.
EMPTY_KWARGS = FrozenKwargs()


@dataclasses.dataclass(frozen=True)
class EventOccurrence:
    """One event instance, carrying the member function's arguments.

    The Section 8 "attributes of events" extension: masks may inspect "the
    parameters passed to the corresponding member function".  ``args`` /
    ``kwargs`` are the invocation arguments for member-function events and
    empty for user-defined and transaction events.

    Occurrences are genuinely immutable: ``args`` is normalized to a tuple
    and ``kwargs`` is *copied* into a :class:`FrozenKwargs` at
    construction, so a caller mutating the dict it passed in (or a mask
    poking at a shared occurrence such as the activation-time
    ``NULL_OCCURRENCE``) can never change what other triggers — or trace
    records — observe.  This also makes occurrences hashable/comparable by
    value, which the frozen dataclass always promised but a raw ``dict``
    field silently broke.
    """

    eventnum: int
    method: str = ""
    args: tuple = ()
    kwargs: Mapping = EMPTY_KWARGS

    def __post_init__(self):
        if type(self.args) is not tuple:
            object.__setattr__(self, "args", tuple(self.args))
        kwargs = self.kwargs
        if type(kwargs) is not FrozenKwargs:
            object.__setattr__(
                self, "kwargs", FrozenKwargs(kwargs) if kwargs else EMPTY_KWARGS
            )


#: Occurrence used when masks run outside any posting (trigger activation).
NULL_OCCURRENCE = EventOccurrence(eventnum=0)


@dataclasses.dataclass
class FiringRecord:
    """A detected trigger occurrence queued for (possibly later) firing."""

    trigger_id: PersistentPtr
    state: TriggerState
    info: TriggerInfo


@dataclasses.dataclass
class TriggerContext:
    """What a trigger action sees when it runs."""

    db: "Database"
    txn: "Transaction"
    trigger_id: PersistentPtr
    info: TriggerInfo
    params: dict[str, Any]
    coupling: CouplingMode

    @property
    def args(self) -> tuple[Any, ...]:
        """Activation arguments in declaration order."""
        return tuple(self.params[name] for name in self.info.params)

    def tabort(self, reason: str = "tabort from trigger action") -> None:
        """Abort the surrounding transaction (O++ ``tabort``)."""
        raise TransactionAbort(reason)


@dataclasses.dataclass
class PostingStats:
    """Instrumentation for experiments E3/E6/E10.

    Mounted on the database's :class:`~repro.obs.metrics.MetricsRegistry`
    under the ``posting.`` prefix; the plain-int fields stay because the
    posting hot path increments them directly.

    Mask evaluations are counted *separately* for the posting path and for
    activation-time quiescing: ``activate()`` evaluates start-state masks
    once per activation, and folding that into the per-posting count
    polluted E3's overhead-per-posting numbers whenever a benchmark
    activated triggers inside the measured window.
    """

    events_posted: int = 0
    skipped_no_triggers: int = 0
    fsm_advances: int = 0
    state_writes: int = 0
    #: masks evaluated while advancing a machine on a posted event
    masks_evaluated_posting: int = 0
    #: masks evaluated while quiescing a freshly activated machine
    masks_evaluated_activation: int = 0
    firings: int = 0
    #: events posted through the :func:`post_many` batch API
    batched: int = 0
    #: postings whose ready set contained a statically non-confluent
    #: trigger pair (the firing-order guard observed a real race)
    nonconfluent_firing_sets: int = 0
    #: per-trigger advances served by the generated-code fast path
    compiled_hits: int = 0
    #: per-trigger advances that wanted the fast path but fell back to the
    #: interpreter (ODE4xx proof withheld for that trigger)
    compiled_fallbacks: int = 0

    @property
    def masks_evaluated(self) -> int:
        """Legacy aggregate of both mask counters (read-only)."""
        return self.masks_evaluated_posting + self.masks_evaluated_activation

    def reset(self) -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)

    def snapshot(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    def diff(self, before: dict[str, int]) -> dict[str, int]:
        """Per-field delta of the current values against *before*."""
        return {k: v - before.get(k, 0) for k, v in self.snapshot().items()}


def post_event(
    system: "TriggerSystem",
    db: "Database",
    eventnum: int,
    ptr: PersistentPtr,
    obj: "Persistent",
    occurrence: EventOccurrence | None = None,
) -> int:
    """Post one basic event integer to one object; returns #firings queued."""
    if occurrence is None:
        occurrence = EventOccurrence(eventnum=eventnum)
    stats = system.stats
    stats.events_posted += 1
    span = 0
    if obs.ENABLED:
        span = obs.begin_span(
            "post",
            eventnum=eventnum,
            method=occurrence.method,
            rid=ptr.rid,
            type=type(obj).__name__,
            session=db.current_session().name,
        )
    # Footnote 3: the persistent object's control information says whether
    # any triggers are active — if not, no index lookup is required.
    if not obj.__dict__.get("_p_flags", 0) & FLAG_HAS_TRIGGERS:
        stats.skipped_no_triggers += 1
        if span:
            obs.end_span(span, "post", skipped="no-active-triggers")
        return 0

    txn = db.txn_manager.current()
    state_rids = system.index.lookup(txn, ptr.rid)
    if span:
        obs.emit(
            "index.lookup", span, rid=ptr.rid, txid=txn.txid, states=len(state_rids)
        )
    return _post_to_states(
        system, db, txn, eventnum, ptr, obj, occurrence, state_rids, span
    )


#: "No pre-resolved compiled cache" marker for :func:`_post_to_states` —
#: ``None`` is a legitimate resolved value (tier disabled).
_UNSET = object()


def _compiled_cache(system: "TriggerSystem", txn: "Transaction"):
    """Resolve (or clear) the per-transaction compiled-state cache.

    Returns the live cache dict when the compiled tier serves this
    posting, else ``None`` — and in the latter case drops any stale
    cache so a later re-enable cannot resurrect a state the interpreter
    path has since rewritten.
    """
    if system.compiled_enabled and not obs.ENABLED:
        cache = txn.attachment(COMPILED_STATE_CACHE, dict)
        version = system.compiled.version
        if cache.get("!v") != version:
            cache.clear()
            cache["!v"] = version
        return cache
    stale = txn.attachments.get(COMPILED_STATE_CACHE)
    if stale:
        stale.clear()
    return None


def _post_to_states(
    system: "TriggerSystem",
    db: "Database",
    txn: "Transaction",
    eventnum: int,
    ptr: PersistentPtr,
    obj: "Persistent",
    occurrence: EventOccurrence,
    state_rids: list[int],
    span: int,
    cache=_UNSET,
) -> int:
    """Advance every machine in *state_rids* on *eventnum*, then fire.

    The tail of one posting, after the control-flag check and the
    trigger-index lookup: :func:`post_event` calls it with a fresh
    lookup, :func:`post_many` with batch-cached lookups and a
    pre-resolved compiled-tier *cache*.  Ends *span* and returns the
    number of firings queued.
    """
    stats = system.stats
    ready: list[FiringRecord] = []

    if system.versions is not None:
        # MVCC (DESIGN.md §15): the advance goes to the per-transaction
        # buffer over copy-on-write versions — no state record is read
        # under a lock or written here; the commit-time merge does that.
        for state_rid in state_rids:
            record = _advance_buffered(
                system, db, txn, state_rid, eventnum, obj, occurrence, span
            )
            if record is not None:
                ready.append(record)
    else:
        # The compiled fast path: when the tier is enabled and obs is quiet
        # (tracing wants the interpreter's per-mask events), serve advances
        # from generated per-trigger code and a per-transaction cache of
        # decoded states (see _compiled_cache for the staleness rules).
        if cache is _UNSET:
            cache = _compiled_cache(system, txn)

        for state_rid in state_rids:
            entry = cache.get(state_rid) if cache is not None else None
            if entry is None:
                raw = db.storage.read(txn.txid, state_rid)
                tstate = TriggerState.decode(raw)
                defining = db.registry.find(tstate.trigobjtype)
                info = defining.trigger_info(tstate.triggernum)
                if cache is not None:
                    advance = system.compiled.advancer_for(info, defining)
                    if advance is not None:
                        entry = (tstate, info, advance)
                        cache[state_rid] = entry
                    else:
                        stats.compiled_fallbacks += 1
            else:
                tstate, info, advance = entry

            if entry is not None:
                old_state = tstate.statenum
                new_state, consumed, accepted, steps = advance(
                    old_state, eventnum, obj, tstate.params, occurrence
                )
                stats.fsm_advances += 1
                stats.masks_evaluated_posting += steps
                stats.compiled_hits += 1
                if new_state != old_state:
                    tstate.statenum = new_state
                    db.storage.write(txn.txid, state_rid, tstate.encode())
                    stats.state_writes += 1
                if accepted:
                    ready.append(
                        FiringRecord(PersistentPtr(db.name, state_rid), tstate, info)
                    )
                continue

            def evaluate(mask_name: str, _info=info, _tstate=tstate) -> bool:
                stats.masks_evaluated_posting += 1
                outcome = bool(_info.masks[mask_name](obj, _tstate.params, occurrence))
                if obs.ENABLED:
                    obs.emit(
                        "mask.eval",
                        span,
                        mask=mask_name,
                        trigger=_info.name,
                        outcome=outcome,
                        phase="posting",
                    )
                return outcome

            old_state = tstate.statenum
            result = info.fsm.advance(old_state, eventnum, evaluate)
            stats.fsm_advances += 1
            if span:
                obs.emit(
                    "fsm.advance",
                    span,
                    trigger=info.name,
                    from_state=old_state,
                    to_state=result.state,
                    consumed=result.consumed,
                    accepted=result.accepted,
                    pseudo_steps=result.pseudo_steps,
                )
            if result.state != old_state:
                tstate.statenum = result.state
                # The write that turns a read-only access into a write lock.
                db.storage.write(txn.txid, state_rid, tstate.encode())
                stats.state_writes += 1
                if span:
                    obs.emit(
                        "state.write", span, state_rid=state_rid, trigger=info.name
                    )
            if result.accepted:
                ready.append(
                    FiringRecord(PersistentPtr(db.name, state_rid), tstate, info)
                )

    # Fire only after every trigger has had the basic event posted.  When
    # more than one detection completed on the same posting, consult the
    # static confluence verdict: non-confluent sets keep the documented
    # canonical order (activation order, as yielded by the index) and are
    # counted, so racy schedules are observable in the stats.
    if len(ready) > 1:
        ready = system.order_ready(ready, type(obj))
    for order, record in enumerate(ready):
        if span:
            obs.emit(
                "fire",
                span,
                trigger=record.info.name,
                coupling=record.info.coupling.value,
                order=order,
            )
        dispatch_firing(system, db, txn, record)
        stats.firings += 1
    if span:
        obs.end_span(span, "post", firings=len(ready))
    return len(ready)


def post_many(
    system: "TriggerSystem",
    db: "Database",
    batch,
) -> int:
    """Post a batch of events in order; returns total firings queued.

    *batch* is an iterable of ``(eventnum, ptr, obj, occurrence)``
    tuples (``occurrence`` may be ``None``).  Semantically identical to
    calling :func:`post_event` once per tuple — same advance order, same
    firing points, same stats — but the fixed per-posting costs are paid
    once per batch instead:

    * one ``txn_manager.current()`` resolution;
    * one compiled-tier cache probe (2PL) — MVCC advances already cache
      per machine on their :class:`~repro.core.versioned.BufferEntry`;
    * one trigger-index lookup per *distinct rid*, via a batch-local
      ``rid -> state_rids`` cache;
    * one ``obs.ENABLED`` check for the quiet common case.

    The caches are dropped after any posting that fired: an immediate
    action can activate or deactivate machines (changing index buckets)
    and flip obs or the compiled tier, so nothing observed before the
    firing may be trusted after it.
    """
    stats = system.stats
    total = 0
    txn = None
    cache = _UNSET
    index_cache: dict[int, list[int]] = {}
    tracing = obs.ENABLED
    for eventnum, ptr, obj, occurrence in batch:
        stats.events_posted += 1
        stats.batched += 1
        if occurrence is None:
            occurrence = EventOccurrence(eventnum=eventnum)
        span = 0
        if tracing:
            span = obs.begin_span(
                "post",
                eventnum=eventnum,
                method=occurrence.method,
                rid=ptr.rid,
                type=type(obj).__name__,
                session=db.current_session().name,
                batched=True,
            )
        if not obj.__dict__.get("_p_flags", 0) & FLAG_HAS_TRIGGERS:
            stats.skipped_no_triggers += 1
            if span:
                obs.end_span(span, "post", skipped="no-active-triggers")
            continue
        if txn is None:
            txn = db.txn_manager.current()
        state_rids = index_cache.get(ptr.rid)
        if state_rids is None:
            state_rids = system.index.lookup(txn, ptr.rid)
            index_cache[ptr.rid] = state_rids
        if span:
            obs.emit(
                "index.lookup",
                span,
                rid=ptr.rid,
                txid=txn.txid,
                states=len(state_rids),
            )
        if cache is _UNSET and system.versions is None:
            cache = _compiled_cache(system, txn)
        fired = _post_to_states(
            system, db, txn, eventnum, ptr, obj, occurrence, state_rids, span,
            cache=cache,
        )
        total += fired
        if fired:
            index_cache.clear()
            cache = _UNSET
            tracing = obs.ENABLED
    return total


def _advance_buffered(
    system: "TriggerSystem",
    db: "Database",
    txn: "Transaction",
    state_rid: int,
    eventnum: int,
    obj: "Persistent",
    occurrence: EventOccurrence,
    span: int,
) -> FiringRecord | None:
    """Advance one machine against its per-transaction buffer entry.

    First touch clones the latest *committed* version of the TriggerState
    (no lock, no read of uncommitted data — see
    :meth:`~repro.core.versioned.TriggerVersionManager.committed_head`);
    later touches reuse the working copy.  Every posted event is appended
    to the entry's log — including ones the FSM ignored from the current
    state, because a commit-time replay from a *different* head may
    consume them.  Returns a :class:`FiringRecord` when the machine
    accepted, else ``None``.
    """
    from repro.core.versioned import BufferEntry

    stats = system.stats
    versions = system.versions
    buffer = versions.buffer_of(txn)
    entry = buffer.entries.get(state_rid)
    if entry is None:
        head = versions.committed_head(state_rid)
        tstate = head.state.clone()
        defining = db.registry.find(tstate.trigobjtype)
        info = defining.trigger_info(tstate.triggernum)
        entry = BufferEntry(
            base_vid=head.vid, state=tstate, info=info, defining=defining, obj=obj
        )
        buffer.entries[state_rid] = entry
    tstate, info = entry.state, entry.info

    # The compiled tier composes with MVCC: the generated advance is
    # cached on the entry and re-resolved when the tier's schema version
    # moves (same staleness rule as the 2PL per-transaction cache).
    advance = None
    if system.compiled_enabled and not obs.ENABLED:
        version = system.compiled.version
        if entry.advance_version != version:
            entry.advance = system.compiled.advancer_for(info, entry.defining)
            entry.advance_version = version
            if entry.advance is None:
                stats.compiled_fallbacks += 1
        advance = entry.advance

    mask_outcomes: dict[str, bool] = {}
    old_state = tstate.statenum
    if advance is not None:
        new_state, consumed, accepted, steps = advance(
            old_state, eventnum, obj, tstate.params, occurrence
        )
        stats.masks_evaluated_posting += steps
        stats.compiled_hits += 1
        tstate.statenum = new_state
    else:

        def evaluate(mask_name: str) -> bool:
            stats.masks_evaluated_posting += 1
            outcome = bool(info.masks[mask_name](obj, tstate.params, occurrence))
            mask_outcomes[mask_name] = outcome
            if obs.ENABLED:
                obs.emit(
                    "mask.eval",
                    span,
                    mask=mask_name,
                    trigger=info.name,
                    outcome=outcome,
                    phase="posting",
                )
            return outcome

        result = info.fsm.advance(old_state, eventnum, evaluate)
        tstate.statenum = result.state
        accepted = result.accepted
        if span:
            obs.emit(
                "fsm.advance",
                span,
                trigger=info.name,
                from_state=old_state,
                to_state=result.state,
                consumed=result.consumed,
                accepted=result.accepted,
                pseudo_steps=result.pseudo_steps,
            )
    stats.fsm_advances += 1
    if info.masks and versions.conflict_policy == "replay" and not entry.fresh:
        # Capture what every remaining mask says *now*: a commit-time
        # replay from a different head can walk a different DFA path and
        # ask for masks this advance never reached, and by then the
        # transaction may have mutated ``obj`` — replay must see the
        # posting-time outcomes.  Bookkeeping, not posting semantics, so
        # it stays out of ``masks_evaluated_posting``; a mask that raises
        # here is left unrecorded (replay falls back to live evaluation).
        for mask_name, mask in info.masks.items():
            if mask_name not in mask_outcomes:
                try:
                    mask_outcomes[mask_name] = bool(
                        mask(obj, tstate.params, occurrence)
                    )
                except Exception:
                    pass
    entry.events.append((eventnum, occurrence, mask_outcomes))
    # Shared with the chain mutex (MvccStats discipline): posting runs on
    # concurrent session threads, so the increment must not tear.
    with versions.stats._mutex:
        versions.stats.buffered_advances += 1
    if span and tstate.statenum != old_state:
        obs.emit("state.buffer", span, state_rid=state_rid, trigger=info.name)
    if accepted:
        return FiringRecord(PersistentPtr(db.name, state_rid), tstate, info)
    return None


def dispatch_firing(
    system: "TriggerSystem",
    db: "Database",
    txn: "Transaction",
    record: FiringRecord,
) -> None:
    """Route a detected occurrence according to its coupling mode."""
    coupling = record.info.coupling
    if coupling is CouplingMode.IMMEDIATE:
        run_action(system, db, txn, record)
    elif coupling is CouplingMode.END:
        txn.attachment(END_LIST, list).append(record)
    elif coupling is CouplingMode.DEPENDENT:
        txn.attachment(DEPENDENT_LIST, list).append(record)
    else:  # CouplingMode.INDEPENDENT
        txn.attachment(INDEPENDENT_LIST, list).append(record)


def run_action(
    system: "TriggerSystem",
    db: "Database",
    txn: "Transaction",
    record: FiringRecord,
) -> None:
    """Execute a trigger's action in *txn*, deactivating once-only triggers.

    The action gets the trigger's anchor object as a persistent handle, so
    method calls from within the action post events and can cascade into
    further trigger firings (conceptually nested transactions,
    Section 5.4.5).  ``TransactionAbort`` raised by the action propagates —
    that is ``tabort`` doing its job.
    """
    handle = db.deref(record.state.trigobj)
    ctx = TriggerContext(
        db=db,
        txn=txn,
        trigger_id=record.trigger_id,
        info=record.info,
        params=dict(record.state.params),
        coupling=record.info.coupling,
    )
    if obs.ENABLED:
        obs.emit(
            "action.run",
            trigger=record.info.name,
            coupling=record.info.coupling.value,
            txid=txn.txid,
            session=txn.session_name,
        )
    record.info.action(handle, ctx)
    if not record.info.perpetual:
        # missing_ok: a once-only trigger detected twice before its queued
        # firing ran would otherwise fail the second deactivation.
        system.deactivate(record.trigger_id, missing_ok=True)
