"""Run-time event representation: globally-unique integers (``eventRep``).

"Because of separate compilation, unique integers cannot be assigned at
compile time ... the assignment of unique integers to represent events is
made at run-time.  The eventRep constructor examines a table to see if
another eventRep with the same parameters has been constructed.  If not, it
increments a counter and stores its pair of parameters in the table"
(paper Section 5.2).

:class:`EventRegistry` is that table: the key is ``(declaring type name,
event symbol)`` — the same underlying event always maps to the same integer
within a process, distinct events never collide, and (unlike a dense global
numbering per class) multiple inheritance cannot make two different events
share a number (the Section 6 lesson that led to sparse transition lists).

Mask pseudo-events get integers from the same space, keyed by the trigger's
defining class, so the integer-keyed FSMs are closed over one alphabet.
"""

from __future__ import annotations

import threading


class EventRep:
    """One registered event: the paper's ``eventRep``.

    Construction performs the run-time unique-integer assignment; two
    ``EventRep`` objects with the same (type, symbol) share the integer.
    """

    __slots__ = ("type_name", "symbol", "eventnum")

    def __init__(self, type_name: str, symbol: str, registry: "EventRegistry"):
        self.type_name = type_name
        self.symbol = symbol
        self.eventnum = registry.assign(type_name, symbol)

    def __repr__(self) -> str:
        return f"EventRep({self.type_name}.{self.symbol} -> {self.eventnum})"


class EventRegistry:
    """The process-wide (type name, symbol) → unique integer table."""

    def __init__(self) -> None:
        self._table: dict[tuple[str, str], int] = {}
        self._reverse: dict[int, tuple[str, str]] = {}
        self._counter = 0
        self.lookups = 0  # instrumentation for experiment E1
        # Concurrent sessions may declare classes while others post events;
        # assignment must stay a process-wide atomic increment.
        self._mutex = threading.Lock()

    def assign(self, type_name: str, symbol: str) -> int:
        """Return the unique integer for this underlying event."""
        key = (type_name, symbol)
        self.lookups += 1
        with self._mutex:
            existing = self._table.get(key)
            if existing is not None:
                return existing
            self._counter += 1
            self._table[key] = self._counter
            self._reverse[self._counter] = key
            return self._counter

    def lookup(self, type_name: str, symbol: str) -> int | None:
        """The integer previously assigned, or None."""
        self.lookups += 1
        return self._table.get((type_name, symbol))

    def describe(self, eventnum: int) -> str:
        key = self._reverse.get(eventnum)
        if key is None:
            return f"<unknown event {eventnum}>"
        return f"{key[0]}.{key[1]}"

    def __len__(self) -> int:
        return len(self._table)

    # -- metrics source protocol (mounted as ``events.*`` in db.metrics) -------

    def snapshot(self) -> dict[str, int]:
        return {
            "table_size": len(self._table),
            "assigned": self._counter,
            "lookups": self.lookups,
        }

    def reset(self) -> None:
        """Zero the counters (table contents are state, not a counter)."""
        self.lookups = 0

    def clear(self) -> None:
        """Forget all assignments (test isolation only)."""
        with self._mutex:
            self._table.clear()
            self._reverse.clear()
            self._counter = 0
            self.lookups = 0


_GLOBAL = EventRegistry()


def global_event_registry() -> EventRegistry:
    """The registry shared by all classes in this process."""
    return _GLOBAL
