"""Timed triggers (paper Section 8 future work).

    "Timed triggers, where the passage of time can be used to produce
    events, are also of interest."

Time is modelled by an explicit :class:`VirtualClock` so tests and
benchmarks are deterministic (wall-clock adapters are a one-liner on top).
A :class:`TimerService` schedules one-shot or periodic *timer events*:
when the clock passes a timer's due time, the service posts the named
user-defined event to the target object — from there, ordinary composite
event expressions take over (e.g. ``"after buy, Timeout"`` fires when a
purchase is not followed by payment before the timeout event).

Timers are transient (rebuilt by the application at startup), matching the
prototype status the paper gives this feature.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import TYPE_CHECKING

from repro.errors import TriggerError
from repro.objects.oid import PersistentPtr

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database


class VirtualClock:
    """A monotonic, manually-advanced clock."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        if delta < 0:
            raise TriggerError("the clock cannot run backwards")
        self._now += delta
        return self._now

    def set(self, when: float) -> float:
        if when < self._now:
            raise TriggerError("the clock cannot run backwards")
        self._now = float(when)
        return self._now


@dataclasses.dataclass(order=True)
class _Timer:
    due: float
    seq: int
    timer_id: int = dataclasses.field(compare=False)
    target: PersistentPtr = dataclasses.field(compare=False)
    event_name: str = dataclasses.field(compare=False)
    period: float | None = dataclasses.field(compare=False, default=None)
    cancelled: bool = dataclasses.field(compare=False, default=False)


class TimerService:
    """Schedules timer events against one database."""

    def __init__(self, db: "Database", clock: VirtualClock | None = None):
        self.db = db
        self.clock = clock or VirtualClock()
        self._heap: list[_Timer] = []
        self._timers: dict[int, _Timer] = {}
        self._ids = itertools.count(1)
        self._seq = itertools.count()
        self.fired = 0

    # -- scheduling -----------------------------------------------------------

    def schedule(
        self,
        target: PersistentPtr,
        event_name: str,
        *,
        delay: float | None = None,
        at: float | None = None,
        period: float | None = None,
    ) -> int:
        """Schedule *event_name* to be posted to *target*; returns timer id.

        Give either ``delay`` (relative) or ``at`` (absolute); ``period``
        makes the timer repeat.  The event must be a declared user-defined
        event of the target's class.
        """
        if (delay is None) == (at is None):
            raise TriggerError("give exactly one of delay= or at=")
        if period is not None and period <= 0:
            raise TriggerError("period must be positive")
        due = self.clock.now + delay if delay is not None else float(at)
        if due < self.clock.now:
            raise TriggerError(f"timer due time {due} is in the past")
        timer = _Timer(
            due=due,
            seq=next(self._seq),
            timer_id=next(self._ids),
            target=target,
            event_name=event_name,
            period=period,
        )
        heapq.heappush(self._heap, timer)
        self._timers[timer.timer_id] = timer
        return timer.timer_id

    def cancel(self, timer_id: int) -> bool:
        timer = self._timers.pop(timer_id, None)
        if timer is None:
            return False
        timer.cancelled = True
        return True

    def pending(self) -> int:
        return len(self._timers)

    # -- firing -----------------------------------------------------------------

    def advance_to(self, when: float) -> int:
        """Advance the clock, posting every due timer event; returns count.

        Each due timer's event is posted in its own transaction unless the
        caller already holds one.
        """
        self.clock.set(when)
        fired = 0
        while self._heap and self._heap[0].due <= self.clock.now:
            timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._post(timer)
            fired += 1
            self.fired += 1
            if timer.period is not None:
                timer.due += timer.period
                timer.seq = next(self._seq)
                heapq.heappush(self._heap, timer)
            else:
                self._timers.pop(timer.timer_id, None)
        return fired

    def advance(self, delta: float) -> int:
        return self.advance_to(self.clock.now + delta)

    def _post(self, timer: _Timer) -> None:
        manager = self.db.txn_manager
        if manager.current_or_none() is not None:
            handle = self.db.deref(timer.target)
            handle.post_event(timer.event_name)
            return
        with manager.transaction():
            handle = self.db.deref(timer.target)
            handle.post_event(timer.event_name)
