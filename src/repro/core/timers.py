"""Timed triggers (paper Section 8 future work).

    "Timed triggers, where the passage of time can be used to produce
    events, are also of interest."

Time is modelled by an explicit :class:`VirtualClock` so tests and
benchmarks are deterministic (wall-clock adapters are a one-liner on top).
A :class:`TimerService` schedules one-shot or periodic *timer events*:
when the clock passes a timer's due time, the service posts the named
user-defined event to the target object — from there, ordinary composite
event expressions take over (e.g. ``"after buy, Timeout"`` fires when a
purchase is not followed by payment before the timeout event).

Scheduling invariants the service maintains:

* **no drift** — a periodic timer's next due time is ``due + period``
  (anchored to the schedule), never ``now + period`` (anchored to when the
  service happened to run), so a late ``advance_to`` cannot push every
  subsequent firing later;
* **no dangling posts** — a timer whose target object was deleted
  mid-flight is cancelled (and counted in ``stats.dangling_cancelled``)
  instead of posting through a dangling :class:`PersistentPtr`; a target
  whose triggers were merely deactivated receives the event harmlessly
  (the posting short-circuits on the control bit);
* **self-cancellation** — a trigger action cancelling its own (periodic)
  timer wins: the timer is not rescheduled.

Timers are transient (rebuilt by the application at startup), matching the
prototype status the paper gives this feature.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import threading
from typing import TYPE_CHECKING

from repro import obs
from repro.errors import DanglingPointerError, TriggerError
from repro.objects.oid import PersistentPtr

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database


class VirtualClock:
    """A monotonic, manually-advanced clock."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        if delta < 0:
            raise TriggerError("the clock cannot run backwards")
        self._now += delta
        return self._now

    def set(self, when: float) -> float:
        if when < self._now:
            raise TriggerError("the clock cannot run backwards")
        self._now = float(when)
        return self._now


@dataclasses.dataclass(order=True)
class _Timer:
    due: float
    seq: int
    timer_id: int = dataclasses.field(compare=False)
    target: PersistentPtr = dataclasses.field(compare=False)
    event_name: str = dataclasses.field(compare=False)
    period: float | None = dataclasses.field(compare=False, default=None)
    cancelled: bool = dataclasses.field(compare=False, default=False)


@dataclasses.dataclass
class TimerStats:
    """Counters for the timer subsystem (mounted as ``timers.*``)."""

    scheduled: int = 0
    fired: int = 0
    rescheduled: int = 0
    cancelled: int = 0
    #: timers auto-cancelled because their target object was deleted
    dangling_cancelled: int = 0

    def snapshot(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    def reset(self) -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)


class TimerService:
    """Schedules timer events against one database."""

    def __init__(self, db: "Database", clock: VirtualClock | None = None):
        self.db = db
        self.clock = clock or VirtualClock()
        self._heap: list[_Timer] = []
        self._timers: dict[int, _Timer] = {}
        self._ids = itertools.count(1)
        self._seq = itertools.count()
        # Concurrent sessions share one service: heap and table mutations
        # are serialized (postings run outside the lock, in the calling
        # session's transaction).
        self._mutex = threading.RLock()
        self.stats = TimerStats()
        metrics = getattr(db, "metrics", None)
        if metrics is not None:
            metrics.register_source("timers", self.stats)

    @property
    def fired(self) -> int:
        """Total timer events posted (legacy alias of ``stats.fired``)."""
        return self.stats.fired

    # -- scheduling -----------------------------------------------------------

    def schedule(
        self,
        target: PersistentPtr,
        event_name: str,
        *,
        delay: float | None = None,
        at: float | None = None,
        period: float | None = None,
    ) -> int:
        """Schedule *event_name* to be posted to *target*; returns timer id.

        Give either ``delay`` (relative) or ``at`` (absolute); ``period``
        makes the timer repeat.  The event must be a declared user-defined
        event of the target's class.
        """
        if (delay is None) == (at is None):
            raise TriggerError("give exactly one of delay= or at=")
        if period is not None and period <= 0:
            raise TriggerError("period must be positive")
        due = self.clock.now + delay if delay is not None else float(at)
        if due < self.clock.now:
            raise TriggerError(f"timer due time {due} is in the past")
        with self._mutex:
            timer = _Timer(
                due=due,
                seq=next(self._seq),
                timer_id=next(self._ids),
                target=target,
                event_name=event_name,
                period=period,
            )
            heapq.heappush(self._heap, timer)
            self._timers[timer.timer_id] = timer
            self.stats.scheduled += 1
        if obs.ENABLED:
            obs.emit(
                "timer.schedule",
                timer_id=timer.timer_id,
                event=event_name,
                rid=target.rid,
                due=due,
                period=period,
            )
        return timer.timer_id

    def cancel(self, timer_id: int) -> bool:
        with self._mutex:
            timer = self._timers.pop(timer_id, None)
            if timer is None:
                return False
            timer.cancelled = True
            self.stats.cancelled += 1
        if obs.ENABLED:
            obs.emit("timer.cancel", timer_id=timer_id, event=timer.event_name)
        return True

    def pending(self) -> int:
        return len(self._timers)

    # -- firing -----------------------------------------------------------------

    def advance_to(self, when: float) -> int:
        """Advance the clock, posting every due timer event; returns count.

        Each due timer's event is posted in its own transaction unless the
        caller already holds one.  A timer whose target object no longer
        exists is cancelled rather than left to raise through the clock
        advance; a periodic timer is rescheduled *before* its event posts,
        so its cadence survives an action that raises and an action that
        cancels it observes the usual "cancel wins" rule.
        """
        self.clock.set(when)
        fired = 0
        while True:
            with self._mutex:
                if not self._heap or self._heap[0].due > self.clock.now:
                    break
                timer = heapq.heappop(self._heap)
                if timer.cancelled:
                    continue
                if timer.period is not None:
                    # Anchor to the schedule (due + period), NOT to `now`:
                    # rescheduling off the processing time would drift every
                    # firing later by however late the service ran.
                    timer.due += timer.period
                    timer.seq = next(self._seq)
                    heapq.heappush(self._heap, timer)
                    self.stats.rescheduled += 1
                else:
                    self._timers.pop(timer.timer_id, None)
            try:
                self._post(timer)
            except DanglingPointerError:
                # The target was deleted mid-flight: cancel instead of
                # propagating a dangling-pointer error out of the clock.
                timer.cancelled = True
                self._timers.pop(timer.timer_id, None)
                self.stats.dangling_cancelled += 1
                if obs.ENABLED:
                    obs.emit(
                        "timer.dangling",
                        timer_id=timer.timer_id,
                        event=timer.event_name,
                        rid=timer.target.rid,
                    )
                continue
            fired += 1
            self.stats.fired += 1
            if obs.ENABLED:
                obs.emit(
                    "timer.fire",
                    timer_id=timer.timer_id,
                    event=timer.event_name,
                    rid=timer.target.rid,
                    now=self.clock.now,
                )
        return fired

    def advance(self, delta: float) -> int:
        return self.advance_to(self.clock.now + delta)

    def _post(self, timer: _Timer) -> None:
        # Posted in the *calling* session: advance_to runs in whichever
        # session drives the clock, and the event lands in that session's
        # current transaction (or a fresh one if it is between them).
        manager = self.db.txn_manager
        if manager.current_or_none() is not None:
            handle = self.db.deref(timer.target)
            handle.post_event(timer.event_name)
            return
        with manager.transaction():
            handle = self.db.deref(timer.target)
            handle.post_event(timer.event_name)
