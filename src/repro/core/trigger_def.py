"""Trigger declarations, coupling modes, and integer-keyed FSMs.

:class:`TriggerDecl` is what a class definition writes (via the
:func:`repro.core.declarations.trigger` helper); the declaration processor
compiles it into a :class:`TriggerInfo` — the paper's Section 5.4.4
"trigger information container": FSM, action function, perpetual flag,
coupling mode — stored in the defining class's metatype.

:class:`IntFsm` is the run-time machine keyed by the globally-unique event
integers: each state carries a *sparse* transition list searched linearly,
exactly the representation of Section 5.4.3 ("Any event which does not
appear in a state's Transition list is ignored").
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable

from repro.errors import FSMError, TriggerDeclarationError
from repro.events.compile import CompiledMachine
from repro.events.fsm import DEAD, MAX_PSEUDO_STEPS, AdvanceResult


class CouplingMode(enum.Enum):
    """The ECA coupling modes Ode supplies (paper Section 4.2)."""

    IMMEDIATE = "immediate"
    END = "end"  # deferred: fired right before the transaction commits
    DEPENDENT = "dependent"  # separate txn, commit-dependent on detector
    INDEPENDENT = "!dependent"  # separate txn, no commit dependency

    @classmethod
    def parse(cls, value: "CouplingMode | str") -> "CouplingMode":
        if isinstance(value, cls):
            return value
        for mode in cls:
            if mode.value == value:
                return mode
        if value == "deferred":
            return cls.END
        raise TriggerDeclarationError(
            f"unknown coupling mode {value!r}; expected one of "
            f"{[m.value for m in cls]}"
        )


@dataclasses.dataclass
class TriggerDecl:
    """A trigger as written in a class definition (pre-compilation)."""

    name: str
    expression: str
    action: Callable[..., Any] | str
    params: tuple[str, ...] = ()
    perpetual: bool = False
    coupling: CouplingMode | str = CouplingMode.IMMEDIATE
    masks: dict[str, Callable[..., bool]] = dataclasses.field(default_factory=dict)
    #: User events the action is declared to raise (``post_user_event``
    #: calls, or member calls whose events cascade).  Purely declarative —
    #: the run time does not enforce it — but it makes the trigger→trigger
    #: posting graph statically known, which is what the analyzer's
    #: cascade-cycle pass (ODE030/ODE031) reasons over.
    posts: tuple[str, ...] = ()
    #: Analyzer diagnostic codes acknowledged as intended for this trigger
    #: (e.g. ``("ODE020",)`` on a deliberate alert-then-escalate pair).
    suppress: tuple[str, ...] = ()


# ---------------------------------------------------------------------------
# Integer-keyed run-time FSM (paper Section 5.4.3)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class IntTransition:
    """``struct Transition { unsigned int eventnum; int newstate; }``"""

    eventnum: int
    newstate: int


@dataclasses.dataclass(frozen=True)
class IntState:
    """``class State``: number, accept status, masks, sparse transitions."""

    statenum: int
    accept: bool
    masks: tuple[str, ...]
    transfunc: tuple[IntTransition, ...]

    def next_state(self, eventnum: int) -> int | None:
        """Linear search of the sparse transition list, as the paper does."""
        for transition in self.transfunc:
            if transition.eventnum == eventnum:
                return transition.newstate
        return None


class IntFsm:
    """A compiled machine whose alphabet is globally-unique event integers."""

    def __init__(
        self,
        compiled: CompiledMachine,
        symbol_to_int: dict[str, int],
        pseudo_ints: dict[tuple[str, bool], int],
    ):
        self.compiled = compiled
        self.symbol_to_int = dict(symbol_to_int)
        self.pseudo_ints = dict(pseudo_ints)
        self.anchored = compiled.anchored
        self.start = compiled.fsm.start
        self.alphabet_ints = frozenset(symbol_to_int.values()) | frozenset(
            pseudo_ints.values()
        )
        states = []
        for state in compiled.fsm.states:
            transfunc = tuple(
                IntTransition(symbol_to_int[symbol], dst)
                for symbol, dst in sorted(state.transitions.items())
                if symbol in symbol_to_int
            ) + tuple(
                IntTransition(pseudo_ints[key], dst)
                for key, dst in sorted(
                    (
                        ((sym.split(":", 1)[1], sym.startswith("true:")), dst)
                        for sym, dst in state.transitions.items()
                        if sym.startswith(("true:", "false:"))
                    )
                )
            )
            states.append(
                IntState(state.statenum, state.accept, state.masks, transfunc)
            )
        self.states: tuple[IntState, ...] = tuple(states)

    def __len__(self) -> int:
        return len(self.states)

    def transition_count(self) -> int:
        return sum(len(s.transfunc) for s in self.states)

    def move(self, statenum: int, eventnum: int) -> tuple[int, bool]:
        """One transition on an event integer; missing = ignored (or dead)."""
        if statenum == DEAD:
            return DEAD, False
        nxt = self.states[statenum].next_state(eventnum)
        if nxt is not None:
            return nxt, True
        if self.anchored and eventnum in self.alphabet_ints:
            return DEAD, True
        return statenum, False

    def quiesce(
        self, statenum: int, evaluate_mask: Callable[[str], bool]
    ) -> tuple[int, int]:
        """Evaluate pending masks, feeding pseudo-events back in."""
        current, steps, _ = self._quiesce_tracking(statenum, evaluate_mask)
        return current, steps

    def _quiesce_tracking(
        self, statenum: int, evaluate_mask: Callable[[str], bool]
    ) -> tuple[int, int, bool]:
        """Quiesce, tracking whether any visited state accepts (see
        :meth:`repro.events.fsm.Fsm._quiesce_tracking`)."""
        current = statenum
        steps = 0
        seen_accept = current != DEAD and self.states[current].accept
        while current != DEAD and self.states[current].masks:
            if steps >= MAX_PSEUDO_STEPS:
                raise FSMError("mask cascade did not quiesce")
            mask = self.states[current].masks[0]
            outcome = bool(evaluate_mask(mask))
            pseudo = self.pseudo_ints[(mask, outcome)]
            nxt, consumed = self.move(current, pseudo)
            steps += 1
            if not consumed:
                break
            current = nxt
            seen_accept = seen_accept or (
                current != DEAD and self.states[current].accept
            )
        return current, steps, seen_accept

    def advance(
        self,
        statenum: int,
        eventnum: int,
        evaluate_mask: Callable[[str], bool],
    ) -> AdvanceResult:
        """Post one basic event integer (paper Section 5.4.5, steps a–c).

        Acceptance counts any state *visited* while processing the posting
        — an accept state passed through during the mask cascade still
        fires (footnote 5: at most once per posting either way).
        """
        current, consumed = self.move(statenum, eventnum)
        steps = 0
        seen_accept = False
        if consumed:
            current, steps, seen_accept = self._quiesce_tracking(
                current, evaluate_mask
            )
        return AdvanceResult(current, consumed, consumed and seen_accept, steps)


@dataclasses.dataclass
class TriggerInfo:
    """Everything about one trigger (paper Section 5.4.4 ``TriggerInfo``)."""

    name: str
    triggernum: int
    defining_type: str
    compiled: CompiledMachine
    fsm: IntFsm
    action: Callable[..., Any]
    perpetual: bool
    coupling: CouplingMode
    params: tuple[str, ...]
    #: mask name -> normalized (instance, params) predicate
    masks: dict[str, Callable[..., bool]] = dataclasses.field(default_factory=dict)
    #: mask name -> the predicate exactly as declared (pre-``_adapt_mask``)
    #: — what the ODE4xx compilability pass runs effect inference on; the
    #: arity adapter is an opaque indirection that would widen everything
    #: to unknown.  May be missing entries for run-time bridge triggers.
    mask_specs: dict[str, Callable[..., bool]] = dataclasses.field(
        default_factory=dict
    )
    #: declared user events the action raises (from ``TriggerDecl.posts``)
    posts: tuple[str, ...] = ()
    #: mask names registered per-trigger at declaration (before filtering
    #: to the ones the expression uses) — kept for the ODE011 lint
    declared_masks: tuple[str, ...] = ()
    #: analyzer codes the declaration explicitly acknowledges as intended
    suppress: tuple[str, ...] = ()
    #: the action exactly as declared (a method name string or the raw
    #: callable), before ``_adapt_action`` wraps it — the effect-inference
    #: analyzer resolves string actions against the class from this
    action_spec: Any = None

    def __repr__(self) -> str:
        return (
            f"<TriggerInfo {self.defining_type}.{self.name} "
            f"#{self.triggernum} {self.coupling.value}"
            f"{' perpetual' if self.perpetual else ''}>"
        )
