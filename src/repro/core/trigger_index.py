"""The object → active-triggers index.

"The new trigger is stored in an index that maps an object to all the
triggers active on that object, an index used when posting events"
(paper Section 5.4.1).  Implemented on the bucketed persistent map so
activation/deactivation touch one bucket, and kept in the database so the
index — like the trigger states it points at — survives across sessions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.objects.pmap import PersistentMap

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database
    from repro.transactions.txn import Transaction


class TriggerIndex:
    """Maps an object rid to the rids of its active TriggerState records."""

    def __init__(self, db: "Database", bucket_count: int = 32):
        self._map = PersistentMap(db, "trigger_index", bucket_count=bucket_count)

    @classmethod
    def lock_footprint(cls) -> tuple[tuple[str, str], ...]:
        """The symbolic lock steps one :meth:`lookup` performs, as
        ``(resource-class, mode)`` pairs — the static analyzer's source of
        truth for the index leg of a posting's footprint, kept next to the
        implementation so a storage-layout change updates both."""
        # Header read (to find the bucket) then the bucket record itself;
        # both shared — lookups never write the map.
        return (("meta:index", "S"),)

    def meta_rids(self, txn: "Transaction") -> set[int]:
        """The concrete rids backing this index (header + buckets) — lets
        trace tooling classify lock records on index plumbing as ``meta``
        rather than user data."""
        loaded = self._map._load_header(txn, create=False)
        if loaded is None:
            return set()
        header_rid, buckets = loaded
        return {header_rid} | {rid for rid in buckets if rid >= 0}

    def lookup(self, txn: "Transaction", obj_rid: int) -> list[int]:
        """The TriggerState rids active on *obj_rid* (activation order)."""
        return list(self._map.get(txn, str(obj_rid), ()))

    def entries(self, txn: "Transaction"):
        """Iterate ``(obj_rid, state_rids)`` over every indexed object.

        The public full-scan surface (dump tooling, the database-level
        analyzer pass) — callers should use this rather than reaching into
        the backing persistent map.  Order follows the map's bucket order;
        sort by the numeric rid if stability matters.
        """
        for key, state_rids in self._map.items(txn):
            yield int(key), list(state_rids)

    def add(self, txn: "Transaction", obj_rid: int, state_rid: int) -> None:
        states = self.lookup(txn, obj_rid)
        states.append(state_rid)
        self._map.put(txn, str(obj_rid), states)

    def remove(self, txn: "Transaction", obj_rid: int, state_rid: int) -> int:
        """Drop one mapping; returns how many triggers remain active."""
        states = self.lookup(txn, obj_rid)
        if state_rid in states:
            states.remove(state_rid)
        if states:
            self._map.put(txn, str(obj_rid), states)
        else:
            self._map.remove(txn, str(obj_rid))
        return len(states)

    def drop_all(self, txn: "Transaction", obj_rid: int) -> list[int]:
        """Remove the whole entry, returning the state rids it held."""
        states = self.lookup(txn, obj_rid)
        self._map.remove(txn, str(obj_rid))
        return states
