"""The persistent ``TriggerState`` (paper Section 5.4.1).

    persistent struct TriggerState {
        unsigned int triggernum;
        persistent void *trigobj;
        int statenum;
        persistent metatype *trigobjtype;
    };
    typedef persistent TriggerState *TriggerId;

Plus the trigger's activation arguments — the paper subclasses TriggerState
per trigger (``CredCardAutoRaiseLimitStruct`` adds ``amount``); we store a
params dict in the same record.  The state lives in the *database*, not in
the object (design goal 5: object layout never changes) and not in program
memory (unlike Sentinel) — which is what makes Ode's composite events
*global*: a trigger activated by one application advances and fires across
later applications and sessions.

``TriggerId`` is a persistent pointer to the state record.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.errors import TriggerError
from repro.objects.oid import PersistentPtr
from repro.objects.serialize import decode_value, encode_value

#: A trigger identifier is a persistent pointer to its TriggerState record.
TriggerId = PersistentPtr


@dataclasses.dataclass
class TriggerState:
    """In-memory image of one persistent trigger-state record."""

    triggernum: int
    trigobj: PersistentPtr
    statenum: int
    trigobjtype: str  # name of the class that *defined* the trigger
    params: dict[str, Any] = dataclasses.field(default_factory=dict)

    def encode(self) -> bytes:
        payload = {
            "triggernum": self.triggernum,
            "trigobj": self.trigobj,
            "statenum": self.statenum,
            "trigobjtype": self.trigobjtype,
            "params": dict(self.params),
        }
        out = bytearray()
        encode_value(payload, out)
        return bytes(out)

    #: Field-level validation applied by :meth:`decode`.  ``bool`` is an
    #: ``int`` subclass, so the integer fields reject it explicitly — a
    #: ``True`` statenum would otherwise advance the DFA from state 1.
    _FIELD_TYPES = (
        ("triggernum", int),
        ("trigobj", PersistentPtr),
        ("statenum", int),
        ("trigobjtype", str),
        ("params", dict),
    )

    @classmethod
    def decode(cls, raw: bytes) -> "TriggerState":
        payload, _ = decode_value(raw, 0)
        if not isinstance(payload, dict):
            raise TriggerError(
                "corrupt trigger-state record: payload is "
                f"{type(payload).__name__}, expected a mapping"
            )
        for name, expected in cls._FIELD_TYPES:
            if name not in payload:
                raise TriggerError(
                    f"corrupt trigger-state record: missing field {name!r}"
                )
            value = payload[name]
            if not isinstance(value, expected) or (
                expected is int and isinstance(value, bool)
            ):
                # Half-valid records used to pass silently here and blow
                # up deep in the DFA advance; name the offending field so
                # fsck/ODE1xx can report instead of crash.
                raise TriggerError(
                    f"corrupt trigger-state record: field {name!r} is "
                    f"{type(value).__name__} ({value!r}), expected "
                    f"{expected.__name__}"
                )
        return cls(
            triggernum=payload["triggernum"],
            trigobj=payload["trigobj"],
            statenum=payload["statenum"],
            trigobjtype=payload["trigobjtype"],
            params=dict(payload["params"]),
        )

    def clone(self) -> "TriggerState":
        """An independent working copy (the MVCC buffer advances clones,
        never the immutable committed snapshots)."""
        return TriggerState(
            triggernum=self.triggernum,
            trigobj=self.trigobj,
            statenum=self.statenum,
            trigobjtype=self.trigobjtype,
            params=dict(self.params),
        )

    def arg_tuple(self, param_names: tuple[str, ...]) -> tuple[Any, ...]:
        """The activation arguments in declaration order."""
        return tuple(self.params[name] for name in param_names)
