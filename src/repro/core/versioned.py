"""Versioned TriggerState — the MVCC advance path (DESIGN.md §15).

The paper's Section 6 complaint is that *"triggers turn read access into
write access"*: every FSM advance rewrites the persistent TriggerState
under an exclusive lock, so identical read-only client code starts waiting
and deadlocking the moment triggers are active (experiment E6).  This
module is the second concurrency-control scheme for trigger state —
selected per open with ``Database.open(..., trigger_cc="mvcc")``, with
strict 2PL (``"2pl"``) remaining the baseline:

* **Advance buffer.**  A posting never writes the state record.  The
  first advance of a machine in a transaction clones the latest
  *committed* version of its TriggerState into a per-transaction
  :class:`BufferEntry`; the FSM advances against that private copy, and
  every ``(eventnum, occurrence, mask outcomes)`` it consumes is appended
  to the entry — the outcomes are what the masks said *at posting time*,
  so a commit-time replay cannot be skewed by later mutations of the
  anchor object.  Read-only transactions therefore take **zero X locks**
  on ``state:*`` records, and the E6 deadlock cycle cannot form.

* **Version chain.**  :class:`TriggerVersionManager` keeps, per state
  rid, a chain of immutable :class:`StateVersion` snapshots.  The head is
  always the latest *committed* image; chains are created lazily from the
  storage engine's committed bytes (``storage.peek`` — no locks) and a
  new head is published only after the publishing transaction's commit
  record is durable.

* **Commit-time merge.**  At commit, each buffered entry is validated
  against the then-current head.  If the base version is still the head,
  the working copy *is* the merged state (first-committer fast path).  On
  a lost update — another transaction published a newer version since we
  buffered — the outcome follows the selectable ``conflict_policy``:
  ``"replay"`` (default) re-advances the buffered event sequence
  deterministically from the newer head; ``"abort"`` raises
  :class:`~repro.errors.TriggerStateConflictError`, which the unified
  retry classifier treats like a deadlock (the whole transaction retries).
  Merged states are written through the normal WAL (``UPDATE`` records
  with before-images), so crash recovery, ``fsck`` ODE1xx, and the abort
  path need no new machinery.

The merge → storage-commit → publish sequence runs under the manager's
``commit_mutex`` so no other transaction can validate against a head that
is about to change.  A merge that *fails* (conflict abort, storage error)
rolls back under the same mutex — merged writes carry no record locks, so
their WAL undo must not interleave with another committer's
``write_merged``.  Nothing inside that critical section can wait on the
lock manager (fresh-insert writes re-acquire an X lock the inserting
transaction already holds, which grants immediately, and the failure
path defers its system-queue drain until the mutex is released), so the
cooperative scheduler cannot wedge on it.

The commit mutex is **sharded by state rid** (:class:`ShardedCommitMutex`,
``rid % shards``): a committer takes only the shards covering the rids in
its advance buffer, in ascending shard order (total order, so no ABBA
deadlock between committers).  Two transactions whose buffered machines
hash to disjoint shards validate, merge, and publish fully concurrently —
a second global serial point removed, after the storage engine's own
commit restructure.  All of the exclusion arguments above are per rid:
validation of rid *r* against its head, the lock-free ``write_merged`` of
*r*, *r*'s WAL undo on a failed merge, and the publish of *r*'s new head
all happen under shard ``r % N``, which is exactly what the single mutex
guaranteed.

Known semantic window: firings are dispatched optimistically at posting
time from the buffered view.  A ``"replay"`` merge repairs the committed
*state*, not actions that already ran — the same anomaly Ode accepts for
detached coupling modes, documented in DESIGN.md §15.
"""

from __future__ import annotations

import contextlib
import dataclasses
import itertools
import threading
from typing import TYPE_CHECKING

from repro import obs
from repro.core.trigger_state import TriggerState
from repro.errors import RecordNotFoundError, TriggerStateConflictError

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database
    from repro.transactions.txn import Transaction

#: Per-transaction attachment key holding the :class:`AdvanceBuffer`.
ADVANCE_BUFFER = "trigger:advance_buffer"

#: The selectable lost-update policies.
CONFLICT_POLICIES = ("replay", "abort")

#: Shards of the commit mutex (rid -> rid % N).  Small relative to the
#: lock manager's stripe count: commit sections are short, and a txn
#: acquires every shard its buffer covers, so more shards raises the
#: per-commit acquisition count faster than it lowers contention.
DEFAULT_COMMIT_SHARDS = 8


class ShardedCommitMutex:
    """The commit mutex, sharded by state rid (``rid % shards``).

    Each shard is an :class:`threading.RLock`; a committer acquires the
    shards covering its advance buffer in **ascending index order** via
    :meth:`TriggerVersionManager.commit_lock`, so two committers can
    never hold-and-wait in opposite orders.  Used as a plain context
    manager it takes *every* shard (a stop-the-world section, the exact
    behavior of the old single RLock — diagnostics and tests that want
    to freeze all heads still can).
    """

    def __init__(self, shards: int = DEFAULT_COMMIT_SHARDS) -> None:
        if shards < 1:
            raise ValueError(f"commit shards must be >= 1, got {shards}")
        self._shards = tuple(threading.RLock() for _ in range(shards))

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_of(self, rid: int) -> int:
        return rid % len(self._shards)

    def indices_for(self, rids) -> list[int]:
        """The sorted shard indices covering *rids* (all shards if empty —
        a committer with no identifiable footprint must exclude everyone)."""
        if not rids:
            return list(range(len(self._shards)))
        return sorted({self.shard_of(rid) for rid in rids})

    @contextlib.contextmanager
    def acquire(self, rids):
        """Hold the shards covering *rids*, ascending; release reversed."""
        indices = self.indices_for(rids)
        acquired: list[int] = []
        try:
            for index in indices:
                self._shards[index].acquire()
                acquired.append(index)
            yield
        finally:
            for index in reversed(acquired):
                self._shards[index].release()

    # -- single-RLock compatibility surface --------------------------------

    def __enter__(self) -> "ShardedCommitMutex":
        for shard in self._shards:
            shard.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        for shard in reversed(self._shards):
            shard.release()

    def _is_owned(self) -> bool:
        """Whether the calling thread holds at least one shard (the old
        ``RLock._is_owned`` probe the rollback-under-mutex test uses)."""
        return any(shard._is_owned() for shard in self._shards)


@dataclasses.dataclass(frozen=True)
class StateVersion:
    """One immutable committed snapshot of a TriggerState record."""

    vid: int
    state: TriggerState  # never mutated after publication
    prev: "StateVersion | None" = None

    def chain_length(self) -> int:
        length, node = 0, self
        while node is not None:
            length += 1
            node = node.prev
        return length


class BufferEntry:
    """One machine's private working copy inside a transaction.

    ``state`` is a clone the FSM advances against; ``events`` is the
    ordered ``(eventnum, occurrence, mask outcomes)`` log the commit-time
    merge replays on conflict — the outcomes dict snapshots what every
    mask evaluated to *when the event was posted*, so replay is immune to
    the transaction mutating the anchor object afterwards.  ``obj`` is
    kept only as a last-resort evaluation anchor for a mask whose
    posting-time capture raised (the same per-transaction cached instance
    posting used, so replay never dereferences — and never locks —
    anything new at commit time).  ``fresh`` marks a machine activated by
    this very transaction: its record was inserted (under the X lock
    inserts always grant immediately) and has no committed base version
    to validate against.
    """

    __slots__ = (
        "base_vid",
        "state",
        "info",
        "defining",
        "obj",
        "events",
        "fresh",
        "advance",
        "advance_version",
    )

    def __init__(self, *, base_vid, state, info, defining, obj, fresh=False):
        self.base_vid = base_vid
        self.state = state
        self.info = info
        self.defining = defining
        self.obj = obj
        self.events: list = []
        self.fresh = fresh
        #: Cached generated advance for the compiled tier (resolved
        #: lazily, re-validated against the tier's schema version).
        self.advance = None
        self.advance_version = None


class AdvanceBuffer:
    """The per-transaction advance buffer (dies with the transaction)."""

    def __init__(self) -> None:
        self.entries: dict[int, BufferEntry] = {}
        #: rids this transaction deactivated/deleted; the merge skips
        #: them and publication drops their chains.
        self.deactivated: set[int] = set()

    def __bool__(self) -> bool:
        return bool(self.entries or self.deactivated)


@dataclasses.dataclass
class MvccStats:
    """Counters for the versioned scheme (mounted as ``mvcc.*``).

    Same discipline as :class:`~repro.storage.locks.LockStats`: every
    increment happens under :attr:`_mutex` (the owning
    :class:`TriggerVersionManager` shares its chain mutex in), and
    :meth:`snapshot`/:meth:`reset` take it too — posting increments
    ``buffered_advances`` from concurrent session threads, so an
    unguarded ``+=`` would lose counts and a reset racing an increment
    would tear.
    """

    #: FSM advances served from the buffer instead of a locked write
    buffered_advances: int = 0
    #: version chains materialized from committed storage bytes
    chains_loaded: int = 0
    #: buffered entries merged at commit
    merges: int = 0
    #: merges whose base version was still the committed head
    clean_merges: int = 0
    #: lost-update conflicts detected at merge time
    conflicts: int = 0
    #: conflicts resolved by deterministic event replay
    replays: int = 0
    #: conflicts resolved by aborting the merging transaction
    conflict_aborts: int = 0
    #: new committed versions published
    versions_published: int = 0

    def __post_init__(self) -> None:
        # Standalone instances (tests) get their own lock; a version
        # manager replaces it with its chain mutex so snapshot/reset
        # serialize against the increments themselves.
        self._mutex = threading.Lock()

    def snapshot(self) -> dict[str, int]:
        with self._mutex:
            return {
                field.name: getattr(self, field.name)
                for field in dataclasses.fields(self)
            }

    def reset(self) -> None:
        with self._mutex:
            for field in dataclasses.fields(self):
                setattr(self, field.name, 0)


class TriggerVersionManager:
    """Copy-on-write TriggerState versions for one database."""

    def __init__(
        self,
        db: "Database",
        conflict_policy: str = "replay",
        commit_shards: int = DEFAULT_COMMIT_SHARDS,
    ):
        if conflict_policy not in CONFLICT_POLICIES:
            raise ValueError(
                f"unknown MVCC conflict policy {conflict_policy!r}: "
                f"expected one of {CONFLICT_POLICIES}"
            )
        self.db = db
        self.conflict_policy = conflict_policy
        #: state rid -> committed head version.
        self._chains: dict[int, StateVersion] = {}
        self._chain_mutex = threading.Lock()
        self.stats = MvccStats()
        # Counter increments share the chain mutex (LockStats discipline):
        # sites already inside ``with self._chain_mutex`` increment
        # directly; everything else takes ``stats._mutex``.
        self.stats._mutex = self._chain_mutex
        #: Serializes [merge -> storage commit -> publish] per state-rid
        #: shard; reentrant shards so a diagnostic inside the section can
        #: still read heads.
        self.commit_mutex = ShardedCommitMutex(commit_shards)
        self._vids = itertools.count(1)

    # -- buffers ---------------------------------------------------------------

    def buffer_of(self, txn: "Transaction") -> AdvanceBuffer:
        return txn.attachment(ADVANCE_BUFFER, AdvanceBuffer)

    def pending(self, txn: "Transaction") -> bool:
        """Whether *txn* has buffered work for the commit-time merge."""
        buffer = txn.attachments.get(ADVANCE_BUFFER)
        return buffer is not None and bool(buffer)

    def register_fresh(
        self, txn: "Transaction", state_rid: int, tstate, info, defining, obj
    ) -> None:
        """Adopt a machine activated by *txn* itself into its buffer.

        The activation insert already holds the record's X lock; the
        merge re-writes it through the normal locked path, and the chain
        head is created only if the transaction commits.
        """
        self.buffer_of(txn).entries[state_rid] = BufferEntry(
            base_vid=0,
            state=tstate,
            info=info,
            defining=defining,
            obj=obj,
            fresh=True,
        )

    def mark_deactivated(self, txn: "Transaction", state_rid: int) -> None:
        """Record that *txn* deactivated the machine at *state_rid*."""
        buffer = self.buffer_of(txn)
        buffer.entries.pop(state_rid, None)
        buffer.deactivated.add(state_rid)

    # -- the version chain -----------------------------------------------------

    def committed_head(self, state_rid: int) -> StateVersion:
        """The latest committed version of *state_rid*'s TriggerState.

        Chains are loaded lazily from the engine's committed bytes via
        ``storage.peek`` — lock-free, which is sound because a state rid
        only becomes visible to other transactions once its activating
        transaction committed (the trigger index bucket is 2PL-locked),
        and every later mutation goes through this manager, which keeps
        the chain current.
        """
        with self._chain_mutex:
            head = self._chains.get(state_rid)
        if head is not None:
            return head
        raw = self.db.storage.peek(state_rid)
        state = TriggerState.decode(raw)
        with self._chain_mutex:
            head = self._chains.get(state_rid)
            if head is None:
                head = StateVersion(next(self._vids), state)
                self._chains[state_rid] = head
                self.stats.chains_loaded += 1
            return head

    def head_or_none(self, state_rid: int) -> StateVersion | None:
        with self._chain_mutex:
            return self._chains.get(state_rid)

    # -- commit-time merge ------------------------------------------------------

    def commit_lock(self, txn: "Transaction"):
        """The commit-mutex section covering *txn*'s advance buffer.

        Resolves the buffer's rid footprint (entries + deactivations) to
        commit-mutex shards and holds them, ascending, for the duration —
        everything :meth:`commit_merge` and :meth:`publish` touch for a
        rid happens under that rid's shard.  The footprint is fixed once
        the merge starts (posting is over; the buffer dies with the
        transaction), so the shard set computed here covers the whole
        section.
        """
        buffer = txn.attachments.get(ADVANCE_BUFFER)
        rids: set[int] = set()
        if buffer is not None:
            rids.update(buffer.entries)
            rids.update(buffer.deactivated)
        return self.commit_mutex.acquire(rids)

    def commit_merge(self, txn: "Transaction") -> list[tuple[int, TriggerState]]:
        """Validate and write *txn*'s buffered advances; returns the
        ``(rid, merged state)`` pairs to publish after the storage commit.

        Must run under :meth:`commit_lock`.  Raises
        :class:`TriggerStateConflictError` when a lost update is found
        and the policy is ``"abort"`` — before the storage commit, so the
        ordinary abort path rolls back everything (including any merged
        WAL writes already applied, via their before-images).
        """
        buffer = txn.attachments.get(ADVANCE_BUFFER)
        if buffer is None:
            return []
        storage = self.db.storage
        publishes: list[tuple[int, TriggerState]] = []
        for state_rid in sorted(buffer.entries):
            if state_rid in buffer.deactivated:
                continue
            entry = buffer.entries[state_rid]
            if entry.fresh:
                # Activated by this transaction: the insert wrote the
                # quiesced state and still holds the X lock, so this
                # write grants immediately (no wait inside the mutex).
                if entry.events:
                    storage.write(txn.txid, state_rid, entry.state.encode())
                publishes.append((state_rid, entry.state))
                continue
            if not entry.events:
                continue  # loaded but never advanced: nothing to merge
            if not storage.exists(txn.txid, state_rid):
                continue  # deactivated+committed elsewhere; chain already dropped
            head = self.committed_head(state_rid)
            if head.vid == entry.base_vid:
                merged = entry.state
                with self._chain_mutex:
                    self.stats.merges += 1
                    self.stats.clean_merges += 1
            else:
                with self._chain_mutex:
                    self.stats.merges += 1
                    self.stats.conflicts += 1
                if self.conflict_policy == "abort":
                    with self._chain_mutex:
                        self.stats.conflict_aborts += 1
                    if obs.ENABLED:
                        obs.emit(
                            "mvcc.conflict",
                            txid=txn.txid,
                            state_rid=state_rid,
                            base_vid=entry.base_vid,
                            head_vid=head.vid,
                            resolution="abort",
                        )
                    raise TriggerStateConflictError(
                        txn.txid, state_rid, entry.base_vid, head.vid
                    )
                merged = self._replay(entry, head.state)
                with self._chain_mutex:
                    self.stats.replays += 1
                if obs.ENABLED:
                    obs.emit(
                        "mvcc.conflict",
                        txid=txn.txid,
                        state_rid=state_rid,
                        base_vid=entry.base_vid,
                        head_vid=head.vid,
                        resolution="replay",
                    )
            # The WAL-logged, lock-free write: exclusion comes from the
            # commit mutex, not the lock manager — this is exactly the
            # "state:* stops being X-locked" property E6 measures.
            storage.write_merged(txn.txid, state_rid, merged.encode())
            publishes.append((state_rid, merged))
        return publishes

    def publish(
        self, txn: "Transaction", publishes: list[tuple[int, TriggerState]]
    ) -> None:
        """Install the merged states as new committed heads.

        Called under :meth:`commit_lock`, *after* the storage commit is
        durable — a published head must never precede its durability.
        """
        buffer = txn.attachments.get(ADVANCE_BUFFER)
        with self._chain_mutex:
            for state_rid, state in publishes:
                prev = self._chains.get(state_rid)
                self._chains[state_rid] = StateVersion(
                    next(self._vids), state, prev
                )
                self.stats.versions_published += 1
            if buffer is not None:
                for state_rid in buffer.deactivated:
                    self._chains.pop(state_rid, None)

    # -- deterministic replay ---------------------------------------------------

    def _replay(self, entry: BufferEntry, base: TriggerState) -> TriggerState:
        """Re-advance *entry*'s buffered event log from *base*.

        Deterministic by construction: the event sequence and the mask
        outcomes are the ones recorded when each event was posted —
        replaying from a *different* head may walk a different DFA path,
        but every mask it can ask about was captured at posting time, so
        a transaction that mutated the anchor object *after* posting
        cannot make the merge disagree with its own observed run.  Only a
        mask whose capture raised falls back to a live evaluation against
        ``entry.obj`` (2PL on ordinary objects means nobody else changed
        it under us).
        """
        info = entry.info
        merged = base.clone()
        for eventnum, occurrence, outcomes in entry.events:

            def evaluate(
                mask_name: str, _occ=occurrence, _outcomes=outcomes
            ) -> bool:
                try:
                    return _outcomes[mask_name]
                except KeyError:
                    return bool(
                        info.masks[mask_name](entry.obj, merged.params, _occ)
                    )

            result = info.fsm.advance(merged.statenum, eventnum, evaluate)
            merged.statenum = result.state
        return merged

    # -- introspection ----------------------------------------------------------

    def chain_lengths(self) -> dict[int, int]:
        """rid -> published-chain length (diagnostics/tests)."""
        with self._chain_mutex:
            return {rid: head.chain_length() for rid, head in self._chains.items()}
