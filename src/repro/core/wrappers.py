"""Generated member-function wrappers (paper Section 5.3).

The O++ compiler rewrites ``pcred->PayBill(257.34)`` into
``pcred->PayBillWithPost(257.34)`` where the generated wrapper calls the
member function and posts its events::

    void CredCard::PayBillWithPost(float amount) {
        PayBill(amount);
        PostEvent(CredCardEvents[1], pthis, type_CredCard);
    }

Our wrappers are closures stored in the metatype's ``method_wrappers`` and
invoked only through :class:`~repro.objects.handle.PersistentHandle` —
"member functions invoked via volatile object pointers or references do not
cause events to be posted" (paper footnote 1), and indeed a volatile call
never touches this module.  The wrapper resolves the method dynamically on
the instance (the paper declares the wrapper ``virtual`` when the member
function is), posts the ``before`` event, calls the method, marks the
object dirty, posts the ``after`` event, and returns the method's value.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database
    from repro.objects.oid import PersistentPtr
    from repro.objects.persistent import Persistent


def make_method_wrapper(
    method_name: str,
    before_eventnum: int | None,
    after_eventnum: int | None,
) -> Callable[..., Any]:
    """Build the ``<method>WithPost`` wrapper for one member function."""

    def wrapper(
        db: "Database",
        ptr: "PersistentPtr",
        obj: "Persistent",
        *args: Any,
        **kwargs: Any,
    ) -> Any:
        from repro.core.posting import EventOccurrence

        trigger_system = db.trigger_system
        if before_eventnum is not None and trigger_system is not None:
            occurrence = EventOccurrence(
                before_eventnum, method_name, args, dict(kwargs)
            )
            trigger_system.post_event(db, before_eventnum, ptr, obj, occurrence)
        method = getattr(obj, method_name)  # dynamic: virtual dispatch
        result = method(*args, **kwargs)
        db.mark_dirty(obj)
        if after_eventnum is not None and trigger_system is not None:
            occurrence = EventOccurrence(
                after_eventnum, method_name, args, dict(kwargs)
            )
            trigger_system.post_event(db, after_eventnum, ptr, obj, occurrence)
        return result

    wrapper.__name__ = f"{method_name}WithPost"
    wrapper.__qualname__ = wrapper.__name__
    return wrapper
