"""Exception hierarchy for the Ode reproduction.

All library errors derive from :class:`OdeError` so callers can catch a
single base class.  Transaction-control exceptions (:class:`TransactionAbort`)
deliberately derive from ``BaseException``-adjacent ``Exception`` but carry
control-flow meaning: raising one inside a trigger action is the Python
analogue of O++'s ``tabort`` statement.
"""

from __future__ import annotations


class OdeError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------


class StorageError(OdeError):
    """Base class for storage-manager failures."""


class PageError(StorageError):
    """A slotted-page operation was invalid (bad slot, overflow, ...)."""


class PageFullError(PageError):
    """The record does not fit in the page's free space."""


class RecordNotFoundError(StorageError):
    """No record exists at the given record identifier."""


class BufferPoolError(StorageError):
    """Buffer-pool misuse, e.g. unpinning a page that is not pinned."""


class WALError(StorageError):
    """The write-ahead log is corrupt or was misused."""


class PageChecksumError(PageError):
    """A page read back from disk failed its checksum (torn write/bit rot)."""

    def __init__(self, page_no: int, stored: int, computed: int):
        self.page_no = page_no
        self.stored = stored
        self.computed = computed
        super().__init__(
            f"page {page_no} checksum mismatch: "
            f"stored {stored:#010x}, computed {computed:#010x}"
        )


class RecoveryError(StorageError):
    """Crash recovery could not be completed."""


class TransientIOError(OSError):
    """An injected, retryable I/O failure (``EIO``-style hiccup).

    Subclasses :class:`OSError` — not :class:`StorageError` — because the
    engine's retry loops must treat injected transient faults exactly like
    the real ``OSError`` they model; nothing above the retry layer should
    ever observe one.
    """


class UnrecoverableMediaError(StorageError):
    """The medium failed permanently; retrying cannot help.

    The engine reacts by *degrading to read-only* rather than risking a
    corrupt store: committed state stays readable, mutations are refused
    with :class:`ReadOnlyStorageError`.
    """


class ReadOnlyStorageError(StorageError):
    """A mutation was attempted on a storage manager degraded to read-only."""


class InjectedCrashError(BaseException):  # noqa: N818 - control flow
    """A fault-injection point simulated a process crash.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so that
    ``except Exception`` recovery paths in the engine cannot swallow it —
    a crashed process does not run exception handlers.  Only the crash
    harness catches it.
    """

    def __init__(self, point: str, hit: int):
        self.point = point
        self.hit = hit
        super().__init__(f"injected crash at failpoint {point!r} (hit #{hit})")


class LockError(StorageError):
    """Base class for lock-manager failures."""


class DeadlockError(LockError):
    """The requesting transaction was chosen as a deadlock victim."""

    def __init__(self, txid: int, cycle: tuple[int, ...] = ()):
        self.txid = txid
        self.cycle = tuple(cycle)
        detail = f" (cycle: {' -> '.join(map(str, cycle))})" if cycle else ""
        super().__init__(f"transaction {txid} aborted to break a deadlock{detail}")


class LockTimeoutError(LockError):
    """A lock could not be granted within the configured wait budget."""


class WaitPoisonedError(LockError):
    """A blocked lock wait was cancelled because the lock manager was
    poisoned (database crashed or closed while sessions were waiting).

    Raised in the *waiter*, never in the poisoner: the transaction that
    observed the failure gets the original error, while everyone parked
    behind its locks is woken with this instead of hanging forever.
    """


class LockUpgradeError(LockError):
    """An illegal lock conversion was requested."""


# ---------------------------------------------------------------------------
# Object manager
# ---------------------------------------------------------------------------


class ObjectError(OdeError):
    """Base class for object-manager failures."""


class DanglingPointerError(ObjectError):
    """A persistent pointer refers to a deleted or never-allocated object."""


class SchemaError(ObjectError):
    """A class schema declaration or value is invalid."""


class UnknownTriggerError(SchemaError):
    """A trigger number or name does not exist on the class.

    Subclasses :class:`SchemaError` (callers historically caught that)
    while carrying the class name and the valid range in its message.
    """


class SerializationError(ObjectError):
    """A value could not be encoded/decoded with the declared field type."""


class UnknownTypeError(ObjectError):
    """An object's stored type name is not registered in this process."""


class DatabaseClosedError(ObjectError):
    """An operation was attempted on a closed database."""


class DatabaseError(ObjectError):
    """Database-level misuse (duplicate open, bad path, ...)."""


class SessionError(DatabaseError):
    """Session-level misuse (duplicate live name, use after close, ...)."""


class SchedulerHangError(SessionError):
    """A cooperative-scheduler task thread failed to exit at shutdown.

    Carries the stuck task's name plus, when its session is known, the
    locks its transaction still holds and the transactions it waits for —
    the information needed to diagnose the hang instead of a silent
    ``join(timeout=...)`` that proceeds as if nothing happened.
    """

    def __init__(self, task: str, detail: str = ""):
        self.task = task
        message = f"scheduler task {task!r} did not exit"
        if detail:
            message += f": {detail}"
        super().__init__(message)


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------


class TransactionError(OdeError):
    """Base class for transaction-manager failures."""


class NoActiveTransactionError(TransactionError):
    """A data operation was attempted outside a transaction block."""


class NestedTransactionError(TransactionError):
    """A top-level transaction was started while one is already active."""


class TransactionDeadlineError(TransactionError):
    """The transaction's deadline expired before it could finish.

    Enforced at the points where a transaction can stall indefinitely —
    lock waits and retry-loop boundaries — so a deadline bounds *waiting*,
    not CPU time.  Deliberately not retryable: the budget covered every
    attempt, so the unified retry classifier re-raises it.
    """


class TransactionAbort(Exception):  # noqa: N818 - control-flow, paper's `tabort`
    """Raised to abort the surrounding transaction (O++ ``tabort``).

    The paper relaxed the rule that ``tabort`` must appear statically inside a
    transaction block precisely so that *trigger actions* could abort the
    transaction that detected their event (Section 6).  Raising this from a
    trigger action aborts the event-detecting transaction.
    """

    def __init__(self, reason: str = "tabort"):
        self.reason = reason
        super().__init__(reason)


class CommitDependencyError(TransactionError):
    """A dependent transaction could not commit because its parent aborted."""


class TriggerStateConflictError(TransactionError):
    """The MVCC commit-time merge found a lost update under the ``abort``
    conflict policy: another transaction published a newer TriggerState
    version after this one buffered its advances.

    Retryable — the optimistic analogue of a deadlock victim: the aborted
    transaction re-runs from the top against the new committed head (see
    :mod:`repro.core.versioned` and :mod:`repro.faults.retry`).
    """

    def __init__(self, txid: int, state_rid: int, base_vid: int, head_vid: int):
        self.txid = txid
        self.state_rid = state_rid
        self.base_vid = base_vid
        self.head_vid = head_vid
        super().__init__(
            f"transaction {txid} lost an update race on trigger state "
            f"{state_rid}: buffered against version {base_vid}, committed "
            f"head is now {head_vid}"
        )


# ---------------------------------------------------------------------------
# Event language
# ---------------------------------------------------------------------------


class EventError(OdeError):
    """Base class for event-language failures."""


class EventParseError(EventError):
    """The textual event expression could not be parsed."""

    def __init__(self, message: str, text: str = "", pos: int = -1):
        self.text = text
        self.pos = pos
        if pos >= 0:
            caret = " " * pos + "^"
            message = f"{message}\n  {text}\n  {caret}"
        super().__init__(message)


class UnknownEventError(EventError):
    """An expression names an event not declared by the class."""


class UnknownMaskError(EventError):
    """An expression names a mask with no registered predicate."""


class FSMError(EventError):
    """The compiled finite state machine was misused at run time."""


# ---------------------------------------------------------------------------
# Trigger system
# ---------------------------------------------------------------------------


class TriggerError(OdeError):
    """Base class for trigger-system failures."""


class TriggerDeclarationError(TriggerError):
    """A trigger/event declaration in a class definition is invalid."""


class TriggerNotActiveError(TriggerError):
    """Deactivation or inspection of a trigger that is not active."""


class TriggerArgumentError(TriggerError):
    """Activation arguments do not match the trigger's parameter list."""


class ConstraintViolationError(TriggerError):
    """A constraint trigger rejected an update (constraints-as-triggers)."""

    def __init__(self, constraint: str, detail: str = ""):
        self.constraint = constraint
        self.detail = detail
        message = f"constraint {constraint!r} violated"
        if detail:
            message += f": {detail}"
        super().__init__(message)
