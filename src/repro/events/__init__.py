"""The Ode/Compose event language and its compilation to extended FSMs.

Event expressions are built from *basic events* (member-function
``before``/``after`` events, user-defined events, transaction events) with
the paper's operators:

=============  =====================================================
``e1, e2``     sequence (the paper renamed ``;`` to ``,`` for C++ feel)
``e1 || e2``   union
``*e``         repetition (prefix, as in ``(*any)``)
``+e``         one-or-more (convenience)
``e & m``      mask — predicate *m* is evaluated when *e* completes
``relative``   ``relative(e1, e2)`` ≡ ``e1, (*any), e2``
``any``        any declared event
``^e``         anchored: no implicit ``(*any)`` prefix
=============  =====================================================

Expressions compile (``parse`` → desugar → Thompson NFA → subset DFA →
optional Moore minimization) into an extended finite state machine whose
*mask states* evaluate predicates and advance on ``True``/``False``
pseudo-events, exactly the construction of paper Section 5.1.

This package is self-contained: it knows nothing about databases,
triggers, or storage — the trigger system layers the run-time integer
event representation on top.
"""

from repro.events.ast import (
    AnyEvent,
    BasicEvent,
    EventExpr,
    Masked,
    Plus,
    Relative,
    Seq,
    Star,
    Union,
)
from repro.events.compile import CompiledMachine, compile_expression
from repro.events.fsm import FALSE_PREFIX, TRUE_PREFIX, EventDecl, Fsm, FsmState
from repro.events.parser import parse

__all__ = [
    "FALSE_PREFIX",
    "TRUE_PREFIX",
    "AnyEvent",
    "BasicEvent",
    "CompiledMachine",
    "EventDecl",
    "EventExpr",
    "Fsm",
    "FsmState",
    "Masked",
    "Plus",
    "Relative",
    "Seq",
    "Star",
    "Union",
    "compile_expression",
    "parse",
]
