"""Event-expression abstract syntax.

Nodes are immutable value objects.  ``desugar()`` rewrites the derived
operators (``relative``, ``+``, masks) into the core regular operators so
the NFA construction only ever sees sequence, union, star, basic events,
and ``any``; masks desugar into obligations to consume a ``True``
pseudo-event (see :mod:`repro.events.fsm` for the pseudo-event naming).
"""

from __future__ import annotations

import dataclasses

from repro.errors import EventError

#: Valid basic-event kinds.  Transaction events use kind "before" with the
#: reserved names "tcomplete"/"tabort" (the paper dropped `after tabort`
#: and `after tcommit`; see Section 6).
KINDS = ("before", "after", "user")


class EventExpr:
    """Base class of all event-expression nodes."""

    def unparse(self) -> str:
        raise NotImplementedError

    def children(self) -> tuple["EventExpr", ...]:
        return ()

    def desugar(self) -> "EventExpr":
        """Rewrite derived operators into core ones (recursively)."""
        return self

    # -- analysis helpers --------------------------------------------------------

    def basic_events(self) -> set["BasicEvent"]:
        found: set[BasicEvent] = set()
        stack: list[EventExpr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, BasicEvent) and not node.is_pseudo():
                found.add(node)
            stack.extend(node.children())
        return found

    def nullable(self) -> bool:
        """Whether the expression matches the empty event sequence.

        Nullable top-level expressions are rejected at compile time: a
        zero-length match would not "include the latest basic event"
        (paper footnote 5), so such a trigger could never legitimately
        fire on an event posting.
        """
        if isinstance(self, Star):
            return True
        if isinstance(self, Plus):
            return self.child.nullable()
        if isinstance(self, Seq):
            return all(part.nullable() for part in self.parts)
        if isinstance(self, Union):
            return any(part.nullable() for part in self.parts)
        if isinstance(self, (Masked, Relative)):
            children = self.children()
            if isinstance(self, Masked):
                return children[0].nullable()
            return all(child.nullable() for child in children)
        return False

    def mask_names(self) -> set[str]:
        found: set[str] = set()
        stack: list[EventExpr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Masked):
                found.add(node.mask)
            stack.extend(node.children())
        return found

    def __str__(self) -> str:
        return self.unparse()


@dataclasses.dataclass(frozen=True)
class BasicEvent(EventExpr):
    """A basic event: ``after Buy``, ``before PayBill``, ``BigBuy``.

    ``kind`` is "before", "after", or "user".  Internal pseudo-events
    (mask outcomes) use kind "pseudo" and are produced only by desugaring.
    """

    kind: str
    name: str

    def __post_init__(self) -> None:
        if self.kind not in KINDS + ("pseudo",):
            raise EventError(f"bad event kind {self.kind!r}")

    @property
    def symbol(self) -> str:
        """The canonical alphabet symbol for this event."""
        if self.kind == "user":
            return self.name
        if self.kind == "pseudo":
            return self.name  # already "true:m" / "false:m"
        return f"{self.kind} {self.name}"

    def is_pseudo(self) -> bool:
        return self.kind == "pseudo"

    def unparse(self) -> str:
        return self.symbol


@dataclasses.dataclass(frozen=True)
class AnyEvent(EventExpr):
    """``any`` — matches every *declared* event of the class.

    Deliberately excludes the mask pseudo-events: if it consumed them, an
    expression like ``any & m`` would treat a mask's own ``False`` outcome
    as a fresh ``any`` occurrence and re-arm the mask forever.
    """

    def unparse(self) -> str:
        return "any"


@dataclasses.dataclass(frozen=True)
class ExtAnyEvent(EventExpr):
    """Internal wildcard: every alphabet symbol *including* pseudo-events.

    Used for the implicit unanchored ``(*any)`` prefix and the
    ``relative`` desugaring — those loops must swallow ``False``
    pseudo-events so a failed mask falls back into the loop, exactly the
    ``False`` edge from state 1 to state 0 in paper Figure 1.
    """

    def unparse(self) -> str:
        return "<any+pseudo>"


@dataclasses.dataclass(frozen=True)
class Seq(EventExpr):
    """Sequence: ``e1, e2, ...`` (the regular-expression ``;``)."""

    parts: tuple[EventExpr, ...]

    def __init__(self, parts) -> None:
        object.__setattr__(self, "parts", tuple(parts))
        if len(self.parts) < 1:
            raise EventError("empty sequence")

    def children(self) -> tuple[EventExpr, ...]:
        return self.parts

    def desugar(self) -> EventExpr:
        parts = tuple(p.desugar() for p in self.parts)
        return parts[0] if len(parts) == 1 else Seq(parts)

    def unparse(self) -> str:
        return "(" + ", ".join(p.unparse() for p in self.parts) + ")"


@dataclasses.dataclass(frozen=True)
class Union(EventExpr):
    """Alternation: ``e1 || e2``."""

    parts: tuple[EventExpr, ...]

    def __init__(self, parts) -> None:
        object.__setattr__(self, "parts", tuple(parts))
        if len(self.parts) < 1:
            raise EventError("empty union")

    def children(self) -> tuple[EventExpr, ...]:
        return self.parts

    def desugar(self) -> EventExpr:
        parts = tuple(p.desugar() for p in self.parts)
        return parts[0] if len(parts) == 1 else Union(parts)

    def unparse(self) -> str:
        return "(" + " || ".join(p.unparse() for p in self.parts) + ")"


@dataclasses.dataclass(frozen=True)
class Star(EventExpr):
    """Zero-or-more repetition, written prefix: ``*e``."""

    child: EventExpr

    def children(self) -> tuple[EventExpr, ...]:
        return (self.child,)

    def desugar(self) -> EventExpr:
        return Star(self.child.desugar())

    def unparse(self) -> str:
        return f"(*{self.child.unparse()})"


@dataclasses.dataclass(frozen=True)
class Plus(EventExpr):
    """One-or-more repetition: ``+e`` ≡ ``e, *e``."""

    child: EventExpr

    def children(self) -> tuple[EventExpr, ...]:
        return (self.child,)

    def desugar(self) -> EventExpr:
        core = self.child.desugar()
        return Seq((core, Star(core)))

    def unparse(self) -> str:
        return f"(+{self.child.unparse()})"


@dataclasses.dataclass(frozen=True)
class Masked(EventExpr):
    """A masked event: ``e & m``.

    Desugars to ``e`` followed by the obligation to consume the ``True``
    pseudo-event of mask *m* — the compiled machine marks the intermediate
    state as a *mask state* that evaluates the predicate (Section 5.1.2).
    """

    child: EventExpr
    mask: str

    def children(self) -> tuple[EventExpr, ...]:
        return (self.child,)

    def desugar(self) -> EventExpr:
        from repro.events.fsm import TRUE_PREFIX

        return Seq(
            (
                self.child.desugar(),
                BasicEvent("pseudo", TRUE_PREFIX + self.mask),
            )
        )

    def unparse(self) -> str:
        return f"({self.child.unparse()} & {self.mask})"


@dataclasses.dataclass(frozen=True)
class Relative(EventExpr):
    """``relative(e1, e2)`` — after e1 is satisfied, any later e2 matches.

    Desugars to ``e1, (*any), e2`` (paper Section 4, trigger
    AutoRaiseLimit; Figure 1 is the compiled form of this rewrite).
    """

    first: EventExpr
    second: EventExpr

    def children(self) -> tuple[EventExpr, ...]:
        return (self.first, self.second)

    def desugar(self) -> EventExpr:
        return Seq(
            (self.first.desugar(), Star(ExtAnyEvent()), self.second.desugar())
        )

    def unparse(self) -> str:
        return f"relative({self.first.unparse()}, {self.second.unparse()})"
