"""The event-expression compilation pipeline.

``compile_expression`` runs: parse (if given text) → validate names against
the class's declared events and registered masks → desugar → prepend the
implicit ``(*any)`` unless anchored (Section 5.1.1) → Thompson NFA →
subset-construction DFA → optional Moore minimization.  The result bundles
the machine with everything the trigger system needs to wire it up.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

from repro.errors import EventError, UnknownEventError, UnknownMaskError
from repro.events.ast import EventExpr, ExtAnyEvent, Seq, Star
from repro.events.dfa import determinize
from repro.events.fsm import FALSE_PREFIX, TRUE_PREFIX, EventDecl, Fsm
from repro.events.minimize import minimize_fsm, prune_irrelevant_masks
from repro.events.nfa import build_nfa
from repro.events.parser import parse


@dataclasses.dataclass(frozen=True)
class CompiledMachine:
    """An event expression compiled to an extended FSM."""

    text: str
    expr: EventExpr
    anchored: bool
    fsm: Fsm
    event_symbols: frozenset[str]
    masks: frozenset[str]

    def describe(self) -> str:
        return f"expression: {self.text}\n{self.fsm.describe()}"


def _normalize_declared(declared: Iterable[EventDecl | str]) -> list[EventDecl]:
    result = []
    for item in declared:
        result.append(item if isinstance(item, EventDecl) else EventDecl.parse(item))
    return result


def compile_expression(
    expression: str | EventExpr,
    declared_events: Sequence[EventDecl | str],
    known_masks: Iterable[str] | None = None,
    *,
    anchored: bool = False,
    minimize: bool = True,
) -> CompiledMachine:
    """Compile *expression* against a class's declared events.

    ``declared_events`` is the class's event declaration — the alphabet of
    the regular-expression language for that class (Section 5.1).  Events
    named in the expression but not declared raise
    :class:`~repro.errors.UnknownEventError`; with ``known_masks`` given,
    unknown mask names raise :class:`~repro.errors.UnknownMaskError`.
    """
    if isinstance(expression, str):
        expr, parsed_anchor = parse(expression)
        anchored = anchored or parsed_anchor
        text = expression
    else:
        expr = expression
        text = expr.unparse()

    if expr.nullable():
        raise EventError(
            f"expression {text!r} matches the empty event sequence; a "
            "trigger fires only on matches that include the posted event "
            "(paper footnote 5), so a nullable expression can never fire"
        )

    declared = _normalize_declared(declared_events)
    declared_symbols = {decl.symbol for decl in declared}

    for event in expr.basic_events():
        if event.symbol not in declared_symbols:
            known = ", ".join(sorted(declared_symbols)) or "<none>"
            raise UnknownEventError(
                f"event {event.symbol!r} is not declared; declared events: {known}"
            )
    masks = frozenset(expr.mask_names())
    if known_masks is not None:
        registered = set(known_masks)
        for mask in sorted(masks):
            if mask not in registered:
                known = ", ".join(sorted(registered)) or "<none>"
                raise UnknownMaskError(
                    f"mask {mask!r} has no registered predicate; known masks: {known}"
                )

    alphabet = set(declared_symbols)
    for mask in masks:
        alphabet.add(TRUE_PREFIX + mask)
        alphabet.add(FALSE_PREFIX + mask)

    desugared = expr.desugar()
    if not anchored:
        # "The implementation prepends the event expression (*any)"
        # (Section 5.1.1) so matches may start anywhere in the stream.
        # The prefix loop uses the extended wildcard so a failed mask's
        # False pseudo-event falls back into it (Figure 1's False edge).
        desugared = Seq((Star(ExtAnyEvent()), desugared))

    nfa = build_nfa(desugared, frozenset(alphabet))
    fsm = determinize(nfa, anchored)
    if minimize:
        # Minimization exposes irrelevant masks (equivalent true/false
        # targets get the same number), and pruning a mask can in turn
        # unlock further merging — iterate to a fixpoint.
        while True:
            fsm = minimize_fsm(fsm)
            pruned = prune_irrelevant_masks(fsm)
            if pruned is fsm:
                break
            fsm = pruned
    else:
        fsm = prune_irrelevant_masks(fsm)

    return CompiledMachine(
        text=text,
        expr=expr,
        anchored=anchored,
        fsm=fsm,
        event_symbols=frozenset(declared_symbols),
        masks=masks,
    )
