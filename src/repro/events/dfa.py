"""Subset construction: NFA → deterministic extended FSM.

A DFA state is an ε-closed set of NFA states.  It is an *accept* state if
it contains the NFA accept, and a *mask state* pending mask *m* if it
contains an NFA state carrying the obligation to consume ``True_m`` (the
obligation tags distinguish genuine ``e & m`` continuations from pseudo-
events merely swallowed by an ``(*any)`` loop — only the former should make
the runtime evaluate predicates).
"""

from __future__ import annotations

from repro.events.fsm import Fsm, FsmState
from repro.events.nfa import Nfa


def determinize(nfa: Nfa, anchored: bool) -> Fsm:
    """Build the deterministic machine recognizing the same language."""
    start_set = nfa.eps_closure({nfa.start})
    numbering: dict[frozenset[int], int] = {start_set: 0}
    worklist: list[frozenset[int]] = [start_set]
    states: list[FsmState] = []

    # Deterministic symbol order keeps machines (and tests) stable.
    symbols = sorted(nfa.alphabet)

    while worklist:
        current = worklist.pop(0)
        statenum = numbering[current]
        transitions: dict[str, int] = {}
        for symbol in symbols:
            target = nfa.move(current, symbol)
            if not target:
                continue  # missing transition: ignored/dead per Fsm.move
            closed = nfa.eps_closure(target)
            nxt = numbering.get(closed)
            if nxt is None:
                nxt = numbering[closed] = len(numbering)
                worklist.append(closed)
            transitions[symbol] = nxt
        masks = tuple(
            sorted({nfa.obligations[s] for s in current if s in nfa.obligations})
        )
        states.append(
            FsmState(
                statenum=statenum,
                accept=nfa.accept in current,
                masks=masks,
                transitions=transitions,
            )
        )

    states.sort(key=lambda s: s.statenum)
    return Fsm(states, start=0, alphabet=nfa.alphabet, anchored=anchored)
