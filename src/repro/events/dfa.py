"""Subset construction: NFA → deterministic extended FSM.

A DFA state is an ε-closed set of NFA states.  It is an *accept* state if
it contains the NFA accept, and a *mask state* pending mask *m* if it
contains an NFA state carrying the obligation to consume ``True_m`` (the
obligation tags distinguish genuine ``e & m`` continuations from pseudo-
events merely swallowed by an ``(*any)`` loop — only the former should make
the runtime evaluate predicates).
"""

from __future__ import annotations

from repro.events.fsm import DEAD, Fsm, FsmState
from repro.events.nfa import Nfa


def determinize(nfa: Nfa, anchored: bool) -> Fsm:
    """Build the deterministic machine recognizing the same language."""
    start_set = nfa.eps_closure({nfa.start})
    numbering: dict[frozenset[int], int] = {start_set: 0}
    worklist: list[frozenset[int]] = [start_set]
    states: list[FsmState] = []

    # Deterministic symbol order keeps machines (and tests) stable.
    symbols = sorted(nfa.alphabet)

    while worklist:
        current = worklist.pop(0)
        statenum = numbering[current]
        transitions: dict[str, int] = {}
        for symbol in symbols:
            target = nfa.move(current, symbol)
            if not target:
                continue  # missing transition: ignored/dead per Fsm.move
            closed = nfa.eps_closure(target)
            nxt = numbering.get(closed)
            if nxt is None:
                nxt = numbering[closed] = len(numbering)
                worklist.append(closed)
            transitions[symbol] = nxt
        masks = tuple(
            sorted({nfa.obligations[s] for s in current if s in nfa.obligations})
        )
        states.append(
            FsmState(
                statenum=statenum,
                accept=nfa.accept in current,
                masks=masks,
                transitions=transitions,
            )
        )

    states.sort(key=lambda s: s.statenum)
    return Fsm(states, start=0, alphabet=nfa.alphabet, anchored=anchored)


# ---------------------------------------------------------------------------
# Product construction (used by the static analyzer's inclusion check)
# ---------------------------------------------------------------------------


def resolved_target(fsm: Fsm, statenum: int, symbol: str) -> int:
    """Total transition function: where *symbol* sends *statenum*.

    The same resolution :meth:`Fsm.move` applies at run time — a missing
    alphabet transition is dead for anchored machines and "stay" for
    unanchored ones; out-of-alphabet symbols are always ignored — but as a
    pure function over state numbers (``DEAD`` is an explicit sink).
    """
    if statenum == DEAD:
        return DEAD
    nxt = fsm.states[statenum].transitions.get(symbol)
    if nxt is not None:
        return nxt
    if fsm.anchored and symbol in fsm.alphabet:
        return DEAD
    return statenum


def _accepts(fsm: Fsm, statenum: int) -> bool:
    return statenum != DEAD and fsm.states[statenum].accept


def find_inclusion_witness(a: Fsm, b: Fsm) -> list[str] | None:
    """A word accepted by *a* but not *b*, or ``None`` if L(a) ⊆ L(b).

    Breadth-first search over the product automaton of the two completed
    machines, over the union of their alphabets (mask pseudo-events
    included: a shared mask name means a shared predicate, while a pseudo-
    event the other machine has never heard of is ignored by it, exactly as
    at run time).  The returned witness is shortest-first, which makes the
    diagnostics readable.
    """
    alphabet = sorted(a.alphabet | b.alphabet)
    start = (a.start, b.start)
    if _accepts(a, a.start) and not _accepts(b, b.start):
        return []
    parents: dict[tuple[int, int], tuple[tuple[int, int], str]] = {}
    seen = {start}
    frontier = [start]
    while frontier:
        next_frontier = []
        for pair in frontier:
            sa, sb = pair
            for symbol in alphabet:
                succ = (resolved_target(a, sa, symbol), resolved_target(b, sb, symbol))
                if succ in seen:
                    continue
                seen.add(succ)
                parents[succ] = (pair, symbol)
                if _accepts(a, succ[0]) and not _accepts(b, succ[1]):
                    word = [symbol]
                    back = pair
                    while back != start:
                        back, sym = parents[back]
                        word.append(sym)
                    word.reverse()
                    return word
                next_frontier.append(succ)
        frontier = next_frontier
    return None


def language_included(a: Fsm, b: Fsm) -> bool:
    """Whether every event sequence accepted by *a* is accepted by *b*."""
    return find_inclusion_witness(a, b) is None
