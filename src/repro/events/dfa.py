"""Subset construction: NFA → deterministic extended FSM.

A DFA state is an ε-closed set of NFA states.  It is an *accept* state if
it contains the NFA accept, and a *mask state* pending mask *m* if it
contains an NFA state carrying the obligation to consume ``True_m`` (the
obligation tags distinguish genuine ``e & m`` continuations from pseudo-
events merely swallowed by an ``(*any)`` loop — only the former should make
the runtime evaluate predicates).

Mask pseudo-events are not stream events: feeding ``True_m``/``False_m``
resolves mask *m* and must leave every NFA configuration that has no stake
in *m* untouched.  A configuration has a stake when its ε-closure carries
an explicit transition on either pseudo-event of that mask (an ``e & m``
obligation, or an ``(*any)``-with-pseudo loop) — the closure matters
because an ε-only junction whose sole successor is an obligation state
must die with it, not resurrect it.  All other configurations — say, the
middle of a parallel ``Seq`` branch — are carried through unchanged.
"""

from __future__ import annotations

from repro.events.fsm import DEAD, FALSE_PREFIX, TRUE_PREFIX, Fsm, FsmState
from repro.events.nfa import Nfa


def _staked_masks(nfa: Nfa) -> dict[int, frozenset[str]]:
    """For each NFA state, the masks its ε-closure can explicitly consume.

    A state is *staked* in mask *m* when some state in its ε-closure has
    an explicit transition on ``true:m`` or ``false:m``; resolving *m*
    then determines that configuration's fate, so the subset construction
    must not carry it through a pseudo-event unchanged.
    """
    staked: dict[int, frozenset[str]] = {}
    for state in range(nfa.state_count):
        masks: set[str] = set()
        for member in nfa.eps_closure({state}):
            for symbol in nfa.transitions.get(member, {}):
                if symbol.startswith(TRUE_PREFIX):
                    masks.add(symbol[len(TRUE_PREFIX) :])
                elif symbol.startswith(FALSE_PREFIX):
                    masks.add(symbol[len(FALSE_PREFIX) :])
        staked[state] = frozenset(masks)
    return staked


def determinize(nfa: Nfa, anchored: bool) -> Fsm:
    """Build the deterministic machine recognizing the same language."""
    start_set = nfa.eps_closure({nfa.start})
    numbering: dict[frozenset[int], int] = {start_set: 0}
    worklist: list[frozenset[int]] = [start_set]
    states: list[FsmState] = []
    staked = _staked_masks(nfa)

    # Deterministic symbol order keeps machines (and tests) stable.
    symbols = sorted(nfa.alphabet)

    while worklist:
        current = worklist.pop(0)
        statenum = numbering[current]
        transitions: dict[str, int] = {}
        for symbol in symbols:
            target = nfa.move(current, symbol)
            if _is_pseudo(symbol):
                # Resolving one mask must not kill configurations that are
                # not waiting on it (they would otherwise be lost because
                # they have no explicit pseudo edge to follow).
                mask = symbol.split(":", 1)[1]
                for nfa_state in current:
                    if mask not in staked[nfa_state]:
                        target.add(nfa_state)
            if not target:
                continue  # missing transition: ignored/dead per Fsm.move
            closed = nfa.eps_closure(target)
            nxt = numbering.get(closed)
            if nxt is None:
                nxt = numbering[closed] = len(numbering)
                worklist.append(closed)
            transitions[symbol] = nxt
        masks = tuple(
            sorted({nfa.obligations[s] for s in current if s in nfa.obligations})
        )
        states.append(
            FsmState(
                statenum=statenum,
                accept=nfa.accept in current,
                masks=masks,
                transitions=transitions,
            )
        )

    states.sort(key=lambda s: s.statenum)
    return Fsm(states, start=0, alphabet=nfa.alphabet, anchored=anchored)


# ---------------------------------------------------------------------------
# Product construction (used by the static analyzer's inclusion check)
# ---------------------------------------------------------------------------


def resolved_target(fsm: Fsm, statenum: int, symbol: str) -> int:
    """Total transition function: where *symbol* sends *statenum*.

    The same resolution :meth:`Fsm.move` applies at run time — a missing
    alphabet transition is dead for anchored machines and "stay" for
    unanchored ones; out-of-alphabet symbols are always ignored — but as a
    pure function over state numbers (``DEAD`` is an explicit sink).
    """
    if statenum == DEAD:
        return DEAD
    nxt = fsm.states[statenum].transitions.get(symbol)
    if nxt is not None:
        return nxt
    if fsm.anchored and symbol in fsm.alphabet:
        return DEAD
    return statenum


def _accepts(fsm: Fsm, statenum: int) -> bool:
    return statenum != DEAD and fsm.states[statenum].accept


def find_inclusion_witness(a: Fsm, b: Fsm) -> list[str] | None:
    """A word accepted by *a* but not *b*, or ``None`` if L(a) ⊆ L(b).

    Breadth-first search over the product automaton of the two completed
    machines, over the union of their alphabets (mask pseudo-events
    included: a shared mask name means a shared predicate, while a pseudo-
    event the other machine has never heard of is ignored by it, exactly as
    at run time).  The returned witness is shortest-first, which makes the
    diagnostics readable.
    """
    alphabet = sorted(a.alphabet | b.alphabet)
    start = (a.start, b.start)
    if _accepts(a, a.start) and not _accepts(b, b.start):
        return []
    parents: dict[tuple[int, int], tuple[tuple[int, int], str]] = {}
    seen = {start}
    frontier = [start]
    while frontier:
        next_frontier = []
        for pair in frontier:
            sa, sb = pair
            for symbol in alphabet:
                succ = (resolved_target(a, sa, symbol), resolved_target(b, sb, symbol))
                if succ in seen:
                    continue
                seen.add(succ)
                parents[succ] = (pair, symbol)
                if _accepts(a, succ[0]) and not _accepts(b, succ[1]):
                    word = [symbol]
                    back = pair
                    while back != start:
                        back, sym = parents[back]
                        word.append(sym)
                    word.reverse()
                    return word
                next_frontier.append(succ)
        frontier = next_frontier
    return None


def language_included(a: Fsm, b: Fsm) -> bool:
    """Whether every event sequence accepted by *a* is accepted by *b*."""
    return find_inclusion_witness(a, b) is None


def _is_pseudo(symbol: str) -> bool:
    return symbol.startswith("true:") or symbol.startswith("false:")


def acceptance_avoiding(fsm: Fsm, avoid: frozenset[str] | set[str]) -> bool:
    """Whether *fsm* accepts some sequence that never consumes a symbol
    in *avoid*.

    The termination pass uses this for guardedness: if no acceptance
    avoids every ``true:mask`` pseudo-event, the trigger cannot fire
    without at least one mask predicate holding — a cascade cycle
    through it is predicate-guarded, not irrefutable.
    """
    if _accepts(fsm, fsm.start):
        return True
    symbols = sorted(fsm.alphabet - set(avoid))
    seen = {fsm.start}
    frontier = [fsm.start]
    while frontier:
        cur = frontier.pop()
        for symbol in symbols:
            nxt = resolved_target(fsm, cur, symbol)
            if nxt == DEAD or nxt in seen:
                continue
            if _accepts(fsm, nxt):
                return True
            seen.add(nxt)
            frontier.append(nxt)
    return False


def acceptance_through(fsm: Fsm, symbol: str) -> bool:
    """Whether some accepted run of *fsm* explicitly consumes *symbol*.

    Used to prune cascade edges: a posting of *symbol* can only feed a
    downstream trigger if that trigger's machine can consume it on the
    way to an accept state.  "Explicitly" matches the runtime, where a
    firing requires the posted event to be consumed (not ignored or
    swallowed by an anchored reset).
    """
    if not any(symbol in state.transitions for state in fsm.states):
        return False
    start = (fsm.start, False)
    seen = {start}
    frontier = [start]
    symbols = sorted(fsm.alphabet)
    while frontier:
        cur, consumed = frontier.pop()
        for sym in symbols:
            explicit = sym in fsm.states[cur].transitions
            nxt = resolved_target(fsm, cur, sym)
            if nxt == DEAD:
                continue
            nflag = consumed or (explicit and sym == symbol)
            key = (nxt, nflag)
            if key in seen:
                continue
            if nflag and _accepts(fsm, nxt):
                return True
            seen.add(key)
            frontier.append(key)
    return False


def firing_symbols(fsm: Fsm) -> frozenset[str]:
    """The non-pseudo symbols whose consumption can complete a detection.

    A symbol fires if some reachable state has an explicit transition on
    it whose target reaches an accept state through pseudo-events alone
    (mask evaluation happens in the same quiesce pass as the consuming
    event, so the firing is attributed to that event).  Two triggers with
    disjoint firing symbols can never fire on the same posting, which the
    confluence pass uses to skip pairs that share no coupling point.
    """
    reachable = {fsm.start}
    frontier = [fsm.start]
    while frontier:
        cur = frontier.pop()
        for target in fsm.states[cur].transitions.values():
            if target != DEAD and target not in reachable:
                reachable.add(target)
                frontier.append(target)
    result: set[str] = set()
    for statenum in reachable:
        for symbol, target in fsm.states[statenum].transitions.items():
            if _is_pseudo(symbol) or symbol in result or target == DEAD:
                continue
            if _pseudo_closure_accepts(fsm, target):
                result.add(symbol)
    return frozenset(result)


def _pseudo_closure_accepts(fsm: Fsm, statenum: int) -> bool:
    seen: set[int] = set()
    frontier = [statenum]
    while frontier:
        cur = frontier.pop()
        if cur == DEAD or cur in seen:
            continue
        seen.add(cur)
        if _accepts(fsm, cur):
            return True
        for symbol, target in fsm.states[cur].transitions.items():
            if _is_pseudo(symbol):
                frontier.append(target)
    return False


def transition_table(fsm) -> list[dict]:
    """Export a machine's transition structure as plain dictionaries.

    Works on both the symbolic :class:`Fsm` and the integer-keyed run-time
    :class:`repro.core.trigger_def.IntFsm` (both expose ``states`` with
    ``statenum``/``accept``/``masks`` and a transition mapping or sparse
    list).  One dict per state::

        {"state": 0, "accept": False, "masks": [], "transitions": {sym: 1}}

    Consumers: the ODE402 size/density judgment of the compilability pass
    (:mod:`repro.analysis.compilable`), dump tooling, and tests that want
    to assert on machine shape without reaching into state internals.
    """
    table = []
    for state in fsm.states:
        transitions = getattr(state, "transitions", None)
        if transitions is None:  # IntState: sparse (eventnum, newstate) list
            transitions = {t.eventnum: t.newstate for t in state.transfunc}
        table.append(
            {
                "state": state.statenum,
                "accept": bool(state.accept),
                "masks": list(state.masks),
                "transitions": dict(sorted(transitions.items(), key=str)),
            }
        )
    return table
