"""The extended finite state machine — compiled form of an event expression.

This is the paper's Section 5.4.3 structure, symbol-keyed: each state has a
number, an accept flag, the (ordered) masks it must evaluate, and a sparse
transition table.  "Any event which does not appear in a state's Transition
list is ignored" (Section 5.4.3) — for *unanchored* machines that never
happens for alphabet symbols (the implicit ``(*any)`` prefix makes the DFA
complete), and out-of-alphabet events (e.g. derived-class events posted to
a base-class trigger) are ignored by construction.  *Anchored* machines
(``^``) treat a missing alphabet transition as the dead state: the match
window started at activation and has been missed for good.

Mask states drive the ``True``/``False`` pseudo-event protocol of
Section 5.1.2: :meth:`Fsm.advance` evaluates pending masks and feeds the
pseudo-events back into the machine until it quiesces, then reports whether
an accept state was reached.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

from repro.errors import EventError, FSMError

TRUE_PREFIX = "true:"
FALSE_PREFIX = "false:"

#: Sentinel state number for the dead state of anchored machines.
DEAD = -1

#: Safety valve for pathological mask cascades (e.g. ``*(any & m)`` with a
#: constant mask); the paper notes "potentially, multiple mask events must
#: be posted before the system quiesces" — we bound "multiple".
MAX_PSEUDO_STEPS = 64


@dataclasses.dataclass(frozen=True)
class EventDecl:
    """A declared basic event: ``after Buy``, ``before PayBill``, ``BigBuy``.

    Transaction events are declared as ``before tcomplete`` /
    ``before tabort`` (kind "before", reserved names).
    """

    kind: str
    name: str

    TX_NAMES = ("tcomplete", "tabort")

    def __post_init__(self) -> None:
        if self.kind not in ("before", "after", "user"):
            raise EventError(f"bad declared-event kind {self.kind!r}")
        if self.name in self.TX_NAMES and self.kind != "before":
            raise EventError(
                f"transaction event {self.name!r} only exists as 'before' "
                "(the paper dropped after-variants; Section 6)"
            )

    @property
    def symbol(self) -> str:
        return self.name if self.kind == "user" else f"{self.kind} {self.name}"

    @property
    def is_transaction_event(self) -> bool:
        return self.name in self.TX_NAMES and self.kind == "before"

    @property
    def is_method_event(self) -> bool:
        return self.kind in ("before", "after") and not self.is_transaction_event

    @classmethod
    def parse(cls, text: str) -> "EventDecl":
        """Parse a declaration like ``"after Buy"`` or ``"BigBuy"``."""
        parts = text.split()
        if len(parts) == 2 and parts[0] in ("before", "after"):
            return cls(parts[0], parts[1])
        if len(parts) == 1 and parts[0].isidentifier():
            return cls("user", parts[0])
        raise EventError(f"cannot parse event declaration {text!r}")

    def __str__(self) -> str:
        return self.symbol


@dataclasses.dataclass
class FsmState:
    """One state: number, accept flag, pending masks, sparse transitions."""

    statenum: int
    accept: bool
    masks: tuple[str, ...]
    transitions: dict[str, int]

    def describe(self) -> str:
        mask = f" *[{', '.join(self.masks)}]" if self.masks else ""
        acc = " (accept)" if self.accept else ""
        edges = ", ".join(
            f"{symbol} -> {dst}" for symbol, dst in sorted(self.transitions.items())
        )
        return f"state {self.statenum}{mask}{acc}: {edges or '<none>'}"


@dataclasses.dataclass(frozen=True)
class AdvanceResult:
    """Outcome of posting one basic event to a machine."""

    state: int
    consumed: bool
    accepted: bool
    pseudo_steps: int


class Fsm:
    """A compiled (deterministic, extended) event machine."""

    def __init__(
        self,
        states: Sequence[FsmState],
        start: int,
        alphabet: frozenset[str],
        anchored: bool,
    ):
        self.states = list(states)
        self.start = start
        self.alphabet = alphabet
        self.anchored = anchored

    # -- structure -------------------------------------------------------------

    def state(self, statenum: int) -> FsmState:
        if statenum == DEAD:
            raise FSMError("the dead state has no descriptor")
        return self.states[statenum]

    def __len__(self) -> int:
        return len(self.states)

    def transition_count(self) -> int:
        return sum(len(s.transitions) for s in self.states)

    def accept_states(self) -> list[int]:
        return [s.statenum for s in self.states if s.accept]

    def mask_states(self) -> list[int]:
        return [s.statenum for s in self.states if s.masks]

    def describe(self) -> str:
        header = (
            f"FSM: {len(self.states)} states, start={self.start}, "
            f"{'anchored' if self.anchored else 'unanchored'}, "
            f"alphabet={sorted(self.alphabet)}"
        )
        return "\n".join([header] + [s.describe() for s in self.states])

    # -- run-time semantics ------------------------------------------------------

    def move(self, statenum: int, symbol: str) -> tuple[int, bool]:
        """One raw transition; returns ``(newstate, consumed)``.

        Missing transitions: ignored for unanchored machines and for
        symbols outside the alphabet; dead for anchored machines on
        alphabet symbols.
        """
        if statenum == DEAD:
            return DEAD, False
        state = self.states[statenum]
        nxt = state.transitions.get(symbol)
        if nxt is not None:
            return nxt, True
        if self.anchored and symbol in self.alphabet:
            return DEAD, True
        return statenum, False

    def quiesce(
        self,
        statenum: int,
        evaluate_mask: Callable[[str], bool],
    ) -> tuple[int, int]:
        """Evaluate pending masks until none remain; ``(state, steps)``.

        Needed at trigger activation: an expression like ``(*a) & m`` puts
        the *start* state under a mask obligation before any event arrives.
        """
        current, steps, _ = self._quiesce_tracking(statenum, evaluate_mask)
        return current, steps

    def _quiesce_tracking(
        self,
        statenum: int,
        evaluate_mask: Callable[[str], bool],
    ) -> tuple[int, int, bool]:
        """Quiesce, also reporting whether any *visited* state accepts.

        An accept state may simultaneously carry a mask obligation for an
        overlapping next match (e.g. ``+((a & m), a)``: the accept state
        awaits *m* for the iteration the final ``a`` could restart).  The
        paper's step (c) checks whether an accept state "has been reached",
        so passing *through* one during the pseudo-event cascade must still
        fire the trigger even when a failed mask then moves the machine on.

        A mask predicate is evaluated against a single instant — no events
        intervene during the cascade — so each mask has exactly one value
        here (memoized; the rescan oracle likewise records one outcome per
        posting).  With outcomes fixed the cascade is a deterministic walk
        over finitely many states: it either reaches a mask-free state or
        revisits a state, and a revisited state is a fixpoint (a mask on a
        nullable loop, e.g. ``relative((*a) & m, b)``, restarts its own
        obligation) — re-checking cannot change anything, so quiescing
        stops there and the machine rests until the next real event.
        """
        current = statenum
        pseudo_steps = 0
        seen_accept = current != DEAD and self.states[current].accept
        outcomes: dict[str, bool] = {}
        visited = {current}
        while current != DEAD and self.states[current].masks:
            if pseudo_steps >= MAX_PSEUDO_STEPS:  # pragma: no cover - backstop
                raise FSMError(
                    f"mask cascade did not quiesce after {MAX_PSEUDO_STEPS} "
                    "pseudo-events; the expression loops on a mask"
                )
            mask = self.states[current].masks[0]
            outcome = outcomes.get(mask)
            if outcome is None:
                outcome = outcomes[mask] = bool(evaluate_mask(mask))
            pseudo = (TRUE_PREFIX if outcome else FALSE_PREFIX) + mask
            nxt, pseudo_consumed = self.move(current, pseudo)
            pseudo_steps += 1
            if not pseudo_consumed:
                break
            current = nxt
            seen_accept = seen_accept or (
                current != DEAD and self.states[current].accept
            )
            if current in visited:
                break  # pseudo-cycle: this instant's fixpoint
            visited.add(current)
        return current, pseudo_steps, seen_accept

    def advance(
        self,
        statenum: int,
        symbol: str,
        evaluate_mask: Callable[[str], bool],
    ) -> AdvanceResult:
        """Post one basic event: move, quiesce mask pseudo-events, report.

        *evaluate_mask* is called with a mask name and must return a bool;
        the machine feeds the corresponding ``True``/``False`` pseudo-event
        back in, repeating while the current state is a mask state
        (Section 5.4.5 step (b)).
        """
        current, consumed = self.move(statenum, symbol)
        pseudo_steps = 0
        seen_accept = False
        if consumed:
            current, pseudo_steps, seen_accept = self._quiesce_tracking(
                current, evaluate_mask
            )
        return AdvanceResult(current, consumed, consumed and seen_accept, pseudo_steps)
