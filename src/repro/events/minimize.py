"""Moore-style DFA minimization for extended FSMs.

Partition refinement over ``(accept, masks)``-labelled states: two states
may merge only if they agree on acceptance *and* on the masks they would
evaluate (merging a mask state with a plain state would change run-time
behaviour, not just the language).  Missing transitions are modelled as a
virtual dead state so partial (anchored) machines minimize correctly; the
dead state is dropped again on rebuild.

This is the ablation axis of experiment E11 — the paper's construction
cites the textbook pipeline [16] without saying whether Ode minimized, so
we expose it as a switch and measure what it buys.
"""

from __future__ import annotations

from repro.events.fsm import DEAD, Fsm, FsmState


def reachable_states(fsm: Fsm) -> set[int]:
    """State numbers reachable from the start via explicit transitions.

    Implicit moves (unanchored "stay", anchored "dead") never enter a new
    state, so explicit edges are the whole reachability relation.  Subset
    construction only ever creates reachable states; this helper lets the
    analyzer *prove* that for machines of any provenance.
    """
    seen = {fsm.start}
    frontier = [fsm.start]
    while frontier:
        current = frontier.pop()
        for dst in fsm.states[current].transitions.values():
            if dst != DEAD and dst not in seen:
                seen.add(dst)
                frontier.append(dst)
    return seen


def coreachable_states(fsm: Fsm) -> set[int]:
    """State numbers from which some accept state is reachable.

    A state outside this set is a *trap*: the trigger sitting there can
    never fire again (though for unanchored machines such states cannot be
    produced by compilation — the implicit ``(*any)`` prefix keeps a live
    restart component in every subset state).
    """
    inverse: dict[int, set[int]] = {}
    for state in fsm.states:
        for dst in state.transitions.values():
            if dst != DEAD:
                inverse.setdefault(dst, set()).add(state.statenum)
    seen = {s.statenum for s in fsm.states if s.accept}
    frontier = list(seen)
    while frontier:
        current = frontier.pop()
        for src in inverse.get(current, ()):
            if src not in seen:
                seen.add(src)
                frontier.append(src)
    return seen


def is_empty(fsm: Fsm) -> bool:
    """Whether the machine accepts no sequence at all (L(fsm) = ∅)."""
    return fsm.start not in coreachable_states(fsm)


def prune_irrelevant_masks(fsm: Fsm) -> Fsm:
    """Drop mask obligations whose outcome cannot matter.

    If a state's ``true:m`` and ``false:m`` edges lead to the same place,
    evaluating *m* there is pure overhead; removing the obligation both
    skips the predicate call at run time and lets minimization merge the
    state with its non-mask twin — this is what reduces the AutoRaiseLimit
    machine to the exact four states of paper Figure 1.
    """
    from repro.events.fsm import FALSE_PREFIX, TRUE_PREFIX

    new_states = []
    changed = False
    for state in fsm.states:
        kept = []
        for mask in state.masks:
            true_dst = state.transitions.get(TRUE_PREFIX + mask)
            false_dst = state.transitions.get(FALSE_PREFIX + mask)
            # Resolve "missing" per Fsm.move: dead if anchored, stay if not.
            def resolved(dst):
                if dst is not None:
                    return dst
                return DEAD if fsm.anchored else state.statenum

            if resolved(true_dst) == resolved(false_dst):
                changed = True
            else:
                kept.append(mask)
        new_states.append(
            FsmState(state.statenum, state.accept, tuple(kept), dict(state.transitions))
        )
    if not changed:
        return fsm
    return Fsm(new_states, fsm.start, fsm.alphabet, fsm.anchored)


def minimize_fsm(fsm: Fsm) -> Fsm:
    """Return an equivalent machine with the minimal number of states."""
    n = len(fsm.states)
    symbols = sorted(fsm.alphabet)

    # Virtual dead state at index n: not accepting, no masks, self-loops.
    def target(statenum: int, symbol: str) -> int:
        if statenum == n:
            return n
        nxt = fsm.states[statenum].transitions.get(symbol)
        if nxt is not None:
            return nxt
        # Fsm.move semantics: anchored -> dead; unanchored -> self (ignore).
        return n if fsm.anchored else statenum

    # Initial partition by observable behaviour.
    def label(statenum: int):
        if statenum == n:
            return (False, ())
        state = fsm.states[statenum]
        return (state.accept, state.masks)

    classes: dict[int, int] = {}
    by_label: dict[tuple, int] = {}
    for statenum in list(range(n)) + [n]:
        key = label(statenum)
        if key not in by_label:
            by_label[key] = len(by_label)
        classes[statenum] = by_label[key]

    # Refine until stable.
    while True:
        signatures: dict[tuple, int] = {}
        new_classes: dict[int, int] = {}
        for statenum in list(range(n)) + [n]:
            signature = (
                classes[statenum],
                tuple(classes[target(statenum, symbol)] for symbol in symbols),
            )
            if signature not in signatures:
                signatures[signature] = len(signatures)
            new_classes[statenum] = signatures[signature]
        if len(signatures) == len(set(classes.values())):
            break
        classes = new_classes

    dead_class = classes[n]
    # Renumber surviving classes with the start state's class first.
    order: list[int] = []
    seen: set[int] = set()
    for statenum in [fsm.start] + list(range(n)):
        cls = classes[statenum]
        if cls != dead_class and cls not in seen:
            seen.add(cls)
            order.append(cls)
    renumber = {cls: idx for idx, cls in enumerate(order)}

    representatives: dict[int, int] = {}
    for statenum in range(n):
        representatives.setdefault(classes[statenum], statenum)

    new_states: list[FsmState] = []
    for cls in order:
        rep = fsm.states[representatives[cls]]
        transitions: dict[str, int] = {}
        for symbol in symbols:
            dst = target(rep.statenum, symbol)
            dst_class = classes[dst]
            if dst_class == dead_class:
                continue  # dead edges stay implicit (Fsm.move synthesizes them)
            # Skip pure self-ignores for unanchored machines: Fsm.move
            # treats a missing edge as "stay", so an explicit self-loop on
            # an ignored symbol is redundant — but only if the original had
            # no explicit edge either (a real self-loop must be kept).
            if (
                not fsm.anchored
                and dst_class == cls
                and rep.transitions.get(symbol) is None
            ):
                continue
            transitions[symbol] = renumber[dst_class]
        new_states.append(
            FsmState(
                statenum=renumber[cls],
                accept=rep.accept,
                masks=rep.masks,
                transitions=transitions,
            )
        )

    return Fsm(
        new_states,
        start=renumber[classes[fsm.start]],
        alphabet=fsm.alphabet,
        anchored=fsm.anchored,
    )
