"""Thompson construction: desugared event expressions → NFA.

States are integers.  Transitions are symbol-labelled (canonical event
symbols, including the mask pseudo-events) plus ε-edges.  ``any`` nodes
expand to one edge per alphabet symbol at construction time, so the NFA is
over a concrete, closed alphabet.

States that consume a ``True`` pseudo-event *as a mask obligation* (i.e.
produced by desugaring ``e & m``, not by an ``any`` expansion) are recorded
in ``obligations`` — the subset construction uses this to decide which DFA
states are *mask states* that must evaluate predicates (Section 5.1.2).
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict

from repro.errors import EventError
from repro.events.ast import (
    AnyEvent,
    BasicEvent,
    EventExpr,
    ExtAnyEvent,
    Seq,
    Star,
    Union,
)
from repro.events.fsm import FALSE_PREFIX, TRUE_PREFIX


@dataclasses.dataclass
class Nfa:
    """A Thompson NFA over a closed symbol alphabet."""

    start: int
    accept: int
    transitions: dict[int, dict[str, set[int]]]
    epsilon: dict[int, set[int]]
    alphabet: frozenset[str]
    #: state -> mask name: the state carries an obligation to evaluate the
    #: mask and consume its pseudo-event.
    obligations: dict[int, str]
    state_count: int

    def eps_closure(self, states: set[int]) -> frozenset[int]:
        """ε-closure of a state set."""
        stack = list(states)
        closure = set(states)
        while stack:
            state = stack.pop()
            for nxt in self.epsilon.get(state, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def move(self, states: frozenset[int], symbol: str) -> set[int]:
        """States reachable from *states* on *symbol* (before ε-closure)."""
        result: set[int] = set()
        for state in states:
            result |= self.transitions.get(state, {}).get(symbol, set())
        return result


class _Builder:
    def __init__(self, alphabet: frozenset[str]):
        self.alphabet = alphabet
        self.transitions: dict[int, dict[str, set[int]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self.epsilon: dict[int, set[int]] = defaultdict(set)
        self.obligations: dict[int, str] = {}
        self._next = 0

    def new_state(self) -> int:
        state = self._next
        self._next += 1
        return state

    def edge(self, src: int, symbol: str, dst: int) -> None:
        self.transitions[src][symbol].add(dst)

    def eps(self, src: int, dst: int) -> None:
        self.epsilon[src].add(dst)

    # Returns (start, accept) fragment for each node kind.

    def build(self, node: EventExpr) -> tuple[int, int]:
        if isinstance(node, BasicEvent):
            return self._basic(node)
        if isinstance(node, ExtAnyEvent):
            return self._any(include_pseudo=True)
        if isinstance(node, AnyEvent):
            return self._any(include_pseudo=False)
        if isinstance(node, Seq):
            return self._seq(node)
        if isinstance(node, Union):
            return self._union(node)
        if isinstance(node, Star):
            return self._star(node)
        raise EventError(
            f"node {type(node).__name__} survived desugaring; "
            "call desugar() before building the NFA"
        )

    def _basic(self, node: BasicEvent) -> tuple[int, int]:
        symbol = node.symbol
        if symbol not in self.alphabet:
            raise EventError(f"symbol {symbol!r} is not in the alphabet")
        start, accept = self.new_state(), self.new_state()
        self.edge(start, symbol, accept)
        if node.is_pseudo() and symbol.startswith(TRUE_PREFIX):
            # The consuming state awaits this mask's outcome.
            self.obligations[start] = symbol[len(TRUE_PREFIX) :]
        return start, accept

    def _any(self, include_pseudo: bool) -> tuple[int, int]:
        start, accept = self.new_state(), self.new_state()
        for symbol in self.alphabet:
            if not include_pseudo and symbol.startswith((TRUE_PREFIX, FALSE_PREFIX)):
                continue
            self.edge(start, symbol, accept)
        return start, accept

    def _seq(self, node: Seq) -> tuple[int, int]:
        start, accept = None, None
        for part in node.parts:
            frag_start, frag_accept = self.build(part)
            if start is None:
                start = frag_start
            else:
                self.eps(accept, frag_start)
            accept = frag_accept
        assert start is not None and accept is not None
        return start, accept

    def _union(self, node: Union) -> tuple[int, int]:
        start, accept = self.new_state(), self.new_state()
        for part in node.parts:
            frag_start, frag_accept = self.build(part)
            self.eps(start, frag_start)
            self.eps(frag_accept, accept)
        return start, accept

    def _star(self, node: Star) -> tuple[int, int]:
        start, accept = self.new_state(), self.new_state()
        frag_start, frag_accept = self.build(node.child)
        self.eps(start, frag_start)
        self.eps(start, accept)
        self.eps(frag_accept, frag_start)
        self.eps(frag_accept, accept)
        return start, accept


def build_nfa(expr: EventExpr, alphabet: frozenset[str]) -> Nfa:
    """Thompson-construct the NFA of a *desugared* expression."""
    builder = _Builder(alphabet)
    start, accept = builder.build(expr)
    return Nfa(
        start=start,
        accept=accept,
        transitions={s: dict(t) for s, t in builder.transitions.items()},
        epsilon=dict(builder.epsilon),
        alphabet=alphabet,
        obligations=dict(builder.obligations),
        state_count=builder._next,
    )
