"""Recursive-descent parser for the textual event language.

Grammar (loosest-binding first)::

    top     :=  '^'? seq
    seq     :=  union (',' union)*
    union   :=  masked ('||' masked)*
    masked  :=  prefix ('&' mask_ref)*
    prefix  :=  '*' prefix  |  '+' prefix  |  primary
    primary :=  '(' seq ')'
            |   'relative' '(' seq ',' seq ')'
            |   'any'
            |   ('before' | 'after') IDENT
            |   IDENT                       -- user-defined event
    mask_ref := IDENT | '(' IDENT ')'

``^`` is only legal at the very start (search anchored at the activation
point, paper Section 5.1.1).  Returns ``(expr, anchored)``.
"""

from __future__ import annotations

import re

from repro.errors import EventParseError
from repro.events.ast import (
    AnyEvent,
    BasicEvent,
    EventExpr,
    Masked,
    Plus,
    Relative,
    Seq,
    Star,
    Union,
)

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op>\|\||[(),&*+^]))"
)

_KEYWORDS = frozenset({"before", "after", "any", "relative"})


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.tokens: list[tuple[str, int]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                stripped = text[pos:].lstrip()
                if not stripped:
                    break
                raise EventParseError("unexpected character", text, pos)
            token = match.group("ident") or match.group("op")
            self.tokens.append((token, match.start("ident" if match.group("ident") else "op")))
            pos = match.end()
        self.index = 0

    def peek(self) -> str | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index][0]
        return None

    def pos(self) -> int:
        if self.index < len(self.tokens):
            return self.tokens[self.index][1]
        return len(self.text)

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise EventParseError("unexpected end of expression", self.text, self.pos())
        self.index += 1
        return token

    def expect(self, token: str) -> None:
        got = self.peek()
        if got != token:
            raise EventParseError(f"expected {token!r}, got {got!r}", self.text, self.pos())
        self.index += 1

    def done(self) -> bool:
        return self.index >= len(self.tokens)


def parse(text: str) -> tuple[EventExpr, bool]:
    """Parse *text*, returning ``(expression, anchored)``."""
    tokens = _Tokens(text)
    anchored = False
    if tokens.peek() == "^":
        tokens.next()
        anchored = True
    expr = _parse_seq(tokens)
    if not tokens.done():
        raise EventParseError(
            f"trailing input starting at {tokens.peek()!r}", text, tokens.pos()
        )
    return expr, anchored


def _parse_seq(tokens: _Tokens) -> EventExpr:
    parts = [_parse_union(tokens)]
    while tokens.peek() == ",":
        tokens.next()
        parts.append(_parse_union(tokens))
    return parts[0] if len(parts) == 1 else Seq(parts)


def _parse_union(tokens: _Tokens) -> EventExpr:
    parts = [_parse_masked(tokens)]
    while tokens.peek() == "||":
        tokens.next()
        parts.append(_parse_masked(tokens))
    return parts[0] if len(parts) == 1 else Union(parts)


def _parse_masked(tokens: _Tokens) -> EventExpr:
    expr = _parse_prefix(tokens)
    while tokens.peek() == "&":
        tokens.next()
        expr = Masked(expr, _parse_mask_ref(tokens))
    return expr


def _parse_mask_ref(tokens: _Tokens) -> str:
    if tokens.peek() == "(":
        tokens.next()
        name = _parse_mask_name(tokens)
        tokens.expect(")")
        return name
    return _parse_mask_name(tokens)


def _parse_mask_name(tokens: _Tokens) -> str:
    token = tokens.next()
    if not token.isidentifier() or token in _KEYWORDS:
        raise EventParseError(f"expected a mask name, got {token!r}", tokens.text, tokens.pos())
    # Allow C++-style call syntax: MoreCred()
    if tokens.peek() == "(":
        tokens.next()
        tokens.expect(")")
    return token


def _parse_prefix(tokens: _Tokens) -> EventExpr:
    token = tokens.peek()
    if token == "*":
        tokens.next()
        return Star(_parse_prefix(tokens))
    if token == "+":
        tokens.next()
        return Plus(_parse_prefix(tokens))
    return _parse_primary(tokens)


def _parse_primary(tokens: _Tokens) -> EventExpr:
    token = tokens.peek()
    if token is None:
        raise EventParseError("unexpected end of expression", tokens.text, tokens.pos())
    if token == "(":
        tokens.next()
        expr = _parse_seq(tokens)
        tokens.expect(")")
        return expr
    if token == "relative":
        # The arguments parse at union level: `,` separates the two
        # arguments, so a sequence argument must be parenthesized —
        # `relative((a, b), c)` — matching the paper's own usage.
        tokens.next()
        tokens.expect("(")
        first = _parse_union(tokens)
        tokens.expect(",")
        second = _parse_union(tokens)
        tokens.expect(")")
        return Relative(first, second)
    if token == "any":
        tokens.next()
        return AnyEvent()
    if token in ("before", "after"):
        tokens.next()
        name = tokens.next()
        if not name.isidentifier() or name in _KEYWORDS:
            raise EventParseError(
                f"expected an event name after {token!r}, got {name!r}",
                tokens.text,
                tokens.pos(),
            )
        return BasicEvent(token, name)
    if token.isidentifier():
        tokens.next()
        return BasicEvent("user", token)
    raise EventParseError(f"unexpected token {token!r}", tokens.text, tokens.pos())
