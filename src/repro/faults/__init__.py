"""Deterministic fault injection for the storage stack.

`repro.faults` provides:

* :class:`~repro.faults.injector.FaultInjector` — named failpoints threaded
  through ``PagedFile``, ``WriteAheadLog``, ``BufferPool`` and both storage
  managers.  A fault plan arms crashes, torn writes, bit flips, transient
  ``OSError`` hiccups and permanent media failures at specific hit counts.
* :mod:`repro.faults.harness` — the crash-matrix explorer: run a workload
  in recording mode to discover every failpoint hit, then re-run it once
  per hit with a crash armed there, reopen, recover, and check invariants.

The injector is dependency-free (it imports only :mod:`repro.errors`), so
the storage layer can import it without cycles.  The harness imports the
full database stack and must only be imported by tests/tools.
"""

from repro.faults.injector import (
    NULL_INJECTOR,
    Fault,
    FaultInjector,
    FaultKind,
    RetryPolicy,
    with_retry,
)

__all__ = [
    "Fault",
    "FaultInjector",
    "FaultKind",
    "NULL_INJECTOR",
    "RetryPolicy",
    "with_retry",
]
