"""Deterministic fault injection for the storage stack.

`repro.faults` provides:

* :class:`~repro.faults.injector.FaultInjector` — named failpoints threaded
  through ``PagedFile``, ``WriteAheadLog``, ``BufferPool`` and both storage
  managers.  A fault plan arms crashes, torn writes, bit flips, transient
  ``OSError`` hiccups and permanent media failures at specific hit counts.
* :mod:`repro.faults.harness` — the crash-matrix explorer: run a workload
  in recording mode to discover every failpoint hit, then re-run it once
  per hit with a crash armed there, reopen, recover, and check invariants.
* :mod:`repro.faults.concurrent` — the same discipline against the
  multi-session engine: N interleaved sessions, lock-manager poisoning on
  crash (waiters wake, never hang), a per-session oracle.
* :mod:`repro.faults.retry` — the unified retry classifier: deadlocks,
  lock timeouts, and transient I/O share one jittered-backoff policy with
  per-class budgets (consumed by :meth:`repro.sessions.session.Session.run`).

The injector and retry classifier are dependency-light (they import only
:mod:`repro.errors`), so the storage and session layers can import them
without cycles.  The harnesses import the full database stack and must
only be imported by tests/tools.
"""

from repro.faults.injector import (
    NULL_INJECTOR,
    Fault,
    FaultInjector,
    FaultKind,
    RetryPolicy,
    with_retry,
)
from repro.faults.retry import (
    DEFAULT_UNIFIED_RETRY,
    RetryClass,
    UnifiedRetryPolicy,
    classify,
)

__all__ = [
    "DEFAULT_UNIFIED_RETRY",
    "Fault",
    "FaultInjector",
    "FaultKind",
    "NULL_INJECTOR",
    "RetryClass",
    "RetryPolicy",
    "UnifiedRetryPolicy",
    "classify",
    "with_retry",
]
