"""The concurrent crash matrix: N sessions, crash at every failpoint hit.

The serial matrix (:mod:`repro.faults.harness`) interleaves nothing; this
module re-runs its record/explore discipline against the multi-session
engine driving :mod:`repro.workloads.chaos`:

1. **Record** — one fault-free run under a :class:`~repro.sessions.
   scheduler.CooperativeScheduler` captures the failpoint trace.  The
   scheduler is deterministic, so the trace (including every
   deadlock-retry the contention produced) replays exactly.
2. **Explore** — per selected hit, a fresh run crashes at that hit.  The
   session that hits the crash **poisons the lock manager** before it
   dies, so sessions parked behind its locks are woken with
   :class:`~repro.errors.WaitPoisonedError` instead of wedging the
   scheduler — the concurrent analogue of the whole process dying.  Any
   session that keeps running dies at its own next failpoint (the
   injector is poisoned too).  When every task has stopped, the harness
   drops unforced state (``simulate_crash``), reopens without an
   injector, drains phoenix, and checks the
   :class:`~repro.workloads.chaos.ChaosOracle` invariants:

   * per session: account value ∈ {confirmed, pending} — no committed
     transaction lost, no partial transaction visible;
   * globally: ``shared == sum(accounts)`` — cross-record atomicity held
     under interleaving;
   * ledger == the union of committed token schedules, exactly once;
   * fsck clean, open and closed.

**Threaded mode** runs the same programs on real threads — no recorded
trace can predict where hit *k* lands, so it serves as a smoke subset:
whatever the crash interrupted, recovery must satisfy the same oracle.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from typing import Any

from repro.errors import InjectedCrashError, WaitPoisonedError
from repro.faults.harness import select_hits
from repro.faults.injector import FaultInjector, HitRecord
from repro.workloads import chaos

DEFAULT_SESSIONS = 4
DEFAULT_TXNS = 3


@dataclasses.dataclass
class ConcurrentOutcome:
    """What happened when the concurrent workload crashed at one hit."""

    hit: int
    point: str
    mode: str  # "cooperative" | "threaded"
    accounts: dict[str, int]
    shared: int
    settled: int
    drained: int
    sessions_died: int


@dataclasses.dataclass
class ConcurrentMatrixResult:
    trace: list[HitRecord]
    explored: list[ConcurrentOutcome]
    engine: str
    n_sessions: int

    @property
    def points_explored(self) -> set[str]:
        return {o.point for o in self.explored}

    @property
    def families_explored(self) -> set[str]:
        return {p.split(".", 1)[0] for p in self.points_explored}

    def survival_report(self) -> dict[str, Any]:
        """The JSON document the CI chaos job archives."""
        return {
            "engine": self.engine,
            "sessions": self.n_sessions,
            "trace_hits": len(self.trace),
            "crashes_explored": len(self.explored),
            "points_explored": sorted(self.points_explored),
            "families_explored": sorted(self.families_explored),
            "recovered": len(self.explored),  # explore raises on any failure
            "survival_rate": 1.0 if self.explored else None,
            "outcomes": [dataclasses.asdict(o) for o in self.explored],
        }


# ---------------------------------------------------------------------------
# One workload pass
# ---------------------------------------------------------------------------


def run_concurrent_workload(
    path: str,
    injector: FaultInjector,
    oracle: chaos.ChaosOracle,
    *,
    engine: str = "disk",
    n_sessions: int = DEFAULT_SESSIONS,
    txns_per_session: int = DEFAULT_TXNS,
    mode: str = "cooperative",
    buffer_capacity: int = 3,
    group_commit: bool = False,
) -> int:
    """One pass of the chaos workload; returns how many sessions died.

    Raises :class:`InjectedCrashError` when the armed crash fired (after
    every session task has stopped), leaving the on-disk state exactly as
    the dead process would.  The caller owns recovery.

    *group_commit* opens the database with WAL group commit.  Under the
    cooperative scheduler the WAL detects the wait hooks and falls back
    to immediate fsync (a parked leader would wedge the deterministic
    schedule), so recorded traces are unchanged; threaded mode gets the
    real leader/follower batching, crashes and all.
    """
    from repro.objects.database import Database
    from repro.sessions.scheduler import CooperativeScheduler

    kwargs: dict[str, Any] = {"injector": injector, "group_commit": group_commit}
    if engine == "disk":
        kwargs["buffer_capacity"] = buffer_capacity
    # The database *name* is embedded in persistent record bytes, so it
    # must be constant across runs: a per-path name shifts record sizes,
    # page boundaries, and therefore every failpoint hit index, and the
    # recorded trace would no longer line up with the crash runs.  Both
    # close() and simulate_crash() release the name, and the harness runs
    # one workload at a time, so a fixed name cannot collide.
    db = Database.open(path, engine=engine, name="chaos-run", **kwargs)
    try:
        fixture = chaos.setup_chaos(db, oracle, n_sessions)
        db.phoenix.register_handler(chaos.SETTLE_KIND, chaos.settle_handler(db))

        deaths: list[BaseException] = []
        deaths_lock = threading.Lock()

        def guarded(program, session):
            """The process-death boundary of one session.

            The first session to observe the injected crash poisons the
            lock manager so everyone parked behind its locks wakes; the
            poisoned waiters' own deaths are recorded the same way.
            """

            def run():
                try:
                    return program()
                except (InjectedCrashError, WaitPoisonedError) as exc:
                    db.storage.lock_manager.poison(
                        f"session {session.name!r} died: {exc}"
                    )
                    with deaths_lock:
                        deaths.append(exc)
                    return None

            return run

        scheduler = CooperativeScheduler() if mode == "cooperative" else None
        sessions = [db.session(name) for name in chaos.session_names(n_sessions)]
        programs = [
            chaos.chaos_program(
                session,
                oracle,
                fixture,
                n_txns=txns_per_session,
                scheduler=scheduler,
            )
            for session in sessions
        ]
        if scheduler is not None:
            for session, program in zip(sessions, programs):
                scheduler.spawn(
                    guarded(program, session), name=session.name, session=session
                )
            scheduler.run()
        else:
            threads = [
                threading.Thread(
                    target=guarded(program, session), name=session.name, daemon=True
                )
                for session, program in zip(sessions, programs)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive(), (
                    f"chaos session thread {thread.name} failed to return"
                )

        if deaths:
            # The process died mid-run; re-raise the first recorded crash
            # so the caller's recovery path treats every mode uniformly.
            raise deaths[0]

        # Quiesce, checkpoint (snapshot on mm), and close — each can crash.
        db.storage.checkpoint()
        db.close()
        return 0
    except BaseException:
        if not db._closed:
            db.simulate_crash()
        raise


# ---------------------------------------------------------------------------
# Record + explore
# ---------------------------------------------------------------------------


def record_concurrent_trace(
    path: str,
    *,
    engine: str = "disk",
    n_sessions: int = DEFAULT_SESSIONS,
    txns_per_session: int = DEFAULT_TXNS,
) -> list[HitRecord]:
    """The fault-free cooperative run: every failpoint hit, in order."""
    injector = FaultInjector(recording=True)
    run_concurrent_workload(
        path,
        injector,
        chaos.ChaosOracle(n_sessions),
        engine=engine,
        n_sessions=n_sessions,
        txns_per_session=txns_per_session,
    )
    return injector.trace


def crash_and_verify_concurrent(
    path: str,
    crash_at: int,
    point: str,
    *,
    engine: str = "disk",
    n_sessions: int = DEFAULT_SESSIONS,
    txns_per_session: int = DEFAULT_TXNS,
    mode: str = "cooperative",
    require_crash: bool = True,
    group_commit: bool = False,
) -> ConcurrentOutcome | None:
    """Crash the concurrent workload at hit *crash_at*, recover, verify.

    Raises AssertionError on any oracle violation.  In threaded mode the
    crash may land anywhere (or, with *require_crash* false, not fire at
    all if the run generated fewer hits); verification is identical.
    """
    injector = FaultInjector(crash_at=crash_at)
    oracle = chaos.ChaosOracle(n_sessions)
    crashed = None
    try:
        run_concurrent_workload(
            path,
            injector,
            oracle,
            engine=engine,
            n_sessions=n_sessions,
            txns_per_session=txns_per_session,
            mode=mode,
            group_commit=group_commit,
        )
    except InjectedCrashError as exc:
        crashed = exc
    if crashed is None:
        if require_crash:
            raise AssertionError(f"crash_at={crash_at} never fired")
        return None
    # Report where the crash actually landed — from the injector's record
    # of the *first* crash, because the exception the harness catches can
    # be a later poisoned re-raise (the abort path the original crash
    # triggered hits its own failpoints).  Cooperative runs replay the
    # recorded trace exactly (fixed database name, deterministic
    # scheduler), so this matches the trace label; threaded runs land
    # wherever the race put hit *crash_at*.
    actual_point = injector.crash_point or crashed.point or point
    if mode == "cooperative" and require_crash:
        assert actual_point == point, (
            f"crash_at={crash_at} fired at {actual_point!r}, but the trace "
            f"recorded {point!r} — the cooperative replay diverged"
        )
    return _verify_recovered(
        path, oracle, crash_at, actual_point, engine=engine, mode=mode
    )


def _verify_recovered(
    path: str,
    oracle: chaos.ChaosOracle,
    crash_at: int,
    point: str,
    *,
    engine: str,
    mode: str,
) -> ConcurrentOutcome:
    from repro.fsck import fsck, fsck_database
    from repro.objects.database import Database
    from repro.objects.oid import PersistentPtr

    where = f"crash@{crash_at} ({point}, {mode})"
    kwargs: dict[str, Any] = {}
    if engine == "disk":
        kwargs["buffer_capacity"] = 8
    recovered = Database.open(path, engine=engine, name="chaos-recovered", **kwargs)
    try:
        recovered.phoenix.register_handler(
            chaos.SETTLE_KIND, chaos.settle_handler(recovered)
        )
        drained = recovered.phoenix.drain()

        accounts: dict[str, int] = {}
        shared_value = 0
        settled: list[str] = []
        with recovered.transaction():
            shared_rid = recovered.catalog_get(chaos.SHARED_KEY)
            if shared_rid is None:
                # Setup rolled back whole: nothing may exist, and no
                # session can have confirmed anything.
                assert oracle.setup != "confirmed", (
                    f"{where}: setup confirmed but its records are gone"
                )
                assert recovered.catalog_get(chaos.LEDGER_KEY) is None, (
                    f"{where}: partial setup survived (ledger without shared)"
                )
                for model in oracle.models.values():
                    assert model.confirmed == 0
            else:
                # Invariant 1: per-session atomicity and durability.
                for name, model in oracle.models.items():
                    rid = recovered.catalog_get(chaos.ACCOUNT_KEY.format(name=name))
                    assert rid is not None, f"{where}: account {name} missing"
                    actual = recovered.deref(PersistentPtr(recovered.name, rid)).value
                    assert actual in model.acceptable, (
                        f"{where}: session {name} has {actual} committed "
                        f"txns, oracle accepts {model.acceptable}"
                    )
                    accounts[name] = actual

                # Invariant 2: cross-record atomicity under interleaving.
                shared_value = recovered.deref(
                    PersistentPtr(recovered.name, shared_rid)
                ).value
                assert shared_value == sum(accounts.values()), (
                    f"{where}: shared counter {shared_value} != "
                    f"sum of per-session accounts {accounts}"
                )

                # Invariant 3: phoenix exactly-once at the application level.
                ledger_rid = recovered.catalog_get(chaos.LEDGER_KEY)
                assert ledger_rid is not None, f"{where}: ledger missing"
                settled = list(
                    recovered.deref(PersistentPtr(recovered.name, ledger_rid)).tokens
                )
                assert len(settled) == len(set(settled)), (
                    f"{where}: token settled twice: {settled}"
                )
                expected = sorted(
                    token
                    for name, actual in accounts.items()
                    for token in chaos.tokens_for(name, actual)
                )
                assert sorted(settled) == expected, (
                    f"{where}: settled {sorted(settled)}, expected {expected}"
                )

        # Invariant 4: fsck clean while open (triggers, index, phoenix).
        report = fsck_database(recovered)
        assert report.ok, (
            f"{where}: fsck: " + "; ".join(f.render() for f in report.findings)
        )
    finally:
        recovered.close()

    # Invariant 5: fsck of the closed files is clean too.
    report = fsck(path, engine=engine)
    assert report.ok, (
        f"{where}: post-close fsck: "
        + "; ".join(f.render() for f in report.findings)
    )
    return ConcurrentOutcome(
        hit=crash_at,
        point=point,
        mode=mode,
        accounts=accounts,
        shared=shared_value,
        settled=len(settled),
        drained=drained,
        sessions_died=0,  # not observable post-mortem; kept for the report
    )


def explore_concurrent(
    base_path: str,
    *,
    engine: str = "disk",
    limit: int | None = None,
    n_sessions: int = DEFAULT_SESSIONS,
    txns_per_session: int = DEFAULT_TXNS,
) -> ConcurrentMatrixResult:
    """Record the cooperative trace, then crash-and-verify selected hits."""
    trace = record_concurrent_trace(
        f"{base_path}-trace",
        engine=engine,
        n_sessions=n_sessions,
        txns_per_session=txns_per_session,
    )
    outcomes = []
    for i in select_hits(trace, limit):
        outcomes.append(
            crash_and_verify_concurrent(
                f"{base_path}-h{i}",
                i,
                trace[i].point,
                engine=engine,
                n_sessions=n_sessions,
                txns_per_session=txns_per_session,
            )
        )
    return ConcurrentMatrixResult(
        trace=trace, explored=outcomes, engine=engine, n_sessions=n_sessions
    )


def write_survival_report(
    results: list[ConcurrentMatrixResult], out_path: str
) -> dict[str, Any]:
    """Merge per-engine matrix results into one JSON survival report."""
    document = {
        "matrices": [r.survival_report() for r in results],
        "points_total": sorted(set().union(*(r.points_explored for r in results)))
        if results
        else [],
        "all_recovered": all(
            len(r.explored) > 0 or len(r.trace) == 0 for r in results
        ),
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2)
    return document
