"""Crash-matrix exploration: crash at every failpoint, recover, verify.

The harness runs a fixed trigger-posting workload (the paper's Section 4
credit-card domain: FSM-bearing triggers, a B-tree index, phoenix
intentions, a mid-run checkpoint, an aborted transaction) twice over:

1. **Record** — one fault-free run with a recording
   :class:`~repro.faults.FaultInjector` produces the *trace*: the ordered
   list of every failpoint hit the workload generates.
2. **Explore** — for each selected hit index, a fresh copy of the
   workload runs with ``crash_at`` set to that index.  The injected
   crash kills the "process" mid-operation; the database is then
   reopened *without* an injector (normal crash recovery), drained, and
   checked against the oracle:

   * every transaction confirmed committed before the crash is durable,
     the one in flight either committed whole or rolled back whole
     (state must equal the confirmed model or the pending model — never
     anything in between);
   * the B-tree index still finds the card under its current key;
   * each phoenix intention from the surviving model ran **exactly once
     at the application level** (the at-least-once drain plus an
     idempotent handler — the paper's phoenix contract);
   * :func:`repro.fsck.fsck` reports the recovered database clean.

The workload is deterministic, so the trace — and therefore the whole
matrix — is reproducible run to run.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.errors import TransactionAbort
from repro.faults.injector import FaultInjector, HitRecord
from repro.objects.index import load_index
from repro.objects.persistent import Persistent
from repro.objects.schema import field
from repro.workloads.credit_card import CredCard, Customer

_CARD_KEY = "app:card"
_LEDGER_KEY = "app:ledger"
_SETTLE = "settle"


class SettlementLedger(Persistent):
    """Application-side record of settled phoenix tokens (exactly-once)."""

    tokens = field(list, default=[])


@dataclasses.dataclass(frozen=True)
class ModelState:
    """The oracle's logical state: what the database must look like."""

    created: bool = False
    purchases: int = 0
    balance: float = 0.0
    tokens: tuple[str, ...] = ()

    def matches_db(self, db) -> bool:
        with db.transaction():
            card_rid = db.catalog_get(_CARD_KEY)
            if card_rid is None:
                return not self.created
            if not self.created:
                return False
            from repro.objects.oid import PersistentPtr

            card = db.deref(PersistentPtr(db.name, card_rid))
            return (
                card.purchases == self.purchases
                and abs(card.curr_bal - self.balance) < 1e-9
            )


class Oracle:
    """Tracks the confirmed/pending model pair around every commit.

    Transactions are strictly sequential, so a single crash interrupts at
    most one: the recovered database must equal ``confirmed`` (the crash
    hit before the commit became durable) or ``pending`` (after).
    """

    def __init__(self) -> None:
        self.confirmed = ModelState()
        self.pending = ModelState()

    def attempt(self, **changes: Any) -> None:
        self.pending = dataclasses.replace(self.confirmed, **changes)

    def confirm(self) -> None:
        self.confirmed = self.pending

    @property
    def acceptable(self) -> tuple[ModelState, ...]:
        if self.pending == self.confirmed:
            return (self.confirmed,)
        return (self.confirmed, self.pending)


@dataclasses.dataclass
class CrashOutcome:
    """What happened when the workload crashed at one trace hit."""

    hit: int
    point: str
    matched: str  # "confirmed" | "pending"
    recovery: Any  # storage recovery stats, engine-dependent
    drained: int
    fsck_findings: list[str]


@dataclasses.dataclass
class MatrixResult:
    trace: list[HitRecord]
    explored: list[CrashOutcome]

    @property
    def points_explored(self) -> set[str]:
        return {o.point for o in self.explored}

    @property
    def families_explored(self) -> set[str]:
        """Failpoint families ("wal", "page", "checkpoint", ...)."""
        return {p.split(".", 1)[0] for p in self.points_explored}


# ---------------------------------------------------------------------------
# The workload under test
# ---------------------------------------------------------------------------


def _settle_handler(db):
    """The idempotent phoenix executor: settle a token at most once."""
    from repro.objects.oid import PersistentPtr

    def settle(txn, payload):
        ledger = db.deref(PersistentPtr(db.name, payload["ledger"]))
        token = payload["token"]
        if token not in ledger.tokens:
            ledger.tokens = ledger.tokens + [token]

    return settle


def run_workload(
    path: str,
    injector: FaultInjector,
    oracle: Oracle,
    *,
    engine: str = "disk",
    buffer_capacity: int = 3,
    trigger_cc: str = "2pl",
    group_commit: bool = False,
) -> None:
    """One deterministic pass of the trigger-posting workload.

    Raises :class:`~repro.errors.InjectedCrashError` when *injector* is
    armed with a crash; the caller owns cleanup and recovery.

    *trigger_cc* selects the TriggerState concurrency-control scheme; the
    MVCC merge writes through the same WAL as 2PL, so the whole matrix
    must hold unchanged under ``"mvcc"``.

    *group_commit* opens the database with WAL group commit.  The
    workload is single-threaded, so every committer is its own batch
    leader and the trace stays deterministic — but the commit path now
    routes through the ``wal.group_force`` / ``wal.group_force.after``
    failpoints instead of ``wal.force``/``wal.force.after``, so the
    batched-fsync crash window gets the same exhaustive treatment.
    """
    from repro.objects.database import Database

    kwargs: dict[str, Any] = {
        "injector": injector,
        "trigger_cc": trigger_cc,
        "group_commit": group_commit,
    }
    if engine == "disk":
        kwargs["buffer_capacity"] = buffer_capacity
    db = Database.open(path, engine=engine, name=f"matrix:{path}", **kwargs)
    try:
        manager = db.txn_manager

        # Setup: card + AutoRaiseLimit FSM + ledger + index, one txn.
        txn = manager.begin()
        card = db.pnew(CredCard, cred_lim=10.0)
        card.AutoRaiseLimit(5.0)
        ledger = db.pnew(SettlementLedger)
        db.catalog_set(txn, _CARD_KEY, card.ptr.rid)
        db.catalog_set(txn, _LEDGER_KEY, ledger.ptr.rid)
        if engine == "disk":
            db.create_index(CredCard, "purchases")
        # Page-spanning filler so the small buffer pool must evict dirty
        # frames (covers the pool.evict failpoint on the disk engine).
        fillers = [
            db.pnew(Customer, name=f"filler-{i}-" + "x" * 1500).ptr
            for i in range(6)
        ]
        card_ptr, ledger_rid = card.ptr, ledger.ptr.rid
        oracle.attempt(created=True)
        manager.commit(txn)
        oracle.confirm()
        # Touch the filler spread: dirties several pages in one txn.
        txn = manager.begin()
        for ptr in fillers:
            handle = db.deref(ptr)
            handle.address = "updated"
        oracle.attempt()  # no modelled fields change
        manager.commit(txn)
        oracle.confirm()
        db.phoenix.register_handler(_SETTLE, _settle_handler(db))

        # A run of buys; enough to arm MoreCred (balance > 80% of limit).
        for i in range(4):
            txn = manager.begin()
            db.deref(card_ptr).buy(None, 3.0)
            oracle.attempt(
                purchases=oracle.confirmed.purchases + 1,
                balance=oracle.confirmed.balance + 3.0,
            )
            manager.commit(txn)
            oracle.confirm()

        # Two phoenix intentions, drained as they would be after tcommit.
        for k in range(2):
            token = f"settle-{k}"
            txn = manager.begin()
            db.deref(card_ptr).buy(None, 1.0)
            db.phoenix.enqueue(
                txn, _SETTLE, {"ledger": ledger_rid, "token": token}
            )
            oracle.attempt(
                purchases=oracle.confirmed.purchases + 1,
                balance=oracle.confirmed.balance + 1.0,
                tokens=oracle.confirmed.tokens + (token,),
            )
            manager.commit(txn)
            oracle.confirm()
            db.phoenix.drain()

        # pay_bill completes AutoRaiseLimit's relative event: FSM accepts.
        txn = manager.begin()
        db.deref(card_ptr).pay_bill(2.0)
        oracle.attempt(balance=oracle.confirmed.balance - 2.0)
        manager.commit(txn)
        oracle.confirm()

        # An aborted transaction: its logged writes must never survive.
        with db.transaction():
            db.deref(card_ptr).buy(None, 500.0)
            raise TransactionAbort("oracle: this buy must vanish")

        # Checkpoint mid-run, then more work so the log is live again.
        db.storage.checkpoint()
        txn = manager.begin()
        db.deref(card_ptr).buy(None, 3.0)
        oracle.attempt(
            purchases=oracle.confirmed.purchases + 1,
            balance=oracle.confirmed.balance + 3.0,
        )
        manager.commit(txn)
        oracle.confirm()
        db.close()  # inside the guard: the close-time checkpoint can crash too
    except BaseException:
        # Injected crash (or any failure): the "process" dies here.
        if not db._closed:
            db.simulate_crash()
        raise


# ---------------------------------------------------------------------------
# Record + explore
# ---------------------------------------------------------------------------


def record_trace(
    path: str,
    *,
    engine: str = "disk",
    trigger_cc: str = "2pl",
    group_commit: bool = False,
) -> list[HitRecord]:
    """The fault-free run: every failpoint hit, in order."""
    injector = FaultInjector(recording=True)
    run_workload(
        path,
        injector,
        Oracle(),
        engine=engine,
        trigger_cc=trigger_cc,
        group_commit=group_commit,
    )
    return injector.trace


def select_hits(trace: list[HitRecord], limit: int | None) -> list[int]:
    """Pick hit indices to explore: every distinct failpoint first, then
    evenly-spaced extras up to *limit* (None = the whole trace)."""
    if limit is None or limit >= len(trace):
        return list(range(len(trace)))
    chosen: list[int] = []
    seen_points: set[str] = set()
    for rec in trace:
        if rec.point not in seen_points:
            seen_points.add(rec.point)
            chosen.append(rec.index)
    remaining = [i for i in range(len(trace)) if i not in set(chosen)]
    extra = max(0, limit - len(chosen))
    if extra and remaining:
        stride = max(1, len(remaining) // extra)
        chosen.extend(remaining[::stride][:extra])
    return sorted(chosen)[:max(limit, len(seen_points))]


def crash_and_verify(
    path: str,
    crash_at: int,
    point: str,
    *,
    engine: str = "disk",
    trigger_cc: str = "2pl",
    group_commit: bool = False,
) -> CrashOutcome:
    """Run the workload crashing at trace index *crash_at*, then recover
    and check every invariant.  Raises AssertionError on violation."""
    from repro.errors import InjectedCrashError
    from repro.fsck import fsck, fsck_database
    from repro.objects.database import Database
    from repro.objects.oid import PersistentPtr

    injector = FaultInjector(crash_at=crash_at)
    oracle = Oracle()
    try:
        run_workload(
            path,
            injector,
            oracle,
            engine=engine,
            trigger_cc=trigger_cc,
            group_commit=group_commit,
        )
    except InjectedCrashError:
        pass
    else:
        raise AssertionError(f"crash_at={crash_at} never fired")

    # -- recovery (no injector: the next process boots on real I/O) -------
    # Recovery deliberately reopens with the same trigger_cc: the merged
    # TriggerState bytes are plain WAL'd records either way.
    kwargs: dict[str, Any] = {"trigger_cc": trigger_cc}
    if engine == "disk":
        kwargs["buffer_capacity"] = 8
    recovered = Database.open(
        path, engine=engine, name=f"matrix-recovered:{path}", **kwargs
    )
    try:
        recovery_stats = getattr(recovered.storage, "last_recovery", None)
        recovered.phoenix.register_handler(_SETTLE, _settle_handler(recovered))
        drained = recovered.phoenix.drain()

        # Invariant 1: atomic transactions — state is one of the models.
        candidates = [("confirmed", oracle.confirmed)]
        if oracle.pending != oracle.confirmed:
            candidates.append(("pending", oracle.pending))
        matched = None
        for label, model in candidates:
            if model.matches_db(recovered):
                matched = (label, model)
                break
        assert matched is not None, (
            f"crash@{crash_at} ({point}): recovered state matches neither "
            f"the confirmed nor the in-flight model: {oracle.acceptable}"
        )
        label, model = matched

        with recovered.transaction() as txn:
            # Invariant 2: the index still finds the card under its key.
            card_rid = recovered.catalog_get(_CARD_KEY)
            if engine == "disk" and model.created:
                index = load_index(recovered, "CredCard", "purchases")
                if index is not None:  # in-flight setup txn may have rolled back
                    card = recovered.deref(PersistentPtr(recovered.name, card_rid))
                    assert card_rid in index.lookup(txn, card.purchases), (
                        f"crash@{crash_at} ({point}): index lost the card"
                    )

            # Invariant 3: phoenix exactly-once at the application level.
            ledger_rid = recovered.catalog_get(_LEDGER_KEY)
            settled: list[str] = []
            if ledger_rid is not None:
                settled = list(
                    recovered.deref(
                        PersistentPtr(recovered.name, ledger_rid)
                    ).tokens
                )
            assert len(settled) == len(set(settled)), (
                f"crash@{crash_at} ({point}): token settled twice: {settled}"
            )
            assert sorted(settled) == sorted(model.tokens), (
                f"crash@{crash_at} ({point}): settled {settled} but the "
                f"{label} model enqueued {model.tokens}"
            )

        # Invariant 4: fsck is clean while open (trigger/index/phoenix).
        report = fsck_database(recovered)
        assert report.ok, (
            f"crash@{crash_at} ({point}): fsck: "
            + "; ".join(f.render() for f in report.findings)
        )
    finally:
        recovered.close()

    # Invariant 5: fsck of the closed files (physical + logical) is clean.
    report = fsck(path, engine=engine)
    assert report.ok, (
        f"crash@{crash_at} ({point}): post-close fsck: "
        + "; ".join(f.render() for f in report.findings)
    )
    return CrashOutcome(
        hit=crash_at,
        point=point,
        matched=label,
        recovery=recovery_stats,
        drained=drained,
        fsck_findings=[f.render() for f in report.findings],
    )


def explore(
    base_path: str,
    *,
    engine: str = "disk",
    limit: int | None = None,
    trigger_cc: str = "2pl",
    group_commit: bool = False,
) -> MatrixResult:
    """Record the trace, then crash-and-verify at the selected hits.

    *base_path* is a directory-like prefix: each run gets its own file
    set (``<base_path>-trace``, ``<base_path>-h<i>``).
    """
    trace = record_trace(
        f"{base_path}-trace",
        engine=engine,
        trigger_cc=trigger_cc,
        group_commit=group_commit,
    )
    outcomes = []
    for i in select_hits(trace, limit):
        outcomes.append(
            crash_and_verify(
                f"{base_path}-h{i}",
                i,
                trace[i].point,
                engine=engine,
                trigger_cc=trigger_cc,
                group_commit=group_commit,
            )
        )
    return MatrixResult(trace=trace, explored=outcomes)
