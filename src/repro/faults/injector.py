"""Named failpoints and a deterministic fault injector.

The storage stack calls :meth:`FaultInjector.fire` at *control* points
("about to fsync the WAL") and :meth:`FaultInjector.fire_write` at *write*
points, where the fault can also mangle the bytes about to hit the disk
(torn/partial appends, bit flips).  With no injector armed both calls are
no-ops, so production code pays one attribute lookup per failpoint.

Determinism is the design center: every fire increments a global hit
counter, a recording run captures the full trace, and the crash matrix
re-runs the same workload with a crash armed at hit *k* for every *k* the
recording saw.  Nothing here consults the clock or a PRNG — bit flips use
a fixed XOR mask, torn writes a fixed fraction — so a failing point
replays exactly.

Fault kinds
-----------

``CRASH``
    Raise :class:`~repro.errors.InjectedCrashError` *before* the guarded
    operation runs.  Once a crash fires the injector is poisoned: every
    later fire also raises, modelling a dead process that cannot touch the
    disk again.  The harness then calls ``simulate_crash()`` which drops
    all un-fsynced state (see ``WriteAheadLog.crash``).
``TORN_WRITE``
    At a write point: persist only a prefix of the payload, then crash.
    Models a power cut mid-``write(2)``.
``BIT_FLIP``
    At a write point: flip one bit of the payload (after any checksum was
    stamped, so the corruption is *detectable*) and carry on silently.
    Models firmware/cable corruption; ``fsck`` and CRC checks must catch it.
``IO_ERROR``
    Raise :class:`~repro.errors.TransientIOError` for the armed number of
    hits; the engine's bounded retry loop (:func:`with_retry`) absorbs it.
``MEDIA_ERROR``
    Raise :class:`~repro.errors.UnrecoverableMediaError`, *sticky*: every
    later hit of the same point fails too.  The engine degrades the store
    to read-only instead of corrupting it.
``STALL``
    Sleep for ``delay`` seconds, then carry on — a slow disk, not a dead
    one.  The one kind that consults the clock, so it is reserved for the
    threaded chaos scenarios (E18, bounded-wait tests); deterministic
    matrices never arm it.

Thread safety: all the injector's mutable state — the global hit counter,
the recording trace, per-fault ``_seen``/``_fired`` progress, and the
poisoned-after-crash flag — is guarded by one internal mutex, because a
database shared by threaded sessions funnels every failpoint through one
injector.  Without the lock two racing ``hits += 1`` can observe the same
index and a fault armed ``after=k`` can silently never fire.
"""

from __future__ import annotations

import dataclasses
import enum
import threading
import time
from collections.abc import Callable

from repro.errors import (
    InjectedCrashError,
    TransientIOError,
    UnrecoverableMediaError,
)


class FaultKind(enum.Enum):
    CRASH = "crash"
    TORN_WRITE = "torn_write"
    BIT_FLIP = "bit_flip"
    IO_ERROR = "io_error"
    MEDIA_ERROR = "media_error"
    STALL = "stall"


@dataclasses.dataclass
class Fault:
    """One armed fault: fire *kind* at failpoint *point*.

    ``after`` skips that many matching hits first; ``count`` limits how
    many times the fault fires (ignored for sticky media errors, which
    never heal).  ``fraction`` is the kept prefix for torn writes;
    ``delay`` is the stall duration for :attr:`FaultKind.STALL`.
    """

    point: str
    kind: FaultKind
    after: int = 0
    count: int = 1
    fraction: float = 0.5
    delay: float = 0.01

    # runtime state
    _seen: int = dataclasses.field(default=0, repr=False)
    _fired: int = dataclasses.field(default=0, repr=False)

    def should_fire(self) -> bool:
        self._seen += 1
        if self._seen <= self.after:
            return False
        if self.kind is FaultKind.MEDIA_ERROR:
            return True  # sticky: the medium never heals
        if self._fired >= self.count:
            return False
        self._fired += 1
        return True


@dataclasses.dataclass(frozen=True)
class HitRecord:
    """One failpoint hit observed during a recording run."""

    index: int  # global hit number (0-based)
    point: str
    writes: bool  # True for fire_write points


class FaultInjector:
    """Deterministic failpoint dispatcher.

    Modes (combinable):

    * **recording** — count every hit into :attr:`trace`, never fault.
    * **crash_at** — raise an injected crash at global hit index *k*
      (the crash-matrix workhorse).
    * **faults** — arm :class:`Fault` plans per failpoint name.
    """

    def __init__(
        self,
        faults: list[Fault] | None = None,
        *,
        recording: bool = False,
        crash_at: int | None = None,
    ):
        self.recording = recording
        self.crash_at = crash_at
        self.trace: list[HitRecord] = []
        self.hits = 0
        self.crashed = False
        #: Where the *first* crash fired.  Once poisoned, every later
        #: failpoint raises too (often from inside the abort path the
        #: original crash triggered), and that re-raise can shadow the
        #: original exception — so harnesses read the true point here.
        self.crash_point: str | None = None
        self.crash_index: int | None = None
        self._faults: dict[str, list[Fault]] = {}
        # One mutex for all mutable injector state; every failpoint of a
        # threaded multi-session database dispatches through here.
        self._lock = threading.Lock()
        for fault in faults or []:
            self.add(fault)

    def add(self, fault: Fault) -> "FaultInjector":
        with self._lock:
            self._faults.setdefault(fault.point, []).append(fault)
        return self

    def crash_on(self, point: str, after: int = 0) -> "FaultInjector":
        return self.add(Fault(point, FaultKind.CRASH, after=after))

    # -- firing ----------------------------------------------------------------

    def fire(self, point: str, **context) -> None:
        """A control failpoint: may raise or stall, never alters data."""
        fault = self._dispatch(point, writes=False)
        if fault is None:
            return
        if fault.kind is FaultKind.STALL:
            time.sleep(fault.delay)  # outside the mutex: a slow disk, not a held lock
            return
        self._raise_for(fault, point)

    def fire_write(
        self, point: str, data: bytes, **context
    ) -> tuple[bytes, bool]:
        """A write failpoint guarding *data* about to be written.

        Returns ``(data_to_write, crash_after_write)``.  Torn writes hand
        back a prefix with ``crash_after_write=True``: the caller must
        write the prefix, make it durable, and then re-raise the pending
        crash via :meth:`crash_pending`.  Bit flips return mangled bytes
        and no crash.  Other kinds raise like :meth:`fire`.
        """
        fault = self._dispatch(point, writes=True)
        if fault is None:
            return data, False
        if fault.kind is FaultKind.STALL:
            time.sleep(fault.delay)
            return data, False
        if fault.kind is FaultKind.TORN_WRITE:
            keep = max(1, min(len(data) - 1, int(len(data) * fault.fraction)))
            with self._lock:
                self._mark_crashed_locked(point, self.hits - 1)
            return data[:keep], True
        if fault.kind is FaultKind.BIT_FLIP:
            if not data:
                return data, False
            mangled = bytearray(data)
            mangled[len(mangled) // 2] ^= 0x40  # deterministic single-bit flip
            return bytes(mangled), False
        self._raise_for(fault, point)
        raise AssertionError("unreachable")  # pragma: no cover

    def crash_pending(self, point: str) -> None:
        """Raise the crash a torn write deferred until after its prefix."""
        raise InjectedCrashError(point, self.hits)

    # -- internals ------------------------------------------------------------

    def _dispatch(self, point: str, writes: bool) -> Fault | None:
        """Count the hit; return the fault to apply, if any."""
        with self._lock:
            if self.crashed:
                # A dead process cannot reach another failpoint: every guarded
                # operation after the crash must fail before touching the disk.
                raise InjectedCrashError(point, self.hits)
            index = self.hits
            self.hits += 1
            if self.recording:
                self.trace.append(HitRecord(index, point, writes))
                return None
            if self.crash_at is not None and index == self.crash_at:
                self._mark_crashed_locked(point, index)
                raise InjectedCrashError(point, index)
            for fault in self._faults.get(point, ()):
                if fault.should_fire():
                    return fault
            return None

    def _mark_crashed_locked(self, point: str, index: int) -> None:
        self.crashed = True
        if self.crash_point is None:
            self.crash_point = point
            self.crash_index = index

    def _raise_for(self, fault: Fault, point: str) -> None:
        if fault.kind is FaultKind.CRASH:
            with self._lock:
                self._mark_crashed_locked(point, self.hits - 1)
            raise InjectedCrashError(point, self.hits - 1)
        if fault.kind is FaultKind.IO_ERROR:
            raise TransientIOError(5, f"injected transient I/O error at {point}")
        if fault.kind is FaultKind.MEDIA_ERROR:
            raise UnrecoverableMediaError(
                f"injected unrecoverable media error at failpoint {point!r}"
            )
        raise AssertionError(
            f"fault kind {fault.kind} is only valid at write failpoints"
        )


class _NullInjector(FaultInjector):
    """The default injector: every fire is a no-op (and stays one)."""

    def __init__(self):
        super().__init__()

    def fire(self, point: str, **context) -> None:
        return None

    def fire_write(self, point: str, data: bytes, **context):
        return data, False

    def add(self, fault: Fault) -> FaultInjector:  # pragma: no cover - misuse
        raise ValueError("cannot arm faults on the shared NULL_INJECTOR")


NULL_INJECTOR: FaultInjector = _NullInjector()


# ---------------------------------------------------------------------------
# Transient-error retry
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient ``OSError``."""

    attempts: int = 4
    backoff: float = 0.0005  # seconds before the first retry
    multiplier: float = 2.0


DEFAULT_RETRY = RetryPolicy()


def with_retry(
    op: Callable[[], object],
    policy: RetryPolicy = DEFAULT_RETRY,
    on_retry: Callable[[], None] | None = None,
):
    """Run *op*, retrying transient ``OSError``s per *policy*.

    :class:`~repro.errors.UnrecoverableMediaError` and injected crashes are
    *not* ``OSError`` subclasses and pass straight through — retrying a
    dead medium or a dead process is meaningless.  The last ``OSError`` is
    re-raised once the attempt budget is exhausted.
    """
    delay = policy.backoff
    for attempt in range(policy.attempts):
        try:
            return op()
        except OSError:
            if attempt == policy.attempts - 1:
                raise
            if on_retry is not None:
                on_retry()
            if delay > 0:
                time.sleep(delay)
            delay *= policy.multiplier
    raise AssertionError("unreachable")  # pragma: no cover
