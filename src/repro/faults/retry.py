"""Unified retry classification for transaction-level failures.

Before this module existed the system had *three* uncoordinated retry
mechanisms: the storage engines retried transient ``OSError`` through
:func:`repro.faults.injector.with_retry`, :meth:`Session.run` retried
``DeadlockError`` with its own crc32-seeded jittered backoff, and lock
timeouts were not retried at all.  This module merges them into one
policy — every failure a transaction can survive by *running again from
the top* is classified here, shares one jittered exponential backoff, and
draws from a per-class retry budget.

Classes
-------

``DEADLOCK``
    :class:`~repro.errors.DeadlockError` — the victim's abort released its
    locks; the retry is expected to succeed once the survivors commit.
``CC_CONFLICT``
    :class:`~repro.errors.TriggerStateConflictError` — the MVCC commit-time
    merge aborted on a lost update (``conflict_policy="abort"``); the
    optimistic analogue of a deadlock victim, retried with the same budget.
``LOCK_TIMEOUT``
    :class:`~repro.errors.LockTimeoutError` — the wait budget expired; the
    holder may have been slow rather than dead, so a bounded number of
    retries is worthwhile.
``TRANSIENT_IO``
    :class:`~repro.errors.TransientIOError` (or any other ``OSError``)
    that escaped the storage layer's inner retry loop — the whole
    transaction can be replayed against a recovered device.
``FATAL``
    Everything else: deadline expiry (the budget covered all attempts),
    read-only degradation (retrying cannot un-fail the medium), injected
    crashes, and ordinary bugs.  Never retried.

The storage-level :class:`~repro.faults.injector.RetryPolicy` stays where
it is — it retries a single *syscall*, not a transaction — but its backoff
constants seed the defaults here so the two layers back off consistently.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import TYPE_CHECKING, Mapping

from repro.errors import (
    DeadlockError,
    InjectedCrashError,
    LockTimeoutError,
    ReadOnlyStorageError,
    TransactionDeadlineError,
    TriggerStateConflictError,
    WaitPoisonedError,
)
from repro.faults.injector import DEFAULT_RETRY

if TYPE_CHECKING:  # pragma: no cover
    import random


class RetryClass(enum.Enum):
    """What kind of failure a transaction attempt died of."""

    DEADLOCK = "deadlock"
    CC_CONFLICT = "cc_conflict"
    LOCK_TIMEOUT = "lock_timeout"
    TRANSIENT_IO = "transient_io"
    FATAL = "fatal"

    @property
    def retryable(self) -> bool:
        return self is not RetryClass.FATAL


def classify(exc: BaseException) -> RetryClass:
    """Map *exc* to its retry class.

    Order matters: the non-retryable leaves are checked before their
    retryable bases (``TransactionDeadlineError`` before the generic
    transaction errors, ``WaitPoisonedError`` before ``LockError``), and
    ``InjectedCrashError`` is a ``BaseException`` that never reaches a
    sane handler anyway — classified FATAL for completeness.
    """
    if isinstance(exc, (TransactionDeadlineError, WaitPoisonedError)):
        return RetryClass.FATAL
    if isinstance(exc, (ReadOnlyStorageError, InjectedCrashError)):
        return RetryClass.FATAL
    if isinstance(exc, DeadlockError):
        return RetryClass.DEADLOCK
    if isinstance(exc, TriggerStateConflictError):
        return RetryClass.CC_CONFLICT
    if isinstance(exc, LockTimeoutError):
        return RetryClass.LOCK_TIMEOUT
    if isinstance(exc, OSError):
        return RetryClass.TRANSIENT_IO
    return RetryClass.FATAL


_DEFAULT_BUDGETS: dict[RetryClass, int] = {
    RetryClass.DEADLOCK: 5,
    RetryClass.CC_CONFLICT: 5,
    RetryClass.LOCK_TIMEOUT: 2,
    RetryClass.TRANSIENT_IO: 3,
}


@dataclasses.dataclass(frozen=True)
class UnifiedRetryPolicy:
    """Per-class retry budgets over one shared jittered backoff.

    ``budgets`` maps each retryable class to the number of *retries* it is
    allowed (an attempt that fails with an exhausted class re-raises).
    The backoff for retry *n* (1-based) is drawn uniformly from
    ``[0, min(cap, backoff * multiplier**(n-1))]`` using the caller's RNG
    — the session passes its crc32-seeded generator, so threaded schedules
    replay across runs; cooperative mode never sleeps at all.
    """

    budgets: Mapping[RetryClass, int] = dataclasses.field(
        default_factory=lambda: dict(_DEFAULT_BUDGETS)
    )
    backoff: float = DEFAULT_RETRY.backoff
    multiplier: float = DEFAULT_RETRY.multiplier
    cap: float = 0.05

    def budget(self, cls: RetryClass) -> int:
        if not cls.retryable:
            return 0
        return self.budgets.get(cls, 0)

    def delay(self, attempt: int, rng: "random.Random") -> float:
        """The jittered sleep before retry *attempt* (1-based)."""
        ceiling = min(self.cap, self.backoff * self.multiplier ** (attempt - 1))
        return rng.uniform(0.0, ceiling)

    def with_budget(self, cls: RetryClass, retries: int) -> "UnifiedRetryPolicy":
        budgets = dict(self.budgets)
        budgets[cls] = retries
        return dataclasses.replace(self, budgets=budgets)


DEFAULT_UNIFIED_RETRY = UnifiedRetryPolicy()


class RetryState:
    """Per-transaction-run bookkeeping: attempts consumed per class."""

    def __init__(self, policy: UnifiedRetryPolicy = DEFAULT_UNIFIED_RETRY):
        self.policy = policy
        self.attempts: dict[RetryClass, int] = {}

    def consume(self, exc: BaseException) -> tuple[RetryClass, bool]:
        """Record a failed attempt; returns ``(class, may_retry)``.

        ``may_retry`` is False when the class is non-retryable or its
        budget is exhausted — the caller re-raises in that case.
        """
        cls = classify(exc)
        if not cls.retryable:
            return cls, False
        used = self.attempts.get(cls, 0) + 1
        self.attempts[cls] = used
        return cls, used <= self.policy.budget(cls)

    @property
    def total_attempts(self) -> int:
        return sum(self.attempts.values())
