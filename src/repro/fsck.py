"""Storage integrity checker — ``python -m repro.tools fsck``.

Two passes, modelled on a filesystem fsck:

* **physical** — reads the disk engine's ``.data`` file directly (read-only,
  no engine involved): per-page CRC32, slotted-page structure, record flag
  validity, and the forward/body-segment graph (broken chains, orphaned
  bodies).  The ``.wal`` file is frame-scanned for interior corruption
  (a torn *tail* is normal after a crash and only reported as info).
* **logical** — opens the database normally, which runs crash recovery
  first (exactly like an fsck replaying the journal), then checks: catalog
  referential integrity, B-tree invariants for every registered index,
  persistent ``TriggerState`` ↔ trigger-index consistency (both
  directions, including orphaned state records the index no longer
  references), and the phoenix intention queue (well-formedness plus
  dangling persistent pointers inside payloads).

Every finding carries a *stable* ``ODE1xx`` code in the style of the
static trigger analyzer (:mod:`repro.analysis.diagnostics`, codes
``ODE0xx``) so tests and CI gates match on codes, not message text.
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct
import zlib

from repro.analysis.diagnostics import Severity
from repro.errors import OdeError, WALError
from repro.objects.oid import PersistentPtr
from repro.objects.serialize import decode_value
from repro.storage.page import PAGE_SIZE, TOMBSTONE, USABLE_END

#: The stable fsck catalogue: code -> (default severity, title).
#: Grouped by pass: 10x physical pages, 11x catalog, 12x B-trees,
#: 13x trigger states, 14x phoenix queue, 15x WAL/open.
CODES: dict[str, tuple[Severity, str]] = {
    "ODE100": (Severity.ERROR, "data file truncated mid-page"),
    "ODE101": (Severity.ERROR, "page checksum mismatch"),
    "ODE102": (Severity.ERROR, "slotted page structure corrupt"),
    "ODE103": (Severity.ERROR, "invalid record flag"),
    "ODE104": (Severity.ERROR, "broken forward/body chain"),
    "ODE105": (Severity.WARNING, "orphaned record body"),
    "ODE106": (Severity.ERROR, "data file header corrupt"),
    "ODE110": (Severity.ERROR, "catalog entry references a missing record"),
    "ODE120": (Severity.ERROR, "B-tree invariant violated"),
    "ODE121": (Severity.ERROR, "B-tree unreadable"),
    "ODE130": (Severity.ERROR, "trigger-state referential integrity violated"),
    "ODE131": (Severity.WARNING, "orphaned TriggerState record"),
    "ODE132": (Severity.INFO, "trigger type not importable here (check skipped)"),
    "ODE140": (Severity.ERROR, "malformed phoenix queue"),
    "ODE141": (Severity.WARNING, "phoenix intention references a missing object"),
    "ODE142": (Severity.INFO, "phoenix intentions pending"),
    "ODE150": (Severity.ERROR, "interior WAL corruption"),
    "ODE151": (Severity.ERROR, "database cannot be opened"),
    "ODE152": (Severity.INFO, "torn WAL tail (recoverable)"),
}


@dataclasses.dataclass(frozen=True)
class Finding:
    """One fsck finding with a stable code."""

    code: str
    message: str
    severity: Severity | None = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown fsck code {self.code!r}")
        if self.severity is None:
            object.__setattr__(self, "severity", CODES[self.code][0])

    @property
    def title(self) -> str:
        return CODES[self.code][1]

    def render(self) -> str:
        return f"{self.code} {self.severity}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "title": self.title,
            "message": self.message,
        }


@dataclasses.dataclass
class FsckReport:
    """Findings plus the coverage counters of one fsck run."""

    path: str
    findings: list[Finding] = dataclasses.field(default_factory=list)
    pages_scanned: int = 0
    records_scanned: int = 0
    trigger_states_scanned: int = 0
    intentions_scanned: int = 0

    def add(self, code: str, message: str) -> None:
        self.findings.append(Finding(code, message))

    def by_code(self, code: str) -> list[Finding]:
        return [f for f in self.findings if f.code == code]

    @property
    def ok(self) -> bool:
        """Clean = nothing at warning severity or above."""
        return all(f.severity < Severity.WARNING for f in self.findings)

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        errors = sum(1 for f in self.findings if f.severity >= Severity.ERROR)
        warnings = sum(1 for f in self.findings if f.severity == Severity.WARNING)
        lines.append(
            f"{self.path}: {self.pages_scanned} page(s), "
            f"{self.records_scanned} record(s), "
            f"{self.trigger_states_scanned} trigger state(s), "
            f"{self.intentions_scanned} intention(s) checked — "
            f"{errors} error(s), {warnings} warning(s)"
        )
        lines.append("clean" if self.ok else "NOT CLEAN")
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "path": self.path,
                "ok": self.ok,
                "pages_scanned": self.pages_scanned,
                "records_scanned": self.records_scanned,
                "trigger_states_scanned": self.trigger_states_scanned,
                "intentions_scanned": self.intentions_scanned,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )


# ---------------------------------------------------------------------------
# Physical pass (disk engine files, read-only)
# ---------------------------------------------------------------------------

_PAGE_HEADER = struct.Struct("<HH")  # slot_count, free_end
_SLOT = struct.Struct("<HH")
_CRC = struct.Struct("<I")
_FWD = struct.Struct("<q")
_MAGIC = b"ODEREPRO"

_FLAG_INLINE = 0
_FLAG_FORWARD = 1
_FLAG_MOVED = 2
_FLAG_SEGMENT = 3
_SLOT_BITS = 16


def _page_checksum_ok(raw: bytes) -> bool:
    (stored,) = _CRC.unpack_from(raw, USABLE_END)
    if stored == zlib.crc32(raw[:USABLE_END]):
        return True
    return not any(raw)  # never-initialized page


def _scan_page_records(
    report: FsckReport, page_no: int, raw: bytes
) -> dict[int, bytes]:
    """Structural checks on one slotted page; returns rid -> payload."""
    records: dict[int, bytes] = {}
    slot_count, free_end = _PAGE_HEADER.unpack_from(raw, 0)
    directory_end = _PAGE_HEADER.size + slot_count * _SLOT.size
    if free_end > USABLE_END or directory_end > free_end:
        report.add(
            "ODE102",
            f"page {page_no}: header out of bounds "
            f"(slots={slot_count}, free_end={free_end})",
        )
        return records
    for slot_no in range(slot_count):
        offset, length = _SLOT.unpack_from(raw, _PAGE_HEADER.size + slot_no * _SLOT.size)
        if offset == TOMBSTONE:
            continue
        rid = (page_no << _SLOT_BITS) | slot_no
        if offset < directory_end or offset + length > USABLE_END:
            report.add(
                "ODE102",
                f"page {page_no} slot {slot_no}: record "
                f"[{offset}, {offset + length}) outside the heap",
            )
            continue
        payload = raw[offset : offset + length]
        if not payload or payload[0] not in (
            _FLAG_INLINE,
            _FLAG_FORWARD,
            _FLAG_MOVED,
            _FLAG_SEGMENT,
        ):
            flag = payload[0] if payload else None
            report.add("ODE103", f"rid {rid}: flag byte {flag!r}")
            continue
        records[rid] = payload
        report.records_scanned += 1
    return records


def _check_record_graph(report: FsckReport, records: dict[int, bytes]) -> None:
    """Forward pointers and body-segment chains must form a clean graph."""
    referenced: set[int] = set()
    for rid, payload in records.items():
        if payload[0] != _FLAG_FORWARD:
            continue
        if len(payload) < 1 + _FWD.size:
            report.add("ODE104", f"rid {rid}: truncated forward pointer")
            continue
        (target,) = _FWD.unpack_from(payload, 1)
        # Walk the body chain to its terminal segment.
        seen: set[int] = set()
        while True:
            if target in seen:
                report.add("ODE104", f"rid {rid}: body chain loops at {target}")
                break
            seen.add(target)
            body = records.get(target)
            if body is None:
                report.add(
                    "ODE104", f"rid {rid}: body chain dangles at rid {target}"
                )
                break
            if body[0] == _FLAG_MOVED:
                break
            if body[0] != _FLAG_SEGMENT or len(body) < 1 + _FWD.size:
                report.add(
                    "ODE104",
                    f"rid {rid}: body chain hits non-body rid {target}",
                )
                break
            (target,) = _FWD.unpack_from(body, 1)
        referenced.update(seen)
    for rid, payload in records.items():
        if payload[0] in (_FLAG_MOVED, _FLAG_SEGMENT) and rid not in referenced:
            report.add("ODE105", f"rid {rid}: body record has no referrer")


def fsck_physical(path: str, report: FsckReport) -> None:
    """Read-only scan of the disk engine's ``.data`` and ``.wal`` files."""
    data_path = path + ".data"
    try:
        with open(data_path, "rb") as fh:
            raw = fh.read()
    except FileNotFoundError:
        report.add("ODE151", f"{data_path}: no such file")
        return
    if len(raw) % PAGE_SIZE:
        report.add(
            "ODE100",
            f"{data_path}: {len(raw)} bytes is not a whole number of pages "
            f"({len(raw) % PAGE_SIZE} trailing bytes)",
        )
    num_pages = len(raw) // PAGE_SIZE
    records: dict[int, bytes] = {}
    for page_no in range(num_pages):
        page = raw[page_no * PAGE_SIZE : (page_no + 1) * PAGE_SIZE]
        report.pages_scanned += 1
        if not _page_checksum_ok(page):
            (stored,) = _CRC.unpack_from(page, USABLE_END)
            report.add(
                "ODE101",
                f"page {page_no}: stored {stored:#010x} != "
                f"computed {zlib.crc32(page[:USABLE_END]):#010x}",
            )
            continue  # structure checks on a corrupt page are noise
        if page_no == 0:
            # A zero body is an interrupted bootstrap (recovery finishes
            # it on the next open), not corruption.
            if page[: len(_MAGIC)] != _MAGIC and any(page[:USABLE_END]):
                report.add("ODE106", f"{data_path}: bad magic in page 0")
            continue
        if not any(page[:USABLE_END]):
            continue  # allocated but never flushed: valid empty state
        records.update(_scan_page_records(report, page_no, page))
    _check_record_graph(report, records)
    _check_wal_file(path + ".wal", report)


def _check_wal_file(wal_path: str, report: FsckReport) -> None:
    from repro.storage.wal import _FRAME, WriteAheadLog

    try:
        with open(wal_path, "rb") as fh:
            buf = fh.read()
    except FileNotFoundError:
        return  # no log is a valid (checkpointed or fresh) state
    offset = 0
    count = 0
    while len(buf) - offset >= _FRAME.size:
        payload_len, crc = _FRAME.unpack_from(buf, offset)
        payload = buf[offset + _FRAME.size : offset + _FRAME.size + payload_len]
        if len(payload) < payload_len or zlib.crc32(payload) != crc:
            try:
                WriteAheadLog._check_interior_corruption(buf, offset, count)
            except WALError as exc:
                salvage = getattr(exc, "salvage", {})
                report.add("ODE150", f"{wal_path}: {exc} (salvage: {salvage})")
            else:
                report.add(
                    "ODE152",
                    f"{wal_path}: torn tail at byte {offset} "
                    f"({count} intact record(s) precede it)",
                )
            return
        count += 1
        offset += _FRAME.size + payload_len
    if offset < len(buf):
        report.add(
            "ODE152",
            f"{wal_path}: {len(buf) - offset} trailing byte(s) after "
            f"{count} intact record(s)",
        )


# ---------------------------------------------------------------------------
# Logical pass (through an open database — recovery has already run)
# ---------------------------------------------------------------------------

_TRIGGER_STATE_KEYS = frozenset(
    {"triggernum", "trigobj", "statenum", "trigobjtype", "params"}
)


def _collect_ptrs(value, out: list[PersistentPtr]) -> None:
    if isinstance(value, PersistentPtr):
        out.append(value)
    elif isinstance(value, dict):
        for v in value.values():
            _collect_ptrs(v, out)
    elif isinstance(value, (list, tuple)):
        for v in value:
            _collect_ptrs(v, out)


def fsck_logical(db, report: FsckReport) -> None:
    """Consistency checks that need the engine: catalog, B-trees,
    trigger states, phoenix queue."""
    from repro.storage.btree import BTree

    with db.txn_manager.transaction(system=True) as txn:
        # Catalog referential integrity.
        catalog = db._read_catalog(txn)
        for key, rid in sorted(catalog.items()):
            try:
                db.storage.read(txn.txid, rid)
            except OdeError:
                report.add("ODE110", f"catalog {key!r} -> rid {rid} is unreadable")

        # B-tree invariants for every registered index.
        for key, header_rid in sorted(catalog.items()):
            if not key.startswith("index:"):
                continue
            try:
                tree = BTree(db.storage, header_rid)
                for problem in tree.check_invariants(txn.txid):
                    report.add("ODE120", f"{key}: {problem}")
            except OdeError as exc:
                report.add("ODE121", f"{key}: {exc}")

        # Trigger index -> state records (missing/corrupt/mismatched).
        # A type that simply is not imported in this process is an
        # environment gap, not corruption — report it as a skipped check.
        for problem in db.trigger_system.verify_integrity():
            if "is not registered in this process" in problem:
                report.add("ODE132", problem)
            else:
                report.add("ODE130", problem)

        # Reverse direction: every TriggerState record must be indexed.
        indexed: set[int] = set()
        for _, state_rids in db.trigger_system.index.entries(txn):
            indexed.update(state_rids)
        phoenix_rid = catalog.get("phoenix_queue")
        for rid, raw in db.storage.scan(txn.txid):
            try:
                value, _ = decode_value(raw, 0)
            except Exception:
                continue  # object records use a different encoding
            if (
                isinstance(value, dict)
                and frozenset(value.keys()) == _TRIGGER_STATE_KEYS
            ):
                report.trigger_states_scanned += 1
                if rid not in indexed:
                    report.add(
                        "ODE131",
                        f"rid {rid}: TriggerState for object "
                        f"{value['trigobj']} is not in the trigger index",
                    )

        # Phoenix queue: shape, pending count, dangling payload pointers.
        if phoenix_rid is not None:
            try:
                value, _ = decode_value(db.storage.read(txn.txid, phoenix_rid), 0)
            except Exception as exc:
                report.add("ODE140", f"phoenix queue rid {phoenix_rid}: {exc}")
                return
            if not isinstance(value, list):
                report.add(
                    "ODE140",
                    f"phoenix queue rid {phoenix_rid}: expected a list, "
                    f"got {type(value).__name__}",
                )
                return
            for i, intention in enumerate(value):
                report.intentions_scanned += 1
                if (
                    not isinstance(intention, dict)
                    or "kind" not in intention
                    or "payload" not in intention
                ):
                    report.add("ODE140", f"intention #{i} is malformed")
                    continue
                ptrs: list[PersistentPtr] = []
                _collect_ptrs(intention["payload"], ptrs)
                for ptr in ptrs:
                    if ptr.is_null() or ptr.db_name != db.name:
                        continue
                    if not db.storage.exists(txn.txid, ptr.rid):
                        report.add(
                            "ODE141",
                            f"intention #{i} ({intention['kind']!r}) "
                            f"references missing rid {ptr.rid}",
                        )
            if value:
                report.add(
                    "ODE142",
                    f"{len(value)} intention(s) queued (will run at next drain)",
                )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def fsck_database(db) -> FsckReport:
    """Logical pass over an already-open database (used by the harness)."""
    report = FsckReport(path=db.path or db.name)
    fsck_logical(db, report)
    return report


def fsck(path: str, engine: str = "disk") -> FsckReport:
    """Full check of the database at *path*.

    The physical pass reads the files as they are; opening the database
    for the logical pass runs crash recovery (and a checkpoint), exactly
    like an fsck replaying a journal — so a recoverable crash state comes
    out clean, while real corruption is reported.
    """
    from repro.objects.database import Database

    report = FsckReport(path=path)
    if engine == "disk":
        fsck_physical(path, report)
        if not os.path.exists(path + ".data"):
            return report
    elif not (os.path.exists(path + ".snap") or os.path.exists(path + ".oplog")):
        report.add("ODE151", f"{path}: no snapshot or op-log")
        return report
    try:
        db = Database.open(path, engine=engine, name=f"fsck:{path}")
    except OdeError as exc:
        report.add("ODE151", f"{path}: open failed: {exc}")
        return report
    try:
        fsck_logical(db, report)
    finally:
        db.close()
    return report
