"""The Ode object manager.

O++ extends C++ with *persistent objects*: objects allocated with ``pnew``
in persistent store, identified by persistent pointers, and manipulated
through those pointers.  This package reproduces that model in Python:

* :class:`~repro.objects.persistent.Persistent` — base class whose
  subclasses declare typed fields with :func:`~repro.objects.schema.field`;
  plain instances are *volatile* objects, untouched by any database or
  trigger machinery.
* :class:`~repro.objects.oid.PersistentPtr` — the persistent pointer.
* :class:`~repro.objects.database.Database` — ``pnew`` / ``pdelete`` /
  ``deref``, transactions, clusters, and a catalog persisted through a
  :class:`~repro.storage.interface.StorageManager` (disk or main-memory,
  exactly like Ode vs. MM-Ode).
* :class:`~repro.objects.handle.PersistentHandle` — the proxy returned by
  ``deref``; method calls through a handle run the compiler-generated
  wrapper functions that post trigger events (paper Section 5.3), while
  volatile instances call the original methods directly, preserving the
  design goal that volatile objects pay no trigger overhead.
"""

from repro.objects.cluster import Cluster
from repro.objects.database import Database
from repro.objects.handle import PersistentHandle
from repro.objects.metatype import Metatype, TypeRegistry, global_type_registry
from repro.objects.oid import NULL_PTR, PersistentPtr
from repro.objects.persistent import Persistent
from repro.objects.schema import Field, field

__all__ = [
    "NULL_PTR",
    "Cluster",
    "Database",
    "Field",
    "Metatype",
    "Persistent",
    "PersistentHandle",
    "PersistentPtr",
    "TypeRegistry",
    "field",
    "global_type_registry",
]
