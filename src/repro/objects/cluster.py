"""Clusters — per-class collections of persistent objects.

O++ organizes persistent objects into clusters and lets programs iterate
over "clusters of persistent objects" (paper Section 1).  We keep one
cluster per concrete class, implemented on the bucketed
:class:`~repro.objects.pmap.PersistentMap`; ``Database.objects(cls)`` can
merge the clusters of registered subclasses, matching the O++ view that a
``for x in CredCard`` loop sees derived-class objects too.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.objects.pmap import PersistentMap

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database
    from repro.objects.oid import PersistentPtr
    from repro.transactions.txn import Transaction


class Cluster:
    """The extent of one concrete persistent class in one database."""

    def __init__(self, db: "Database", class_name: str):
        self.db = db
        self.class_name = class_name
        self._map = PersistentMap(db, f"cluster:{class_name}")

    def add(self, txn: "Transaction", rid: int) -> None:
        self._map.put(txn, str(rid), True)

    def discard(self, txn: "Transaction", rid: int) -> bool:
        return self._map.remove(txn, str(rid))

    def rids(self, txn: "Transaction") -> Iterator[int]:
        for key, _ in self._map.items(txn):
            yield int(key)

    def pointers(self, txn: "Transaction") -> Iterator["PersistentPtr"]:
        from repro.objects.oid import PersistentPtr

        for rid in self.rids(txn):
            yield PersistentPtr(self.db.name, rid)

    def count(self, txn: "Transaction") -> int:
        return self._map.count(txn)
