"""The database: ``pnew`` / ``pdelete`` / ``deref``, catalog, clusters.

A :class:`Database` ties together a storage manager (disk or main-memory),
a transaction manager, the phoenix intention queue, and — attached at open
time — the trigger system.  Objects are cached per transaction: ``deref``
returns the same instance for the same rid within a transaction, mutation
marks it dirty, and the transaction manager writes dirty objects back right
before the storage commit.  Aborts simply drop the cache; everything that
*was* written through the storage manager (trigger states, index buckets,
catalog updates) is rolled back by the engine, which is exactly how the
paper gets event roll-back "using standard transaction roll-back of the
triggers' states" (Section 5.5).
"""

from __future__ import annotations

import os
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Any

from repro import obs
from repro.errors import (
    DanglingPointerError,
    DatabaseClosedError,
    DatabaseError,
    ObjectError,
    RecordNotFoundError,
    SessionError,
    TriggerError,
)
from repro.objects.cluster import Cluster
from repro.objects.handle import PersistentHandle
from repro.objects.metatype import TypeRegistry, global_type_registry
from repro.objects.oid import PersistentPtr
from repro.objects.persistent import Persistent
from repro.objects.serialize import decode_object, decode_value, encode_object, encode_value
from repro.sessions.session import Session, SessionStats, current_ambient_session
from repro.storage import open_storage
from repro.storage.locks import LockMode
from repro.transactions.manager import TransactionManager
from repro.transactions.phoenix import PhoenixQueue
from repro.transactions.txn import Transaction


class Database:
    """One open Ode database."""

    _open_databases: dict[str, "Database"] = {}
    _open_lock = threading.Lock()

    #: Valid values for the trigger-state concurrency-control A/B switch.
    TRIGGER_CC_SCHEMES = ("2pl", "mvcc")

    def __init__(
        self,
        path: str | None,
        engine: str = "disk",
        name: str | None = None,
        type_registry: TypeRegistry | None = None,
        trigger_cc: str = "2pl",
        mvcc_conflict: str = "replay",
        **engine_kwargs: Any,
    ):
        if trigger_cc not in Database.TRIGGER_CC_SCHEMES:
            raise DatabaseError(
                f"unknown trigger_cc {trigger_cc!r}; "
                f"expected one of {Database.TRIGGER_CC_SCHEMES}"
            )
        from repro.core.versioned import CONFLICT_POLICIES

        if mvcc_conflict not in CONFLICT_POLICIES:
            raise DatabaseError(
                f"unknown mvcc_conflict {mvcc_conflict!r}; "
                f"expected one of {CONFLICT_POLICIES}"
            )
        self.trigger_cc = trigger_cc
        self.mvcc_conflict = mvcc_conflict
        if name is None:
            if path is None:
                raise DatabaseError("a database without a path needs an explicit name")
            name = os.path.basename(str(path))
        with Database._open_lock:
            if name in Database._open_databases:
                raise DatabaseError(f"a database named {name!r} is already open")
        self.name = name
        self.path = str(path) if path is not None else None
        self.engine = engine
        self.registry = type_registry or global_type_registry()
        if engine == "mm":
            self.storage = open_storage(path, engine="mm", **engine_kwargs)
        else:
            self.storage = open_storage(path, engine=engine, **engine_kwargs)
        try:
            # One metrics namespace per database: the per-layer stats
            # dataclasses mount here (posting.* joins when the trigger
            # system attaches, timers.* when a TimerService is created).
            from repro.obs.metrics import MetricsRegistry

            self.metrics = MetricsRegistry()
            self.metrics.register_source("storage", self.storage.stats)
            self.metrics.register_source("locks", self.storage.lock_manager.stats)
            from repro.storage.wal import WalStatsView

            self.metrics.register_source("wal", WalStatsView(self.storage.stats))
            self.storage.degrade_listener = self._on_degraded
            self.txn_manager = TransactionManager(self)
            self.phoenix = PhoenixQueue(self)
            self._catalog_rid: int | None = None
            self._clusters: dict[str, Cluster] = {}
            self._clusters_lock = threading.Lock()
            self._closed = False
            # Sessions: the default one carries the serial API; Database.
            # session() opens more, flipping the lock manager to blocking.
            self.session_stats = SessionStats()
            self.session_stats.opened = 1
            self.session_stats.peak_concurrent = 1
            self._sessions_lock = threading.Lock()
            self._default_session = Session(self, "main", default=True)
            self._sessions: list[Session] = [self._default_session]
            self.metrics.register_source("sessions", self.session_stats)
            from repro.core.registry import global_event_registry

            self.metrics.register_source("events", global_event_registry())
            # Attached below; kept as an attribute so the object layer has no
            # import-time dependency on the trigger system.
            self.trigger_system = None
            self._bootstrap()
            self._attach_trigger_system()
            with Database._open_lock:
                if name in Database._open_databases:
                    raise DatabaseError(
                        f"a database named {name!r} is already open"
                    )
                Database._open_databases[name] = self
            # Crash-restart semantics: finish any phoenix intentions left
            # over.  Non-strict: kinds whose handlers are registered later
            # stay queued.
            self.phoenix.drain(strict=False)
        except BaseException:
            # The open-time drain (or bootstrap) died — possibly an
            # injected crash.  Release the name and the storage fds so the
            # process can reopen this path; on-disk state is left exactly
            # as the failure left it.
            Database._open_databases.pop(name, None)
            self.storage.simulate_crash()
            raise

    # -- class-level lookup -----------------------------------------------------

    @classmethod
    def open(cls, path: str | None, engine: str = "disk", **kwargs: Any) -> "Database":
        """Open (creating if absent) the database at *path*."""
        return cls(path, engine=engine, **kwargs)

    @classmethod
    def named(cls, name: str) -> "Database":
        """The open database called *name* (used to resolve pointers)."""
        try:
            return cls._open_databases[name]
        except KeyError:
            raise DatabaseError(f"no open database named {name!r}") from None

    @classmethod
    def of(cls, ptr: PersistentPtr) -> "Database":
        """``database::ofdatabase(ptr)`` — the database *ptr* points into."""
        return cls.named(ptr.db_name)

    # -- bootstrap -----------------------------------------------------------------

    def _bootstrap(self) -> None:
        if self.storage.get_root() == self.storage.NO_ROOT:
            txn = self.txn_manager.begin(system=True)
            out = bytearray()
            encode_value({}, out)
            rid = self.storage.insert(txn.txid, bytes(out))
            self.storage.set_root(txn.txid, rid)
            self.txn_manager.commit(txn)
        self._catalog_rid = self.storage.get_root()

    def _attach_trigger_system(self) -> None:
        from repro.core.manager import TriggerSystem

        self.trigger_system = TriggerSystem(self)

    # -- catalog ------------------------------------------------------------------------

    def _read_catalog(self, txn: Transaction) -> dict[str, int]:
        raw = self.storage.read(txn.txid, self._catalog_rid)
        value, _ = decode_value(raw, 0)
        return dict(value)

    def catalog_get(self, key: str) -> int | None:
        """Look up *key* in the catalog within the current transaction."""
        txn = self.txn_manager.current()
        return self._read_catalog(txn).get(key)

    def catalog_set(self, txn: Transaction, key: str, rid: int) -> None:
        catalog = self._read_catalog(txn)
        catalog[key] = rid
        out = bytearray()
        encode_value(catalog, out)
        self.storage.write(txn.txid, self._catalog_rid, bytes(out))

    # -- object operations ---------------------------------------------------------------

    def pnew(self, cls: type, *args: Any, **kwargs: Any) -> PersistentHandle:
        """Allocate a persistent object (O++ ``pnew``); returns its handle."""
        self._check_open()
        if not (isinstance(cls, type) and issubclass(cls, Persistent)):
            raise ObjectError(f"{cls!r} is not a Persistent subclass")
        txn = self.txn_manager.current()
        instance = cls(*args, **kwargs)
        data = encode_object(cls.__name__, instance.to_fields(), flags=0)
        rid = self.storage.insert(txn.txid, data)
        ptr = PersistentPtr(self.name, rid)
        instance.__dict__["_p_ptr"] = ptr
        instance.__dict__["_p_flags"] = 0
        self.cluster(cls).add(txn, rid)
        txn.cache[rid] = instance
        for index in self._indexes_for(txn, cls):
            index.on_insert(txn, rid, instance.__dict__.get(index.field_name))
        handle = PersistentHandle(self, ptr, instance, self.current_session())
        if self.trigger_system is not None:
            self.trigger_system.on_access(txn, ptr, instance)
            from repro.core.constraints import activate_constraints, constraint_infos

            if constraint_infos(cls):
                activate_constraints(self, handle)
        return handle

    def deref(self, ptr: PersistentPtr) -> PersistentHandle:
        """Dereference a persistent pointer within the current transaction."""
        self._check_open()
        if ptr.is_null():
            raise DanglingPointerError("cannot dereference the null pointer")
        if ptr.db_name != self.name:
            return Database.named(ptr.db_name).deref(ptr)
        txn = self.txn_manager.current()
        instance = txn.cache.get(ptr.rid)
        if instance is None:
            try:
                raw = self.storage.read(txn.txid, ptr.rid)
            except RecordNotFoundError:
                raise DanglingPointerError(f"{ptr!r} points to no object") from None
            type_name, fields, flags = decode_object(raw)
            cls = self.registry.find(type_name).pyclass
            instance = cls.from_fields(fields)
            instance.__dict__["_p_ptr"] = ptr
            instance.__dict__["_p_flags"] = flags
            txn.cache[ptr.rid] = instance
            if self.trigger_system is not None:
                self.trigger_system.on_access(txn, ptr, instance)
        return PersistentHandle(self, ptr, instance, self.current_session())

    def post_many(self, items) -> int:
        """Post a batch of user-defined events in the current transaction.

        *items* is an iterable of ``(target, event_name)`` pairs where
        *target* is a :class:`PersistentHandle` or a
        :class:`~repro.objects.oid.PersistentPtr`.  Equivalent to
        ``handle.post_event(name)`` per pair — same order, same firing
        semantics — but the per-posting fixed costs (transaction
        resolution, trigger-index lookups, compiled-tier cache probes)
        are amortized across the batch; see
        :func:`repro.core.posting.post_many`.  Returns total firings.
        """
        self._check_open()
        if self.trigger_system is None:
            raise TriggerError("this database has no trigger system attached")
        resolved = []
        for target, name in items:
            handle = (
                target
                if isinstance(target, PersistentHandle)
                else self.deref(target)
            )
            resolved.append((handle.ptr, handle.obj, name))
        return self.trigger_system.post_many(self, resolved)

    def pdelete(self, ptr: PersistentPtr) -> None:
        """Free a persistent object (O++ ``pdelete``)."""
        self._check_open()
        txn = self.txn_manager.current()
        handle = self.deref(ptr)  # also validates the pointer
        for index in self._indexes_for(txn, type(handle.obj)):
            index.on_delete(
                txn, ptr.rid, handle.obj.__dict__.get(index.field_name)
            )
        if self.trigger_system is not None:
            self.trigger_system.on_pdelete(self, ptr)
        self.storage.delete(txn.txid, ptr.rid)
        self.cluster(type(handle.obj)).discard(txn, ptr.rid)
        txn.cache.pop(ptr.rid, None)
        txn.dirty.discard(ptr.rid)

    # -- secondary indexes (disk Ode only; see repro.objects.index) -------------

    def create_index(self, cls: type, field_name: str):
        """Build and register a B-tree index on ``cls.field_name``."""
        from repro.objects.index import create_index

        index = create_index(self, cls, field_name)
        txn = self.txn_manager.current()
        txn.attachments.pop("db:indexes", None)  # refresh the per-txn cache
        return index

    def _active_indexes(self, txn: Transaction) -> list:
        """All registered indexes, cached per transaction."""
        from repro.objects.index import FieldIndex
        from repro.storage.btree import BTree

        def load():
            indexes = []
            for key, header_rid in self._read_catalog(txn).items():
                if not key.startswith("index:"):
                    continue
                class_name, field_name = key[len("index:") :].rsplit(".", 1)
                indexes.append(
                    FieldIndex(
                        self, class_name, field_name, BTree(self.storage, header_rid)
                    )
                )
            return indexes

        return txn.attachment("db:indexes", load)

    def _indexes_for(self, txn: Transaction, cls: type) -> list:
        return [idx for idx in self._active_indexes(txn) if idx.applies_to(cls)]

    def find(self, cls: type, field_name: str, value) -> list[PersistentHandle]:
        """Exact-match index lookup; returns handles."""
        from repro.objects.index import load_index

        txn = self.txn_manager.current()
        index = load_index(self, cls.__name__, field_name)
        if index is None:
            raise ObjectError(
                f"no index on {cls.__name__}.{field_name}; create_index first"
            )
        return [
            self.deref(PersistentPtr(self.name, rid))
            for rid in index.lookup(txn, value)
        ]

    def find_range(self, cls: type, field_name: str, lo, hi) -> Iterator[PersistentHandle]:
        """Range index scan (inclusive bounds; None = open end)."""
        from repro.objects.index import load_index

        txn = self.txn_manager.current()
        index = load_index(self, cls.__name__, field_name)
        if index is None:
            raise ObjectError(
                f"no index on {cls.__name__}.{field_name}; create_index first"
            )
        for rid in index.lookup_range(txn, lo, hi):
            yield self.deref(PersistentPtr(self.name, rid))

    def mark_dirty(self, instance: Persistent) -> None:
        """Record a mutation of a cached persistent object (acquires X lock)."""
        ptr: PersistentPtr | None = instance.__dict__.get("_p_ptr")
        if ptr is None:
            return  # volatile object: nothing to do
        txn = self.txn_manager.current()
        self.storage.lock_manager.lock(txn.txid, ptr.rid, LockMode.X)
        txn.cache.setdefault(ptr.rid, instance)
        txn.mark_dirty(ptr.rid)

    def flush_transaction(self, txn: Transaction) -> None:
        """Write every dirty cached object back to storage (pre-commit)."""
        for rid in sorted(txn.dirty):
            instance = txn.cache.get(rid)
            if instance is None:
                continue  # deleted after being dirtied
            indexes = self._indexes_for(txn, type(instance))
            if indexes:
                old_fields = decode_object(self.storage.read(txn.txid, rid))[1]
                for index in indexes:
                    index.on_update(
                        txn,
                        rid,
                        old_fields.get(index.field_name),
                        instance.__dict__.get(index.field_name),
                    )
            flags = instance.__dict__.get("_p_flags", 0)
            data = encode_object(type(instance).__name__, instance.to_fields(), flags)
            self.storage.write(txn.txid, rid, data)
        txn.dirty.clear()

    def set_object_flags(self, ptr: PersistentPtr, flags: int) -> None:
        """Update an object's control-information flags (persisted at commit)."""
        handle = self.deref(ptr)
        handle.obj.__dict__["_p_flags"] = flags
        self.mark_dirty(handle.obj)

    # -- clusters -------------------------------------------------------------------------

    def cluster(self, cls: type) -> Cluster:
        name = cls.__name__ if isinstance(cls, type) else str(cls)
        cluster = self._clusters.get(name)
        if cluster is None:
            with self._clusters_lock:
                cluster = self._clusters.get(name)
                if cluster is None:
                    cluster = self._clusters[name] = Cluster(self, name)
        return cluster

    def objects(self, cls: type, include_derived: bool = True) -> Iterator[PersistentHandle]:
        """Iterate the persistent objects of *cls* (and subclasses) as handles."""
        self._check_open()
        txn = self.txn_manager.current()
        metatype = self.registry.require_by_class(cls)
        metatypes = (
            self.registry.subclasses_of(metatype) if include_derived else [metatype]
        )
        for mt in metatypes:
            for rid in self.cluster(mt.pyclass).rids(txn):
                yield self.deref(PersistentPtr(self.name, rid))

    # -- sessions (DESIGN.md §11) -------------------------------------------------

    def session(self, name: str | None = None) -> Session:
        """Open a new concurrent session (one more "application").

        Opening a second live session switches the lock manager to
        *blocking* mode: an incompatible lock request now waits (cooperative
        yield or condition variable) for the holder's commit instead of
        raising.  The serial API keeps using the built-in default session.
        """
        self._check_open()
        with self._sessions_lock:
            if name is None:
                name = f"session-{self.session_stats.opened}"
            if any(s.name == name and not s.closed for s in self._sessions):
                raise SessionError(
                    f"a session named {name!r} is already open on {self.name!r}"
                )
            sess = Session(self, name)
            self._sessions.append(sess)
            self.session_stats.opened += 1
            live = sum(1 for s in self._sessions if not s.closed)
            if live > self.session_stats.peak_concurrent:
                self.session_stats.peak_concurrent = live
            if live > 1:
                # Sticky: stays blocking for the rest of this open — a
                # closed session's handles may still be in flight.
                self.storage.lock_manager.blocking = True
        return sess

    def current_session(self) -> Session:
        """The calling thread's ambient session, or the default one."""
        ambient = current_ambient_session()
        if ambient is not None and ambient.db is self:
            return ambient
        return self._default_session

    def default_session(self) -> Session:
        return self._default_session

    def sessions(self) -> list[Session]:
        """The sessions currently open on this database."""
        with self._sessions_lock:
            return [s for s in self._sessions if not s.closed]

    def _session_closed(self, session: Session) -> None:
        with self._sessions_lock:
            if session in self._sessions and session is not self._default_session:
                self._sessions.remove(session)
            self.session_stats.closed += 1

    # -- transactions -----------------------------------------------------------------------

    @contextmanager
    def transaction(self):
        """O++ transaction block: commit on success, ``tabort`` aborts quietly."""
        with self.txn_manager.transaction() as txn:
            yield txn

    # -- static analysis ----------------------------------------------------------------------

    def check_triggers(
        self,
        targets=None,
        *,
        strict: bool = False,
        concurrency: bool = False,
        confirm_witnesses: bool = False,
        compilability: bool = False,
    ):
        """Run the static trigger analyzer against this database.

        *targets* restricts the declaration-level passes to an iterable of
        persistent classes (or metatypes); by default every registered
        active class is analyzed, plus the ODE050/ODE051 pass over this
        database's persistent trigger states.  Returns the
        :class:`repro.analysis.AnalysisReport`.

        With ``strict=True``, any unsuppressed *termination* finding
        (ODE030/ODE031/ODE200/ODE201 — a trigger set the analyzer cannot
        prove terminating) raises :class:`TriggerDeclarationError` instead
        of being returned, turning non-termination into a declaration-time
        error for deployments that want the guarantee.

        ``concurrency=True`` adds the ODE3xx lock-footprint pass (Section
        6 read→write amplification, predicted deadlock cycles);
        ``confirm_witnesses=True`` additionally replays synthesized
        interleavings on a scratch database to tag predictions
        CONFIRMED/POSSIBLE.

        ``compilability=True`` adds the ODE4xx pass: which triggers may
        the generated-code posting tier specialize, with a diagnostic
        naming the reason for every refusal (advisory — flagged triggers
        post through the interpreter).
        """
        from repro.analysis import analyze_classes, analyze_database, analyze_registry
        from repro.analysis.cascade import TERMINATION_CODES
        from repro.errors import TriggerDeclarationError

        self._check_open()
        if targets is None:
            report = analyze_registry(
                self.registry,
                concurrency=concurrency,
                confirm_witnesses=confirm_witnesses,
                compilability=compilability,
            )
        else:
            report = analyze_classes(
                targets,
                concurrency=concurrency,
                confirm_witnesses=confirm_witnesses,
                compilability=compilability,
            )
        report.extend(analyze_database(self).diagnostics)
        if strict:
            unresolved = [
                d for d in report.diagnostics if d.code in TERMINATION_CODES
            ]
            if unresolved:
                from repro.analysis import render_text

                raise TriggerDeclarationError(
                    "check_triggers(strict=True): the analyzer cannot prove "
                    "this trigger set terminates:\n" + render_text(unresolved)
                )
        return report

    # -- lifecycle ----------------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise DatabaseClosedError(f"database {self.name!r} is closed")

    def close(self) -> None:
        if self._closed:
            return
        self.storage.close()
        self._closed = True
        with Database._open_lock:
            Database._open_databases.pop(self.name, None)

    def simulate_crash(self) -> None:
        """Kill the process's view of this database without flushing."""
        if self._closed:
            return
        # A dead process never releases its locks: wake every parked
        # session with an error instead of leaving it to hang.
        self.storage.lock_manager.poison(f"database {self.name!r} crashed")
        self.storage.simulate_crash()
        self._closed = True
        Database._open_databases.pop(self.name, None)

    # -- degradation (active → read-only; DESIGN §13) ---------------------------

    @property
    def read_only(self) -> bool:
        """Whether the database has degraded to read-only after media death."""
        return self.storage.degraded

    def _on_degraded(self) -> None:
        """Storage's active → read-only transition: count it and tell obs.

        In-flight writers abort with :class:`ReadOnlyStorageError` on their
        next mutation or commit (their aborts release locks, which wakes
        their waiters); readers keep working against committed state.
        """
        self.metrics.counter("faults.degraded").inc()
        if obs.ENABLED:
            obs.emit("storage.degraded", db=self.name, engine=self.engine)
