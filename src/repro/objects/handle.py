"""Persistent handles — the run-time form of ``persistent T *``.

The O++ compiler rewrites member-function invocations *through persistent
pointers* into calls of generated wrapper functions that post ``before``/
``after`` events (paper Section 5.3).  Python has no pointer types to
rewrite, so dereferencing returns a :class:`PersistentHandle` proxy:

* method access consults the class metatype's generated
  ``method_wrappers`` — calls through the handle run the wrapper (post
  events, delegate, mark the object dirty);
* methods without declared events are still wrapped *minimally* to mark the
  object dirty (any method may mutate);
* field reads pass straight through; field writes update the instance and
  mark it dirty (acquiring the write lock immediately — strict 2PL);
* trigger names behave like member functions whose call *activates* the
  trigger, reproducing ``pcred->AutoRaiseLimit(1000.0)``;
* ``post_event`` posts a user-defined (declared) event, the explicit
  posting the paper requires for non-member-function events.

A handle is **bound to the session that dereferenced it**: every operation
through the handle runs with that session ambient, so its reads, writes,
lock acquisitions, and event postings land in the owning session's
transaction even if the handle escapes to other code.  (Serial programs
never notice — their handles are bound to the default session.)

Volatile instances never see a handle, so they pay zero trigger overhead —
design goals 3 and 4.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Any

from repro.errors import TriggerError
from repro.sessions.session import ambient_session

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database
    from repro.objects.oid import PersistentPtr
    from repro.objects.persistent import Persistent
    from repro.sessions.session import Session


class PersistentHandle:
    """Proxy for one persistent object within its session's transaction."""

    __slots__ = ("_db", "_ptr", "_obj", "_session")

    def __init__(
        self,
        db: "Database",
        ptr: "PersistentPtr",
        obj: "Persistent",
        session: "Session | None" = None,
    ):
        object.__setattr__(self, "_db", db)
        object.__setattr__(self, "_ptr", ptr)
        object.__setattr__(self, "_obj", obj)
        object.__setattr__(self, "_session", session)

    # -- identity ------------------------------------------------------------

    @property
    def ptr(self) -> "PersistentPtr":
        return self._ptr

    @property
    def obj(self) -> "Persistent":
        """The cached instance (volatile view of the persistent object)."""
        return self._obj

    @property
    def database(self) -> "Database":
        return self._db

    @property
    def session(self) -> "Session | None":
        """The session this handle is bound to (None on detached handles)."""
        return self._session

    def _scoped(self, fn, *args: Any, **kwargs: Any) -> Any:
        """Run *fn* with this handle's session ambient."""
        if self._session is None:
            return fn(*args, **kwargs)
        with ambient_session(self._session):
            return fn(*args, **kwargs)

    # -- attribute protocol ------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        metatype = type(self._obj).__metatype__
        wrapper = metatype.method_wrappers.get(name)
        if wrapper is not None:
            return functools.partial(
                self._scoped, wrapper, self._db, self._ptr, self._obj
            )
        for info in metatype.all_trigger_infos:
            if info.name == name:
                return functools.partial(
                    self._scoped,
                    self._db.trigger_system.activate,
                    self._db,
                    self._ptr,
                    info,
                )
        value = getattr(self._obj, name)
        if callable(value) and not isinstance(value, type):
            return self._dirtying(value)
        return value

    def __setattr__(self, name: str, value: Any) -> None:
        metatype = type(self._obj).__metatype__
        if name not in metatype.fields:
            raise AttributeError(
                f"{metatype.name} has no field {name!r}; only declared fields "
                "may be written through a persistent handle"
            )
        def write() -> None:
            setattr(self._obj, name, value)
            self._db.mark_dirty(self._obj)

        self._scoped(write)

    def _dirtying(self, method):
        """Wrap an event-less method so calling it still marks the object dirty."""

        @functools.wraps(method)
        def call(*args: Any, **kwargs: Any) -> Any:
            def body():
                result = method(*args, **kwargs)
                self._db.mark_dirty(self._obj)
                return result

            return self._scoped(body)

        return call

    # -- events -----------------------------------------------------------------

    def post_event(self, event_name: str) -> None:
        """Explicitly post the user-defined event *event_name* to this object."""
        trigger_system = self._db.trigger_system
        if trigger_system is None:
            raise TriggerError("this database has no trigger system attached")
        self._scoped(
            trigger_system.post_user_event, self._db, self._ptr, self._obj, event_name
        )

    # -- misc ----------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PersistentHandle) and other._ptr == self._ptr

    def __hash__(self) -> int:
        return hash(self._ptr)

    def __repr__(self) -> str:
        return f"<PersistentHandle {self._ptr!r} -> {self._obj!r}>"
