"""Secondary indexes: order-preserving field keys over the B+-tree.

``Database.create_index(cls, field_name)`` builds (and thereafter
maintains) a B-tree mapping a field's value to the rids of the objects
holding it; ``Database.find`` / ``Database.find_range`` query it.

Faithful restriction: the paper ships MM-Ode "with full Ode functionality
(except for B-trees which do not exist in Dali)" — creating an index on a
main-memory database raises, exactly as MM-Ode would refuse.

Key encodings are order-preserving byte strings:

* ints/floats — IEEE-754/two's-complement with the sign trick (flip the
  sign bit for non-negatives, flip everything for negatives), so byte
  order equals numeric order; ints are encoded as floats when they fit
  losslessly, letting mixed int/float fields collate correctly,
* strings — UTF-8 (byte order = code-point order),
* bools — one byte.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator
from typing import TYPE_CHECKING, Any

from repro.errors import ObjectError, SchemaError
from repro.storage.btree import BTree

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database
    from repro.objects.handle import PersistentHandle
    from repro.transactions.txn import Transaction

_F64 = struct.Struct(">d")

_TAG_NONE = b"\x00"
_TAG_BOOL = b"\x01"
_TAG_NUM = b"\x02"
_TAG_STR = b"\x03"


def encode_key(value: Any) -> bytes:
    """Order-preserving encoding of an indexable field value.

    Ordering across types: None < bools < numbers < strings.
    """
    if value is None:
        return _TAG_NONE
    if isinstance(value, bool):
        return _TAG_BOOL + (b"\x01" if value else b"\x00")
    if isinstance(value, (int, float)):
        number = float(value)
        if isinstance(value, int) and int(number) != value:
            raise SchemaError(
                f"integer {value} cannot be indexed losslessly (exceeds f64)"
            )
        if number == 0.0:
            number = 0.0  # -0.0 == 0.0 must encode identically
        raw = bytearray(_F64.pack(number))
        if raw[0] & 0x80:  # negative: flip all bits
            raw = bytearray(b ^ 0xFF for b in raw)
        else:  # non-negative: flip the sign bit
            raw[0] |= 0x80
        return _TAG_NUM + bytes(raw)
    if isinstance(value, str):
        return _TAG_STR + value.encode("utf-8")
    raise SchemaError(f"cannot index values of type {type(value).__name__}")


class FieldIndex:
    """One maintained secondary index on ``cls.field_name``."""

    def __init__(self, db: "Database", class_name: str, field_name: str, tree: BTree):
        self.db = db
        self.class_name = class_name
        self.field_name = field_name
        self.tree = tree

    @property
    def catalog_key(self) -> str:
        return f"index:{self.class_name}.{self.field_name}"

    # -- maintenance (called by the Database) ------------------------------------

    def applies_to(self, cls: type) -> bool:
        from repro.objects.metatype import global_type_registry

        try:
            indexed = global_type_registry().find(self.class_name).pyclass
        except Exception:
            return False
        return issubclass(cls, indexed)

    def on_insert(self, txn: "Transaction", rid: int, value: Any) -> None:
        self.tree.insert(txn.txid, encode_key(value), rid)

    def on_update(self, txn: "Transaction", rid: int, old: Any, new: Any) -> None:
        if old == new and type(old) is type(new):
            return
        self.tree.delete(txn.txid, encode_key(old), rid)
        self.tree.insert(txn.txid, encode_key(new), rid)

    def on_delete(self, txn: "Transaction", rid: int, value: Any) -> None:
        self.tree.delete(txn.txid, encode_key(value), rid)

    # -- queries --------------------------------------------------------------------

    def lookup(self, txn: "Transaction", value: Any) -> list[int]:
        return self.tree.get(txn.txid, encode_key(value))

    def lookup_range(
        self, txn: "Transaction", lo: Any, hi: Any
    ) -> Iterator[int]:
        lo_key = encode_key(lo) if lo is not None else None
        hi_key = encode_key(hi) if hi is not None else None
        for _, rid in self.tree.range(txn.txid, lo_key, hi_key):
            yield rid


def create_index(db: "Database", cls: type, field_name: str) -> FieldIndex:
    """Build and register an index on ``cls.field_name`` (disk Ode only)."""
    if db.engine == "mm":
        raise ObjectError(
            "MM-Ode has no B-trees: the paper's MM-Ode ships 'with full Ode "
            "functionality (except for B-trees which do not exist in Dali)' "
            "(Section 5.6) — open a disk database to use indexes"
        )
    metatype = db.registry.require_by_class(cls)
    if field_name not in metatype.fields:
        raise SchemaError(f"{cls.__name__} has no field {field_name!r}")
    txn = db.txn_manager.current()
    catalog_key = f"index:{cls.__name__}.{field_name}"
    if db.catalog_get(catalog_key) is not None:
        raise ObjectError(f"index on {cls.__name__}.{field_name} already exists")
    tree = BTree.create(db.storage, txn.txid)
    db.catalog_set(txn, catalog_key, tree.header_rid)
    index = FieldIndex(db, cls.__name__, field_name, tree)
    # Backfill from the existing extent (including subclasses).
    for handle in db.objects(cls, include_derived=True):
        value = handle.obj.__dict__.get(field_name)
        index.on_insert(txn, handle.ptr.rid, value)
    return index


def load_index(db: "Database", class_name: str, field_name: str) -> FieldIndex | None:
    """Rehydrate a registered index from the catalog (None if absent)."""
    header_rid = db.catalog_get(f"index:{class_name}.{field_name}")
    if header_rid is None:
        return None
    return FieldIndex(db, class_name, field_name, BTree(db.storage, header_rid))
