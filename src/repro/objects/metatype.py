"""Run-time type descriptors (the paper's compiler-generated ``type_CredCard``).

For every persistent class the O++ compiler generates a *type descriptor*
holding "the machinery for a trigger (e.g. its FSM, its action code, etc.)"
(paper Section 5.4.1).  Our :class:`Metatype` plays that role: the trigger
declaration processor (:mod:`repro.core.declarations`) fills in declared
events, trigger infos, mask functions, and method wrappers at class-creation
time — the Python analogue of recompiling the FSMs with every program, the
strategy the paper chose over persisting FSMs centrally (Section 5.1.3).

A process-global :class:`TypeRegistry` maps stored type names back to
metatypes, which is how ``trigobjtype`` references in persistent trigger
states are resolved when a database is reopened by another "application".
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import UnknownTriggerError, UnknownTypeError
from repro.objects.schema import Field, collect_fields

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.trigger_def import TriggerInfo
    from repro.events.fsm import EventDecl


class Metatype:
    """Run-time descriptor of one persistent class."""

    def __init__(self, pyclass: type):
        self.pyclass = pyclass
        self.name = pyclass.__name__
        self.fields: dict[str, Field] = collect_fields(pyclass)
        # Filled by repro.core.declarations when the class declares
        # events/triggers; empty for passive classes.
        self.declared_events: list["EventDecl"] = []  # own + inherited
        self.trigger_infos: list["TriggerInfo"] = []  # defined by THIS class
        self.all_trigger_infos: list["TriggerInfo"] = []  # incl. inherited
        self.masks: dict[str, Callable[..., bool]] = {}
        # The mask callables exactly as declared, before `_adapt_mask`
        # normalizes arity — the ODE4xx compilability pass analyzes these
        # (the adapter's indirection would widen every mask to unknown).
        self.mask_specs: dict[str, Callable[..., bool]] = {}
        self.method_wrappers: dict[str, Callable[..., Any]] = {}
        self.constraints: list[Any] = []
        # Run-time event integers: symbol -> globally-unique eventnum, and
        # symbol -> the class that declared the event (its eventRep owner).
        self.event_ints: dict[str, int] = {}
        self.event_owner: dict[str, str] = {}

    # -- inheritance ----------------------------------------------------------

    def base_metatypes(self, registry: "TypeRegistry") -> list["Metatype"]:
        """Metatypes of the persistent base classes, nearest first."""
        bases = []
        for klass in self.pyclass.__mro__[1:]:
            metatype = registry.find_by_class(klass)
            if metatype is not None:
                bases.append(metatype)
        return bases

    def is_subtype_of(self, other: "Metatype") -> bool:
        return issubclass(self.pyclass, other.pyclass)

    # -- trigger helpers --------------------------------------------------------

    def trigger_info(self, triggernum: int) -> "TriggerInfo":
        """The descriptor of trigger number *triggernum* defined by this class.

        Raises :class:`UnknownTriggerError` for any number outside the
        defined range — including negative ones, which would otherwise
        silently index from the end of the list.
        """
        if not 0 <= triggernum < len(self.trigger_infos):
            raise UnknownTriggerError(
                f"type {self.name!r} defines no trigger number {triggernum} "
                f"(it defines {len(self.trigger_infos)}, numbered from 0)"
            )
        return self.trigger_infos[triggernum]

    def trigger_by_name(self, name: str) -> "TriggerInfo":
        for info in self.trigger_infos:
            if info.name == name:
                return info
        raise UnknownTriggerError(
            f"type {self.name!r} defines no trigger named {name!r}"
        )

    def has_active_facilities(self) -> bool:
        """Whether this class (or a base) declared any events or triggers."""
        return bool(self.declared_events or self.trigger_infos)

    def __repr__(self) -> str:
        return (
            f"<Metatype {self.name} fields={len(self.fields)} "
            f"events={len(self.declared_events)} triggers={len(self.trigger_infos)}>"
        )


class TypeRegistry:
    """Maps stored type names to metatypes for this process."""

    def __init__(self) -> None:
        self._by_name: dict[str, Metatype] = {}
        self._by_class: dict[type, Metatype] = {}
        # Concurrent sessions can register classes while others resolve
        # them; registration must be atomic (lookups are GIL-safe reads).
        self._mutex = threading.Lock()

    def register(self, pyclass: type) -> Metatype:
        """Create (or return the existing) metatype for *pyclass*.

        Re-registering the same class object is idempotent; registering a
        *different* class under an existing name replaces it, which mirrors
        recompilation of a class definition.
        """
        existing = self._by_class.get(pyclass)
        if existing is not None:
            return existing
        with self._mutex:
            existing = self._by_class.get(pyclass)
            if existing is not None:
                return existing
            metatype = Metatype(pyclass)
            self._by_name[metatype.name] = metatype
            self._by_class[pyclass] = metatype
            return metatype

    def register_shim(self, name: str, shim: "Metatype | Any") -> None:
        """Register a dynamic pseudo-metatype under *name*.

        Used by run-time-constructed triggers (inter-object bridges): the
        shim only needs ``trigger_info(n)`` and ``pyclass``; it is looked
        up through the same ``trigobjtype`` resolution as real classes.
        """
        with self._mutex:
            self._by_name[name] = shim
        # A new trigger-bearing type changes the trigger universe: evict
        # any compiled posting artifacts keyed by the old schema version.
        from repro.core.compiled import bump_schema_version

        bump_schema_version(f"register_shim:{name}")

    def find(self, name: str) -> Metatype:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownTypeError(
                f"type {name!r} is not registered in this process; import the "
                "module defining it before opening the database"
            ) from None

    def find_by_class(self, pyclass: type) -> Metatype | None:
        return self._by_class.get(pyclass)

    def require_by_class(self, pyclass: type) -> Metatype:
        metatype = self._by_class.get(pyclass)
        if metatype is None:
            raise UnknownTypeError(f"{pyclass.__name__} is not a persistent class")
        return metatype

    def names(self) -> frozenset[str]:
        return frozenset(self._by_name)

    def subclasses_of(self, metatype: Metatype) -> list[Metatype]:
        """All registered metatypes whose class derives from *metatype*'s.

        Dynamic shims (no real class behind them) are skipped.
        """
        return [
            candidate
            for candidate in self._by_name.values()
            if isinstance(candidate, Metatype) and candidate.is_subtype_of(metatype)
        ]


_GLOBAL_REGISTRY = TypeRegistry()


def global_type_registry() -> TypeRegistry:
    """The process-wide registry used by :class:`~repro.objects.persistent.Persistent`."""
    return _GLOBAL_REGISTRY
