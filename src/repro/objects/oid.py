"""Persistent pointers.

A persistent pointer identifies a persistent object by the database it
lives in and its record id there.  Pointers are value objects: hashable,
comparable, and serializable, so they can be stored inside other persistent
objects (that is how inter-object references work).
"""

from __future__ import annotations

import dataclasses
import struct

_LEN = struct.Struct("<I")
_RID = struct.Struct("<q")


@dataclasses.dataclass(frozen=True, order=True)
class PersistentPtr:
    """A pointer to a persistent object: ``(database name, record id)``."""

    db_name: str
    rid: int

    def is_null(self) -> bool:
        """Whether this is the distinguished null pointer."""
        return self.rid < 0

    def encode(self) -> bytes:
        name = self.db_name.encode("utf-8")
        return _LEN.pack(len(name)) + name + _RID.pack(self.rid)

    @classmethod
    def decode_from(cls, raw: bytes, pos: int) -> tuple["PersistentPtr", int]:
        (nlen,) = _LEN.unpack_from(raw, pos)
        pos += _LEN.size
        name = raw[pos : pos + nlen].decode("utf-8")
        pos += nlen
        (rid,) = _RID.unpack_from(raw, pos)
        pos += _RID.size
        return cls(name, rid), pos

    def __repr__(self) -> str:
        if self.is_null():
            return "PersistentPtr(NULL)"
        return f"PersistentPtr({self.db_name!r}, {self.rid})"


NULL_PTR = PersistentPtr("", -1)
"""The null persistent pointer (dereferencing it raises)."""
