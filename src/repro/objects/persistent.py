"""The ``Persistent`` base class.

Subclassing :class:`Persistent` makes a class *persistence-capable*: its
:func:`~repro.objects.schema.field` declarations form the stored schema and
a :class:`~repro.objects.metatype.Metatype` is registered for it.  Plain
instances remain ordinary volatile Python objects; only objects created
with :meth:`~repro.objects.database.Database.pnew` (or loaded with
``deref``) live in a database.

This mirrors O++: a class is one definition, and persistence is a property
of the *allocation* (``new`` vs ``pnew``), not of the type.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SchemaError
from repro.objects.metatype import Metatype, global_type_registry
from repro.objects.schema import Field


class Persistent:
    """Base class for persistence-capable objects."""

    __metatype__: Metatype

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        cls.__metatype__ = global_type_registry().register(cls)
        # Let the active-class declaration processor (if the class uses it)
        # compile events, triggers, and wrappers.  Imported lazily to keep
        # the object layer independent of the trigger system.
        active_here = (
            cls.__dict__.get("__events__")
            or cls.__dict__.get("__triggers__")
            or cls.__dict__.get("__constraints__")
        )
        inherited_active = any(
            base is not Persistent
            and getattr(base, "__metatype__", None) is not None
            and base.__metatype__.has_active_facilities()
            for base in cls.__mro__[1:]
            if isinstance(base, type)
        )
        if active_here or inherited_active:
            from repro.core.declarations import process_active_class

            process_active_class(cls)

    def __init__(self, **kwargs: Any) -> None:
        metatype = type(self).__metatype__
        for name, fld in metatype.fields.items():
            if name in kwargs:
                setattr(self, name, kwargs.pop(name))
            elif fld.has_default():
                setattr(self, name, fld.default_value())
        if kwargs:
            unknown = ", ".join(sorted(kwargs))
            raise SchemaError(f"{type(self).__name__} has no field(s): {unknown}")

    # -- serialization support --------------------------------------------------

    def to_fields(self) -> dict[str, Any]:
        """The currently-set declared fields, in schema order."""
        metatype = type(self).__metatype__
        values: dict[str, Any] = {}
        for name in metatype.fields:
            if name in self.__dict__:
                values[name] = self.__dict__[name]
        return values

    @classmethod
    def from_fields(cls, values: dict[str, Any]) -> "Persistent":
        """Rebuild an instance from stored field values (bypasses __init__)."""
        instance = cls.__new__(cls)
        metatype = cls.__metatype__
        for name, value in values.items():
            fld = metatype.fields.get(name)
            if fld is None:
                continue  # field dropped since this object was stored
            fld.check(value)
            instance.__dict__[name] = value
        return instance

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in self.to_fields().items())
        return f"{type(self).__name__}({fields})"


def fields_of(cls: type) -> dict[str, Field]:
    """Public accessor for a persistent class's schema."""
    if not issubclass(cls, Persistent):
        raise SchemaError(f"{cls.__name__} is not a Persistent subclass")
    return dict(cls.__metatype__.fields)
