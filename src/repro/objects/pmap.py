"""A small persistent hash map, used for clusters and the trigger index.

Keys are strings, values anything :mod:`repro.objects.serialize` encodes.
Entries are spread over a fixed number of bucket records so that updates
touch (and lock) only one bucket, not the whole map — the trigger index is
updated on every activation/deactivation and every FSM advance would
otherwise serialize on a single hot record.

Layout: the catalog stores ``pmap:<name>`` -> header rid; the header record
holds the list of bucket rids (-1 = bucket not yet allocated); each bucket
record holds a dict.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterator
from typing import TYPE_CHECKING, Any

from repro.objects.serialize import decode_value, encode_value

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database
    from repro.transactions.txn import Transaction


def _encode(value: Any) -> bytes:
    out = bytearray()
    encode_value(value, out)
    return bytes(out)


def _decode(raw: bytes) -> Any:
    value, _ = decode_value(raw, 0)
    return value


class PersistentMap:
    """A bucketed, transactional string-keyed map inside a database."""

    def __init__(self, db: "Database", name: str, bucket_count: int = 16):
        self.db = db
        self.name = name
        self.bucket_count = bucket_count
        self._catalog_key = f"pmap:{name}"

    # -- header management ---------------------------------------------------

    def _header_rid(self, txn: "Transaction", *, create: bool) -> int | None:
        rid = self.db.catalog_get(self._catalog_key)
        if rid is None and create:
            buckets = [-1] * self.bucket_count
            rid = self.db.storage.insert(txn.txid, _encode(buckets))
            self.db.catalog_set(txn, self._catalog_key, rid)
        return rid

    def _load_header(self, txn: "Transaction", *, create: bool) -> tuple[int, list[int]] | None:
        rid = self._header_rid(txn, create=create)
        if rid is None:
            return None
        return rid, list(_decode(self.db.storage.read(txn.txid, rid)))

    def _bucket_for(self, key: str) -> int:
        return zlib.crc32(key.encode("utf-8")) % self.bucket_count

    def _load_bucket(self, txn: "Transaction", bucket_rid: int) -> dict[str, Any]:
        return dict(_decode(self.db.storage.read(txn.txid, bucket_rid)))

    # -- operations --------------------------------------------------------------

    def get(self, txn: "Transaction", key: str, default: Any = None) -> Any:
        header = self._load_header(txn, create=False)
        if header is None:
            return default
        _, buckets = header
        bucket_rid = buckets[self._bucket_for(key)]
        if bucket_rid < 0:
            return default
        return self._load_bucket(txn, bucket_rid).get(key, default)

    def put(self, txn: "Transaction", key: str, value: Any) -> None:
        header_rid, buckets = self._load_header(txn, create=True)
        index = self._bucket_for(key)
        bucket_rid = buckets[index]
        if bucket_rid < 0:
            bucket_rid = self.db.storage.insert(txn.txid, _encode({key: value}))
            buckets[index] = bucket_rid
            self.db.storage.write(txn.txid, header_rid, _encode(buckets))
            return
        bucket = self._load_bucket(txn, bucket_rid)
        bucket[key] = value
        self.db.storage.write(txn.txid, bucket_rid, _encode(bucket))

    def remove(self, txn: "Transaction", key: str) -> bool:
        """Delete *key*; returns whether it was present."""
        header = self._load_header(txn, create=False)
        if header is None:
            return False
        _, buckets = header
        bucket_rid = buckets[self._bucket_for(key)]
        if bucket_rid < 0:
            return False
        bucket = self._load_bucket(txn, bucket_rid)
        if key not in bucket:
            return False
        del bucket[key]
        self.db.storage.write(txn.txid, bucket_rid, _encode(bucket))
        return True

    def items(self, txn: "Transaction") -> Iterator[tuple[str, Any]]:
        header = self._load_header(txn, create=False)
        if header is None:
            return
        _, buckets = header
        for bucket_rid in buckets:
            if bucket_rid < 0:
                continue
            yield from self._load_bucket(txn, bucket_rid).items()

    def keys(self, txn: "Transaction") -> list[str]:
        return [key for key, _ in self.items(txn)]

    def __len__(self) -> int:  # pragma: no cover - needs a txn; use count()
        raise TypeError("use PersistentMap.count(txn)")

    def count(self, txn: "Transaction") -> int:
        return sum(1 for _ in self.items(txn))
