"""Field declarations for persistent classes.

A persistent class declares its stored state with :func:`field`::

    class CredCard(Persistent):
        issued_to = field(PersistentPtr)
        cred_lim = field(float, default=0.0)
        curr_bal = field(float, default=0.0)

:class:`Field` is a data descriptor: values live in the instance
``__dict__`` (so volatile use is just attribute access), with a light type
check on assignment so schema violations surface at the write site rather
than at serialization time.

Note the paper's design goal 5 is structural here: triggers and events are
*not* fields, so adding or removing them never changes the stored layout.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SchemaError
from repro.objects.oid import PersistentPtr

_SENTINEL = object()

#: Python types accepted as field types, mapped to a serializer tag name.
ALLOWED_TYPES: dict[type, str] = {
    int: "int",
    float: "float",
    bool: "bool",
    str: "str",
    bytes: "bytes",
    PersistentPtr: "ptr",
    list: "list",
    dict: "dict",
    object: "any",
}


class Field:
    """A typed, defaultable data descriptor collected into the class schema."""

    __slots__ = ("ftype", "default", "name", "nullable")

    def __init__(self, ftype: type, default: Any = _SENTINEL, nullable: bool = True):
        if ftype not in ALLOWED_TYPES:
            allowed = ", ".join(t.__name__ for t in ALLOWED_TYPES)
            raise SchemaError(f"unsupported field type {ftype!r}; allowed: {allowed}")
        self.ftype = ftype
        self.default = default
        self.nullable = nullable
        self.name: str | None = None  # set by __set_name__

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def has_default(self) -> bool:
        return self.default is not _SENTINEL

    def default_value(self) -> Any:
        if not self.has_default():
            raise SchemaError(f"field {self.name!r} has no default")
        value = self.default
        # Fresh containers per instance, like dataclass default_factory.
        if isinstance(value, (list, dict)):
            return type(value)(value)
        return value

    def check(self, value: Any) -> None:
        """Validate *value* against the declared type."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"field {self.name!r} is not nullable")
            return
        if self.ftype is object:
            return
        if self.ftype is float and isinstance(value, int) and not isinstance(value, bool):
            return  # ints are acceptable floats, as in most schemas
        if self.ftype is int and isinstance(value, bool):
            raise SchemaError(f"field {self.name!r}: bool is not an int")
        if not isinstance(value, self.ftype):
            raise SchemaError(
                f"field {self.name!r} expects {self.ftype.__name__}, "
                f"got {type(value).__name__}"
            )

    # -- descriptor protocol ---------------------------------------------------

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        try:
            return instance.__dict__[self.name]
        except KeyError:
            raise AttributeError(
                f"field {self.name!r} of {owner.__name__ if owner else '?'} "
                "is not set"
            ) from None

    def __set__(self, instance, value) -> None:
        self.check(value)
        if self.ftype is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        instance.__dict__[self.name] = value

    def __repr__(self) -> str:
        return f"field({self.ftype.__name__}, name={self.name!r})"


def field(ftype: type, default: Any = _SENTINEL, nullable: bool = True) -> Field:
    """Declare a stored field of a persistent class.

    ``ftype`` is a Python type from :data:`ALLOWED_TYPES` (use ``object``
    for schemaless values); ``default`` is applied by the base constructor
    when the field is not passed explicitly.
    """
    return Field(ftype, default, nullable)


def collect_fields(cls: type) -> dict[str, Field]:
    """Gather the full schema of *cls*, base classes first (C++ layout order)."""
    fields: dict[str, Field] = {}
    for klass in reversed(cls.__mro__):
        for name, value in vars(klass).items():
            if isinstance(value, Field):
                fields[name] = value
    return fields
