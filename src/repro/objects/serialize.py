"""Typed serialization of persistent objects.

Objects are stored as self-describing records: a header (format version,
type name, flags) followed by named, tagged field values.  Decoding is by
field *name*, so adding or removing fields — and, crucially, adding or
removing *triggers*, which are not fields at all — never forces a data
conversion (paper design goal 5).

The value encoding is a small recursive tagged format covering ``None``,
ints, floats, bools, strings, bytes, persistent pointers, lists, and dicts
with string keys.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import SerializationError
from repro.objects.oid import PersistentPtr

FORMAT_VERSION = 1

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_TAG_NONE = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_BOOL = 3
_TAG_STR = 4
_TAG_BYTES = 5
_TAG_PTR = 6
_TAG_LIST = 7
_TAG_DICT = 8
_TAG_TUPLE = 9

#: Object-header flag: the object has (or once had) active triggers.  The
#: paper (footnote 3) keeps this in the object's control information so
#: PostEvent can skip the trigger-index lookup for trigger-free objects.
FLAG_HAS_TRIGGERS = 0x01


# ---------------------------------------------------------------------------
# Value encoding
# ---------------------------------------------------------------------------


def encode_value(value: Any, out: bytearray) -> None:
    """Append the tagged encoding of *value* to *out*."""
    if value is None:
        out += _U8.pack(_TAG_NONE)
    elif isinstance(value, bool):  # before int: bool is an int subclass
        out += _U8.pack(_TAG_BOOL)
        out += _U8.pack(1 if value else 0)
    elif isinstance(value, int):
        out += _U8.pack(_TAG_INT)
        out += _I64.pack(value)
    elif isinstance(value, float):
        out += _U8.pack(_TAG_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _U8.pack(_TAG_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, bytes):
        out += _U8.pack(_TAG_BYTES)
        out += _U32.pack(len(value))
        out += value
    elif isinstance(value, PersistentPtr):
        out += _U8.pack(_TAG_PTR)
        out += value.encode()
    elif isinstance(value, (list, tuple)):
        out += _U8.pack(_TAG_TUPLE if isinstance(value, tuple) else _TAG_LIST)
        out += _U32.pack(len(value))
        for item in value:
            encode_value(item, out)
    elif isinstance(value, dict):
        out += _U8.pack(_TAG_DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(
                    f"dict keys must be strings, got {type(key).__name__}"
                )
            raw = key.encode("utf-8")
            out += _U32.pack(len(raw))
            out += raw
            encode_value(item, out)
    else:
        raise SerializationError(f"cannot serialize {type(value).__name__} values")


def decode_value(raw: bytes, pos: int) -> tuple[Any, int]:
    """Decode one tagged value from *raw* at *pos*; returns (value, new pos)."""
    (tag,) = _U8.unpack_from(raw, pos)
    pos += _U8.size
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_BOOL:
        (flag,) = _U8.unpack_from(raw, pos)
        return bool(flag), pos + _U8.size
    if tag == _TAG_INT:
        (value,) = _I64.unpack_from(raw, pos)
        return value, pos + _I64.size
    if tag == _TAG_FLOAT:
        (value,) = _F64.unpack_from(raw, pos)
        return value, pos + _F64.size
    if tag == _TAG_STR:
        (length,) = _U32.unpack_from(raw, pos)
        pos += _U32.size
        return raw[pos : pos + length].decode("utf-8"), pos + length
    if tag == _TAG_BYTES:
        (length,) = _U32.unpack_from(raw, pos)
        pos += _U32.size
        return bytes(raw[pos : pos + length]), pos + length
    if tag == _TAG_PTR:
        return PersistentPtr.decode_from(raw, pos)
    if tag in (_TAG_LIST, _TAG_TUPLE):
        (count,) = _U32.unpack_from(raw, pos)
        pos += _U32.size
        items = []
        for _ in range(count):
            item, pos = decode_value(raw, pos)
            items.append(item)
        return (tuple(items) if tag == _TAG_TUPLE else items), pos
    if tag == _TAG_DICT:
        (count,) = _U32.unpack_from(raw, pos)
        pos += _U32.size
        result: dict[str, Any] = {}
        for _ in range(count):
            (klen,) = _U32.unpack_from(raw, pos)
            pos += _U32.size
            key = raw[pos : pos + klen].decode("utf-8")
            pos += klen
            result[key], pos = decode_value(raw, pos)
        return result, pos
    raise SerializationError(f"unknown value tag {tag}")


# ---------------------------------------------------------------------------
# Object records
# ---------------------------------------------------------------------------


def encode_object(type_name: str, fields: dict[str, Any], flags: int = 0) -> bytes:
    """Serialize an object's fields under its stored *type_name*."""
    out = bytearray()
    out += _U8.pack(FORMAT_VERSION)
    out += _U8.pack(flags)
    raw_name = type_name.encode("utf-8")
    out += _U32.pack(len(raw_name))
    out += raw_name
    out += _U32.pack(len(fields))
    for name, value in fields.items():
        raw = name.encode("utf-8")
        out += _U32.pack(len(raw))
        out += raw
        try:
            encode_value(value, out)
        except SerializationError as exc:
            raise SerializationError(f"field {name!r}: {exc}") from exc
    return bytes(out)


def decode_object(raw: bytes) -> tuple[str, dict[str, Any], int]:
    """Deserialize a record into ``(type_name, fields, flags)``."""
    (version,) = _U8.unpack_from(raw, 0)
    if version != FORMAT_VERSION:
        raise SerializationError(f"unsupported object format version {version}")
    pos = _U8.size
    (flags,) = _U8.unpack_from(raw, pos)
    pos += _U8.size
    (nlen,) = _U32.unpack_from(raw, pos)
    pos += _U32.size
    type_name = raw[pos : pos + nlen].decode("utf-8")
    pos += nlen
    (count,) = _U32.unpack_from(raw, pos)
    pos += _U32.size
    fields: dict[str, Any] = {}
    for _ in range(count):
        (flen,) = _U32.unpack_from(raw, pos)
        pos += _U32.size
        name = raw[pos : pos + flen].decode("utf-8")
        pos += flen
        fields[name], pos = decode_value(raw, pos)
    return type_name, fields, flags


def peek_flags(raw: bytes) -> int:
    """Return just the header flags without decoding the fields."""
    return _U8.unpack_from(raw, _U8.size)[0]
