"""``repro.obs`` — zero-cost-when-disabled tracing and metrics.

The whole trigger pipeline is instrumented (posting, FSM advances, mask
evaluations, coupling-list drains, WAL appends/forces, buffer-pool
hits/evictions, lock acquires, timers), but every hook sits behind this
module's single :data:`ENABLED` flag::

    if obs.ENABLED:
        obs.emit("mask.eval", span=span, mask=name, outcome=value)

so the disabled path costs exactly one module-attribute check per site —
no recorder lookup, no argument packing.  That is what lets experiment E3
keep its "overhead is paid only by objects with triggers" shape with the
instrumentation compiled in (E15 measures the enabled/disabled gap).

Usage::

    from repro import obs

    recorder = obs.enable()          # start recording (bounded ring)
    ... run a workload ...
    obs.disable()
    recorder.export("trace.jsonl")   # one JSON object per record

or scoped::

    with obs.enabled() as recorder:
        ... run a workload ...

``python -m repro.tools trace record|show|summary`` drives the same
machinery from the command line.

Metrics are orthogonal: every :class:`~repro.objects.database.Database`
carries a :class:`~repro.obs.metrics.MetricsRegistry` at ``db.metrics``
(always on — plain integer increments), with the per-layer stats sources
mounted as ``posting.*`` / ``storage.*`` / ``locks.*`` / ``timers.*``.
When tracing is enabled, every transaction snapshots the registry at
begin, so :func:`transaction_delta` reports exactly what one transaction
cost.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro.obs.metrics import Counter, Histogram, MetricsRegistry, ObsStats, describe
from repro.obs.trace import (
    NO_SPAN,
    TraceRecord,
    TraceRecorder,
    load_jsonl,
    records_from_jsonl,
    records_to_jsonl,
    render_record,
    render_trace,
    summarize_trace,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.transactions.txn import Transaction

#: The single module-level gate every instrumentation site checks.
ENABLED = False

#: The active recorder while ENABLED (kept non-None only when enabled so a
#: stale ``obs.emit`` between disable/enable is a cheap no-op).
_RECORDER: TraceRecorder | None = None

#: Attachment key for the per-transaction metrics snapshot taken at begin.
TXN_METRICS_KEY = "obs:metrics_at_begin"


def enable(capacity: int = 65536, clock=None) -> TraceRecorder:
    """Turn tracing on with a fresh bounded recorder; returns it."""
    global ENABLED, _RECORDER
    _RECORDER = (
        TraceRecorder(capacity) if clock is None else TraceRecorder(capacity, clock)
    )
    ENABLED = True
    return _RECORDER


def disable() -> TraceRecorder | None:
    """Turn tracing off; returns the recorder for inspection/export."""
    global ENABLED, _RECORDER
    recorder, _RECORDER = _RECORDER, None
    ENABLED = False
    return recorder


def recorder() -> TraceRecorder | None:
    """The active recorder, or None when tracing is disabled."""
    return _RECORDER


@contextmanager
def enabled(capacity: int = 65536) -> Iterator[TraceRecorder]:
    """Scoped tracing: ``with obs.enabled() as rec: ...``."""
    rec = enable(capacity)
    try:
        yield rec
    finally:
        disable()


# -- emission forwarders (call sites guard with `if obs.ENABLED`) -------------


def emit(kind: str, span: int = NO_SPAN, **data: Any) -> None:
    rec = _RECORDER
    if rec is not None:
        rec.emit(kind, span, **data)


def begin_span(kind: str, **data: Any) -> int:
    rec = _RECORDER
    if rec is None:
        return NO_SPAN
    return rec.begin_span(kind, **data)


def end_span(span: int, kind: str, **data: Any) -> None:
    rec = _RECORDER
    if rec is not None:
        rec.end_span(span, kind, **data)


# -- per-transaction metrics deltas --------------------------------------------


def transaction_delta(txn: "Transaction") -> dict:
    """The metrics delta since *txn* began (tracing must have been on).

    Returns ``{}`` when no begin-snapshot was taken (tracing was disabled
    when the transaction started, or the database has no registry).
    """
    before = txn.attachments.get(TXN_METRICS_KEY)
    metrics = getattr(txn.db, "metrics", None)
    if before is None or metrics is None:
        return {}
    return metrics.delta_since(before)


__all__ = [
    "ENABLED",
    "NO_SPAN",
    "TXN_METRICS_KEY",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "ObsStats",
    "TraceRecord",
    "TraceRecorder",
    "begin_span",
    "describe",
    "disable",
    "emit",
    "enable",
    "enabled",
    "end_span",
    "load_jsonl",
    "recorder",
    "records_from_jsonl",
    "records_to_jsonl",
    "render_record",
    "render_trace",
    "summarize_trace",
    "transaction_delta",
]
