"""Named counters and histograms for the trigger pipeline.

The paper's claims are quantitative (per-posting overhead, lock
amplification, sparse-vs-dense transition cost), so every layer keeps
counters — but before this module they were scattered dataclasses
(``PostingStats``, ``StorageStats``, ``LockStats``) each with its own
ad-hoc ``snapshot``/``reset``.  A :class:`MetricsRegistry` gives them one
namespace and one read surface:

* **owned metrics** — :meth:`MetricsRegistry.counter` /
  :meth:`MetricsRegistry.histogram` create named instruments on first use;
* **mounted sources** — the existing per-layer stats dataclasses register
  under a prefix (``posting.*``, ``storage.*``, ``locks.*``, ``timers.*``)
  so their fields appear in the same flat snapshot without slowing their
  hot-path ``+= 1`` increments behind attribute indirection;
* **snapshot / diff** — :meth:`MetricsRegistry.snapshot` returns a flat
  ``name -> value`` dict and :meth:`MetricsRegistry.diff` subtracts two of
  them, which is what back-to-back benchmarks and per-transaction deltas
  need (cumulative counters made E3/E10 numbers wrong across runs).
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from typing import Iterator, Protocol, runtime_checkable


@runtime_checkable
class StatsSource(Protocol):
    """Anything with ``snapshot() -> dict`` and ``reset()`` can be mounted."""

    def snapshot(self) -> dict: ...

    def reset(self) -> None: ...


class Counter:
    """A monotonically adjustable named integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Histogram:
    """A named distribution: count/total/min/max plus power-of-two buckets.

    ``observe`` files each value into bucket ``ceil(log2(value))`` (values
    ``<= 1`` share bucket 0), enough resolution to tell "one mask per
    posting" from "a cascade of thirty" without storing samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    N_BUCKETS = 32

    def __init__(self, name: str):
        self.name = name
        self.reset()

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.buckets = [0] * self.N_BUCKETS

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = 0
        v = value
        while v > 1 and bucket < self.N_BUCKETS - 1:
            v /= 2
            bucket += 1
        self.buckets[bucket] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.3g}>"


class MetricsRegistry:
    """One flat namespace over owned instruments and mounted stats sources."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._sources: dict[str, StatsSource] = {}

    # -- owned instruments -----------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called *name*, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        """The histogram called *name*, created on first use."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    # -- mounted sources ---------------------------------------------------------

    def register_source(self, prefix: str, source: StatsSource) -> None:
        """Mount *source* so its fields appear as ``<prefix>.<field>``.

        Re-registering a prefix replaces the previous source (a fresh
        ``TimerService`` on the same database takes over the ``timers``
        namespace).
        """
        self._sources[prefix] = source

    def sources(self) -> dict[str, StatsSource]:
        return dict(self._sources)

    # -- snapshot / diff / reset ---------------------------------------------------

    def snapshot(self) -> dict:
        """A flat ``name -> value`` dict over everything registered."""
        snap: dict = {}
        for prefix, source in self._sources.items():
            for field, value in source.snapshot().items():
                snap[f"{prefix}.{field}"] = value
        for name, counter in self._counters.items():
            snap[name] = counter.value
        for name, histogram in self._histograms.items():
            snap[name] = histogram.snapshot()
        return snap

    @staticmethod
    def diff(before: dict, after: dict) -> dict:
        """``after - before`` per metric (histograms diff count/total/mean)."""
        delta: dict = {}
        for name, value in after.items():
            prev = before.get(name)
            if isinstance(value, dict):
                prev = prev or {}
                count = value.get("count", 0) - prev.get("count", 0)
                total = (value.get("total") or 0) - (prev.get("total") or 0)
                delta[name] = {
                    "count": count,
                    "total": total,
                    "mean": total / count if count else 0.0,
                }
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                delta[name] = value - (prev or 0)
            else:
                delta[name] = value
        return delta

    def delta_since(self, before: dict) -> dict:
        """Convenience: :meth:`diff` of *before* against a fresh snapshot."""
        return self.diff(before, self.snapshot())

    @contextmanager
    def measure(self) -> Iterator[dict]:
        """``with registry.measure() as d:`` — *d* holds the delta at exit."""
        before = self.snapshot()
        delta: dict = {}
        try:
            yield delta
        finally:
            delta.update(self.delta_since(before))

    def reset(self) -> None:
        """Zero every owned instrument and every mounted source."""
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
        for source in self._sources.values():
            source.reset()


def describe(snapshot: dict) -> list[str]:
    """Render a snapshot as sorted ``name = value`` lines (dump tooling)."""
    lines = []
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, dict):
            inner = ", ".join(
                f"{k}={value[k]:.3g}" if isinstance(value[k], float) else f"{k}={value[k]}"
                for k in ("count", "mean", "min", "max")
                if value.get(k) is not None
            )
            lines.append(f"{name} = {{{inner}}}")
        else:
            lines.append(f"{name} = {value}")
    return lines


@dataclasses.dataclass
class ObsStats:
    """The observability layer's own counters (mounted as ``obs.*``)."""

    records_emitted: int = 0
    records_dropped: int = 0
    spans_opened: int = 0

    def snapshot(self) -> dict:
        return dataclasses.asdict(self)

    def reset(self) -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)
