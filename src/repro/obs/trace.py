"""Bounded-ring trace recorder with JSONL export and a span pretty-printer.

A :class:`TraceRecorder` collects :class:`TraceRecord` entries from the
instrumentation hooks threaded through the trigger pipeline (post → index
lookup → FSM advance → mask eval → pseudo-event quiesce → fire, plus
transaction, WAL, buffer-pool, lock, and timer events).  The buffer is a
fixed-capacity ring: a long benchmark keeps the most recent window and
counts what it dropped instead of growing without bound.

Records are flat — no in-memory tree.  Nesting is carried by the ``span``
field: posting emits ``post.begin`` with a fresh span id, every record the
posting produces carries that id, and ``post.end`` closes it.  The
pretty-printer (:func:`render_trace`) reconstructs the per-posting blocks,
which keeps the hot-path cost of a record at "append one tuple".

Export is JSONL, one record per line; :func:`records_from_jsonl` inverts
:func:`records_to_jsonl` exactly (values are coerced to JSON-safe forms at
*emit* time, so a round trip is identity — the cross-feature suite checks
this against a traced crash-recovery run).
"""

from __future__ import annotations

import collections
import dataclasses
import io
import json
import time
from typing import Any, Iterable

from repro.obs.metrics import ObsStats

#: Span id meaning "not inside any posting span".
NO_SPAN = 0


def _jsonable(value: Any) -> Any:
    """Coerce *value* to a JSON-round-trippable form (at emit time)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One structured trace entry.

    ``data`` is a tuple of ``(key, value)`` pairs — immutable, so a record
    can never alias live posting state (the ``EventOccurrence.kwargs``
    lesson applies here too).
    """

    seq: int
    ts: float
    kind: str
    span: int = NO_SPAN
    data: tuple = ()

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.data:
            if k == key:
                return v
        return default

    def data_dict(self) -> dict:
        return dict(self.data)

    def to_json_obj(self) -> dict:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "span": self.span,
            "data": dict(self.data),
        }

    @classmethod
    def from_json_obj(cls, obj: dict) -> "TraceRecord":
        return cls(
            seq=int(obj["seq"]),
            ts=float(obj["ts"]),
            kind=str(obj["kind"]),
            span=int(obj.get("span", NO_SPAN)),
            data=tuple(obj.get("data", {}).items()),
        )


class TraceRecorder:
    """Fixed-capacity ring of trace records."""

    def __init__(self, capacity: int = 65536, clock=time.perf_counter):
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._epoch = clock()
        self._ring: collections.deque[TraceRecord] = collections.deque(
            maxlen=capacity
        )
        self._next_seq = 1
        self._next_span = 1
        self.stats = ObsStats()

    # -- emitting -------------------------------------------------------------

    def emit(self, kind: str, span: int = NO_SPAN, **data: Any) -> TraceRecord:
        """Append one record; drops the oldest when the ring is full."""
        record = TraceRecord(
            seq=self._next_seq,
            ts=round(self._clock() - self._epoch, 9),
            kind=kind,
            span=span,
            data=tuple((k, _jsonable(v)) for k, v in data.items()),
        )
        self._next_seq += 1
        if len(self._ring) == self.capacity:
            self.stats.records_dropped += 1
        self._ring.append(record)
        self.stats.records_emitted += 1
        return record

    def begin_span(self, kind: str, **data: Any) -> int:
        """Emit ``<kind>.begin`` under a fresh span id; returns the id."""
        span = self._next_span
        self._next_span += 1
        self.stats.spans_opened += 1
        self.emit(kind + ".begin", span, **data)
        return span

    def end_span(self, span: int, kind: str, **data: Any) -> None:
        self.emit(kind + ".end", span, **data)

    # -- reading ---------------------------------------------------------------

    def records(self) -> list[TraceRecord]:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    # -- JSONL ------------------------------------------------------------------

    def to_jsonl(self) -> str:
        return records_to_jsonl(self._ring)

    def export(self, path: str) -> int:
        """Write the buffer to *path* as JSONL; returns the record count."""
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())
        return len(self._ring)


def records_to_jsonl(records: Iterable[TraceRecord]) -> str:
    out = io.StringIO()
    for record in records:
        out.write(json.dumps(record.to_json_obj(), sort_keys=False))
        out.write("\n")
    return out.getvalue()


def records_from_jsonl(text: str) -> list[TraceRecord]:
    records = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(TraceRecord.from_json_obj(json.loads(line)))
    return records


def load_jsonl(path: str) -> list[TraceRecord]:
    with open(path) as fh:
        return records_from_jsonl(fh.read())


# -- pretty-printing ----------------------------------------------------------

#: kinds that open/close a rendered block.
_BEGIN_SUFFIX = ".begin"
_END_SUFFIX = ".end"


def _fmt_data(record: TraceRecord, skip: tuple[str, ...] = ()) -> str:
    parts = [f"{k}={v!r}" for k, v in record.data if k not in skip]
    return " ".join(parts)


def render_record(record: TraceRecord) -> str:
    """One human line for one record (used for non-span records)."""
    return f"[{record.seq:>6}] {record.ts:>10.6f}s {record.kind} {_fmt_data(record)}".rstrip()


def render_trace(records: Iterable[TraceRecord]) -> list[str]:
    """Render a record stream as per-posting blocks.

    Records inside a span (``span != 0``) are indented under their
    ``*.begin`` line; ``fire`` records are numbered so the firing order of
    a multi-trigger posting is explicit.  Records outside any span print
    flat.  A span whose ``begin`` was dropped by the ring still renders
    (indented, labelled with its span id).
    """
    lines: list[str] = []
    fire_order: dict[int, int] = {}
    for record in records:
        if record.kind.endswith(_BEGIN_SUFFIX) and record.span != NO_SPAN:
            head = record.kind[: -len(_BEGIN_SUFFIX)]
            lines.append(
                f"[{record.seq:>6}] {record.ts:>10.6f}s {head} span={record.span} "
                f"{_fmt_data(record)}".rstrip()
            )
        elif record.kind.endswith(_END_SUFFIX) and record.span != NO_SPAN:
            head = record.kind[: -len(_END_SUFFIX)]
            lines.append(
                f"    [{record.seq:>6}] end {head} {_fmt_data(record)}".rstrip()
            )
            fire_order.pop(record.span, None)
        elif record.span != NO_SPAN:
            prefix = "    "
            label = record.kind
            if record.kind == "fire":
                order = fire_order.get(record.span, 0) + 1
                fire_order[record.span] = order
                label = f"fire #{order}"
            lines.append(
                f"{prefix}[{record.seq:>6}] {label} {_fmt_data(record)}".rstrip()
            )
        else:
            lines.append(render_record(record))
    return lines


def summarize_trace(records: Iterable[TraceRecord]) -> dict[str, int]:
    """Record counts per kind — the quick shape of a session."""
    counts: dict[str, int] = {}
    for record in records:
        counts[record.kind] = counts.get(record.kind, 0) + 1
    return counts
