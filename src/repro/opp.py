"""A miniature O++ front end — the paper's declaration syntax, executable.

The paper stresses that the project's focus was "cleanly integrating the
syntax of events into C++".  This module accepts a subset of the O++ class
syntax of Section 4 and compiles it into a live Persistent subclass::

    CredCard = compile_opp_class('''
        persistent class CredCard {
            float credLim = 1000;
            float currBal = 0;
            event after Buy, after PayBill, BigBuy;
            trigger DenyCredit() : perpetual
                after Buy & over_limit ==> { BlackMark("Over Limit"); tabort; }
            trigger AutoRaiseLimit(amount) :
                relative((after Buy & MoreCred()), after PayBill)
                ==> RaiseLimit(amount);
        }
    ''', methods={...}, masks={...})

Supported surface:

* ``persistent class NAME { ... }`` (a base may follow ``: NAME``),
* field declarations ``float|int|bool|str NAME [= LITERAL];``,
* one ``event`` declaration listing basic events,
* ``trigger NAME(params) : [perpetual] [immediate|end|dependent|!dependent]
  EXPR ==> ACTION`` where ACTION is ``tabort``, a method call
  ``Method(arg, ...)`` with trigger parameters or literals as arguments,
  or a ``{ ...; ...; }`` block of those,
* ``constraint NAME : MASK;`` mapping onto the constraints extension.

Member-function bodies and mask predicates are Python: pass them in
``methods`` / ``masks`` (masks may also name methods).  This mirrors the
real O++ compiler's division of labour — it parsed declarations and
generated wrappers/descriptors while bodies stayed C++.
"""

from __future__ import annotations

import re
from typing import Any, Callable

from repro.core.declarations import trigger as trigger_decl
from repro.core.trigger_def import CouplingMode
from repro.errors import TransactionAbort, TriggerDeclarationError
from repro.objects.persistent import Persistent
from repro.objects.schema import field

_TYPE_MAP = {"float": float, "int": int, "bool": bool, "str": str}

_CLASS_RE = re.compile(
    r"^\s*persistent\s+class\s+(?P<name>\w+)\s*(?::\s*(?P<base>\w+)\s*)?"
    r"\{(?P<body>.*)\}\s*;?\s*$",
    re.DOTALL,
)
_FIELD_RE = re.compile(
    r"^(?P<type>float|int|bool|str)\s+(?P<name>\w+)\s*(?:=\s*(?P<default>[^;]+))?$"
)
_TRIGGER_RE = re.compile(
    r"^trigger\s+(?P<name>\w+)\s*\((?P<params>[^)]*)\)\s*:\s*(?P<rest>.*)$",
    re.DOTALL,
)
_CONSTRAINT_RE = re.compile(r"^constraint\s+(?P<name>\w+)\s*:\s*(?P<mask>\w+)$")
_CALL_RE = re.compile(r"^(?P<method>\w+)\s*\((?P<args>[^)]*)\)$")


def _parse_literal(text: str) -> Any:
    text = text.strip()
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    if text.startswith(("'", '"')) and text.endswith(text[0]) and len(text) >= 2:
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise TriggerDeclarationError(f"cannot parse literal {text!r}") from None


def _split_statements(body: str) -> list[str]:
    """Split the class body on ';' at brace-depth zero, keeping blocks."""
    statements = []
    depth = 0
    current: list[str] = []

    def flush():
        statement = "".join(current).strip()
        if statement:
            statements.append(statement)
        current.clear()

    for ch in body:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
        if ch == ";" and depth == 0:
            flush()
            continue
        current.append(ch)
        # A `}` closing back to depth 0 also ends a statement: trigger
        # action blocks carry no trailing semicolon in the paper's syntax.
        if ch == "}" and depth == 0:
            flush()
    flush()
    return statements


def _compile_action(
    action_text: str, param_names: tuple[str, ...]
) -> Callable[..., Any]:
    """One action: `tabort`, `Method(args)`, or a `{ ...; }` block."""
    action_text = action_text.strip()
    if action_text.startswith("{"):
        if not action_text.endswith("}"):
            raise TriggerDeclarationError(f"unterminated action block: {action_text!r}")
        inner = action_text[1:-1]
        steps = [
            _compile_action(step, param_names)
            for step in (s.strip() for s in inner.split(";"))
            if step
        ]

        def run_block(handle, ctx):
            for step in steps:
                step(handle, ctx)

        # Propagate the static-analysis tags: a block aborts if any step
        # does, and calls every method its steps call (effect inference
        # reads the tags instead of parsing this shared closure).
        run_block.__ode_tabort__ = any(
            getattr(step, "__ode_tabort__", False) for step in steps
        )
        run_block.__ode_calls__ = tuple(
            name
            for step in steps
            for name in getattr(step, "__ode_calls__", ())
        )
        return run_block

    if action_text == "tabort":
        def run_tabort(handle, ctx):
            raise TransactionAbort("tabort from trigger action")

        # Tag for the analyzer's coupling-mode lint (ODE040): compiled
        # tabort actions are statically known to abort.
        run_tabort.__ode_tabort__ = True
        return run_tabort

    match = _CALL_RE.match(action_text)
    if not match:
        raise TriggerDeclarationError(f"cannot parse action {action_text!r}")
    method_name = match.group("method")
    raw_args = [a.strip() for a in match.group("args").split(",") if a.strip()]
    arg_getters: list[Callable[[dict], Any]] = []
    for raw in raw_args:
        if raw in param_names:
            arg_getters.append(lambda params, _name=raw: params[_name])
        else:
            literal = _parse_literal(raw)
            arg_getters.append(lambda params, _value=literal: _value)

    def run_call(handle, ctx):
        method = getattr(handle, method_name, None)
        if method is None:
            raise TriggerDeclarationError(
                f"action method {method_name!r} does not exist"
            )
        return method(*(get(ctx.params) for get in arg_getters))

    # Effect tag: the analyzer cannot see through the dynamic getattr
    # above, but the called member is statically known here.
    run_call.__ode_calls__ = (method_name,)
    return run_call


def _parse_trigger(statement: str) -> Any:
    match = _TRIGGER_RE.match(statement)
    if not match:
        raise TriggerDeclarationError(f"cannot parse trigger: {statement!r}")
    name = match.group("name")
    params = tuple(
        p.strip() for p in match.group("params").split(",") if p.strip()
    )
    # Strip C-style parameter types: `float amount` -> `amount`.
    params = tuple(p.split()[-1] for p in params)
    # Collapse whitespace (declarations span lines in the paper's style);
    # the event language and action syntax are whitespace-insensitive.
    rest = " ".join(match.group("rest").split())

    perpetual = False
    coupling: CouplingMode | str = CouplingMode.IMMEDIATE
    posts: tuple[str, ...] = ()
    changed = True
    while changed:
        changed = False
        for keyword, value in (
            ("perpetual", None),
            ("immediate", CouplingMode.IMMEDIATE),
            ("end", CouplingMode.END),
            ("deferred", CouplingMode.END),
            ("dependent", CouplingMode.DEPENDENT),
            ("!dependent", CouplingMode.INDEPENDENT),
        ):
            if rest.startswith(keyword + " "):
                if keyword == "perpetual":
                    perpetual = True
                else:
                    coupling = value
                rest = rest[len(keyword) :].strip()
                changed = True
        # `posts(E1, E2)` declares the user events the action raises —
        # consumed by the static analyzer's cascade pass, not the run time.
        posts_match = re.match(r"^posts\s*\(([^)]*)\)\s*", rest)
        if posts_match:
            posts = posts + tuple(
                p.strip() for p in posts_match.group(1).split(",") if p.strip()
            )
            rest = rest[posts_match.end() :].strip()
            changed = True

    if "==>" not in rest:
        raise TriggerDeclarationError(f"trigger {name}: missing '==>'")
    expression, action_text = rest.split("==>", 1)
    action = _compile_action(action_text.strip(), params)
    return trigger_decl(
        name,
        expression.strip(),
        action=action,
        params=params,
        perpetual=perpetual,
        coupling=coupling,
        posts=posts,
    )


def compile_opp_class(
    source: str,
    methods: dict[str, Callable[..., Any]] | None = None,
    masks: dict[str, Callable[..., bool]] | None = None,
    base: type | None = None,
) -> type:
    """Compile an O++ class declaration into a live Persistent subclass.

    ``methods`` supplies the member-function bodies (plain Python
    functions taking ``self`` first); ``masks`` the named predicates used
    in event expressions.  ``base`` overrides the textual base class.
    """
    match = _CLASS_RE.match(source)
    if not match:
        raise TriggerDeclarationError(
            "expected `persistent class NAME { ... }`"
        )
    class_name = match.group("name")
    base_name = match.group("base")
    if base is None:
        if base_name:
            from repro.objects.metatype import global_type_registry

            base = global_type_registry().find(base_name).pyclass
        else:
            base = Persistent

    namespace: dict[str, Any] = dict(methods or {})
    events: list[str] = []
    triggers = []
    constraints: dict[str, Callable[..., bool]] = {}
    mask_table = dict(masks or {})

    for statement in _split_statements(match.group("body")):
        if statement.startswith("event "):
            for item in statement[len("event ") :].split(","):
                events.append(item.strip())
            continue
        if statement.startswith("trigger "):
            triggers.append(_parse_trigger(statement))
            continue
        constraint = _CONSTRAINT_RE.match(statement)
        if constraint:
            mask_name = constraint.group("mask")
            predicate = mask_table.get(mask_name) or namespace.get(mask_name)
            if predicate is None:
                raise TriggerDeclarationError(
                    f"constraint {constraint.group('name')}: no predicate "
                    f"named {mask_name!r}"
                )
            constraints[constraint.group("name")] = predicate
            continue
        field_match = _FIELD_RE.match(statement)
        if field_match:
            ftype = _TYPE_MAP[field_match.group("type")]
            default = field_match.group("default")
            if default is not None:
                namespace[field_match.group("name")] = field(
                    ftype, default=ftype(_parse_literal(default))
                )
            else:
                namespace[field_match.group("name")] = field(ftype)
            continue
        raise TriggerDeclarationError(f"cannot parse declaration: {statement!r}")

    # Events may be member-function events: the named methods must exist
    # (in `methods` or on the base) — process_active_class validates.
    if events:
        namespace["__events__"] = events
    if mask_table:
        namespace["__masks__"] = mask_table
    if triggers:
        namespace["__triggers__"] = triggers
    if constraints:
        namespace["__constraints__"] = constraints

    return type(class_name, (base,), namespace)
