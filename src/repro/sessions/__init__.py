"""Concurrent sessions over one database (paper Section 7 made real).

A :class:`Session` is one application's connection: it owns its transaction
context (one active transaction at a time, as Ode programs execute
transaction blocks serially *within* an application), while several
sessions run concurrent transactions against the same database, mediated by
the storage engine's :class:`~repro.storage.locks.LockManager`.

Two execution modes share all of the code:

* **cooperative** — :class:`~repro.sessions.scheduler.CooperativeScheduler`
  runs session programs one at a time and switches deterministically at
  lock waits and explicit yield points; this is what the tier-1 tests and
  the E6 lock-amplification study use, so interleavings are reproducible;
* **threaded** — each session runs in its own ``threading`` thread and
  blocks on the lock manager's condition variable; the stress tests
  (pytest marker ``concurrency``) and bench E16 use it.

The serial one-session API is the degenerate case: every database carries a
default session, and code that never calls :meth:`~repro.objects.database.
Database.session` behaves exactly as before.
"""

from repro.sessions.session import (
    Session,
    SessionStats,
    ambient_session,
    current_ambient_session,
)
from repro.sessions.scheduler import CooperativeScheduler, SchedulerTask

__all__ = [
    "CooperativeScheduler",
    "SchedulerTask",
    "Session",
    "SessionStats",
    "ambient_session",
    "current_ambient_session",
]
