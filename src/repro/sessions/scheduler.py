"""Deterministic cooperative scheduler for multi-session tests and studies.

Session programs run in real threads, but the scheduler owns a single
"processor": exactly one task executes at any moment, and control changes
hands only at deterministic points —

* a **lock wait**: the lock manager (via :func:`repro.storage.locks.
  set_wait_hooks`) parks the task until its request has been *granted* by a
  release, and the scheduler runs someone else;
* an explicit :meth:`CooperativeScheduler.yield_now` checkpoint a workload
  drops between operations to force fine-grained interleaving;
* task completion.

Scheduling is round-robin over spawn order, and blocked tasks are woken in
the order the lock manager granted them (FIFO per resource), so a given
(program, seed) pair always produces the same interleaving — which is what
lets tier-1 assert on lock schedules instead of racing wall-clock threads.

The scheduler records a ``log`` of (event, task) pairs — ``run`` /
``block`` / ``wake`` / ``done`` / ``fail`` — that tests use to assert who
blocked whom and in which order waiters were granted.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.errors import SchedulerHangError
from repro.storage.locks import set_wait_hooks

_NEW = "new"
_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"
_FAILED = "failed"


class SchedulerTask:
    """One session program under the scheduler."""

    def __init__(self, index: int, name: str, fn: Callable[[], Any]):
        self.index = index
        self.name = name
        self.fn = fn
        self.state = _NEW
        self.go = threading.Event()
        self.wake_check: Callable[[], bool] | None = None
        self.result: Any = None
        self.error: BaseException | None = None
        self.thread: threading.Thread | None = None
        #: The session this task drives, when spawn() was told — used to
        #: name held/waited locks if the task's thread hangs at shutdown.
        self.session = None

    @property
    def finished(self) -> bool:
        return self.state in (_DONE, _FAILED)

    def __repr__(self) -> str:
        return f"<SchedulerTask {self.name} {self.state}>"


class CooperativeScheduler:
    """Runs spawned tasks one at a time with deterministic switching."""

    def __init__(self) -> None:
        self._tasks: list[SchedulerTask] = []
        self._tls = threading.local()
        self._yielded = threading.Event()
        self._next_index = 0
        self.switches = 0
        self.log: list[tuple[str, str]] = []

    # -- building the task set -------------------------------------------------

    def spawn(
        self,
        fn: Callable[[], Any],
        name: str | None = None,
        *,
        session=None,
    ) -> SchedulerTask:
        """Register *fn* as a task; with *session*, wire its backoff to us."""
        task = SchedulerTask(len(self._tasks), name or f"task{len(self._tasks)}", fn)
        self._tasks.append(task)
        if session is not None:
            session.scheduler = self
            task.session = session
        return task

    # -- the processor ---------------------------------------------------------

    def run(
        self,
        *,
        max_switches: int = 1_000_000,
        raise_errors: bool = True,
        join_timeout: float = 10.0,
    ):
        """Drive every task to completion; returns the list of results.

        With *raise_errors* (default), the first task exception is
        re-raised after all tasks have stopped; otherwise inspect
        ``task.error`` per task.  A task thread that fails to exit within
        *join_timeout* raises :class:`~repro.errors.SchedulerHangError`
        naming the stuck task and (when its session is known) the locks it
        holds and the transactions it waits for.
        """
        for task in self._tasks:
            thread = threading.Thread(
                target=self._task_main, args=(task,), name=task.name, daemon=True
            )
            task.thread = thread
            thread.start()
        while not all(task.finished for task in self._tasks):
            if self.switches >= max_switches:
                raise RuntimeError(
                    f"cooperative scheduler exceeded {max_switches} switches"
                )
            self._promote_woken()
            task = self._pick_next()
            if task is None:
                stuck = [t.name for t in self._tasks if t.state == _BLOCKED]
                raise RuntimeError(
                    f"cooperative scheduler wedged: {stuck} blocked with no "
                    "grant pending (lock released without waking waiters?)"
                )
            self._dispatch(task)
        self._join_tasks(join_timeout)
        if raise_errors:
            for task in self._tasks:
                if task.error is not None:
                    raise task.error
        return [task.result for task in self._tasks]

    def _join_tasks(self, join_timeout: float) -> None:
        """Join every task thread; surface a hang instead of shrugging it off."""
        for task in self._tasks:
            if task.thread is None:
                continue
            task.thread.join(timeout=join_timeout)
            if task.thread.is_alive():
                raise SchedulerHangError(task.name, self._describe_hang(task))

    def _describe_hang(self, task: SchedulerTask) -> str:
        session = task.session
        if session is None:
            return f"state {task.state!r}, no session attached"
        parts = [f"state {task.state!r}", f"session {session.name!r}"]
        txn = session.current_txn
        if txn is not None:
            manager = session.db.storage.lock_manager
            held = sorted(map(repr, manager.locks_held(txn.txid)))
            waits = sorted(manager.waits_for_edges().get(txn.txid, ()))
            parts.append(f"txn {txn.txid} holds {held or 'nothing'}")
            if waits:
                parts.append(f"waits for txns {waits}")
        return ", ".join(parts)

    def _promote_woken(self) -> None:
        # Spawn order here too: grants already happened inside the lock
        # manager (FIFO per resource), so this order only decides who runs
        # first among tasks woken by the same release.
        for task in self._tasks:
            if task.state == _BLOCKED and task.wake_check is not None:
                if task.wake_check():
                    task.wake_check = None
                    task.state = _READY
                    self.log.append(("wake", task.name))

    def _pick_next(self) -> SchedulerTask | None:
        n = len(self._tasks)
        for offset in range(n):
            task = self._tasks[(self._next_index + offset) % n]
            if task.state in (_NEW, _READY):
                self._next_index = (task.index + 1) % n
                return task
        return None

    def _dispatch(self, task: SchedulerTask) -> None:
        task.state = _RUNNING
        self.switches += 1
        self.log.append(("run", task.name))
        self._yielded.clear()
        task.go.set()
        self._yielded.wait()

    # -- task side --------------------------------------------------------------

    def _task_main(self, task: SchedulerTask) -> None:
        self._tls.task = task
        set_wait_hooks(self)
        task.go.wait()
        task.go.clear()
        try:
            task.result = task.fn()
        except BaseException as exc:
            task.error = exc
            task.state = _FAILED
            self.log.append(("fail", task.name))
        else:
            task.state = _DONE
            self.log.append(("done", task.name))
        finally:
            set_wait_hooks(None)
            self._yielded.set()

    def _park(self, task: SchedulerTask, state: str) -> None:
        task.state = state
        self._yielded.set()
        task.go.wait()
        task.go.clear()

    def yield_now(self) -> None:
        """Cooperative checkpoint: let every other runnable task have a turn."""
        task = getattr(self._tls, "task", None)
        if task is None:
            return  # called outside the scheduler (serial code path): no-op
        self._park(task, _READY)

    # -- lock-manager wait hook (repro.storage.locks.set_wait_hooks) -----------

    def lock_wait(self, predicate: Callable[[], bool]) -> None:
        """Park the calling task until *predicate* (the grant check) holds."""
        task = self._tls.task
        if predicate():
            return
        task.wake_check = predicate
        self.log.append(("block", task.name))
        self._park(task, _BLOCKED)
