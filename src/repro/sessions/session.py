"""The session: one application's transaction context over a shared database.

DESIGN.md §11 describes the model; the short version:

* a session owns *its* current transaction (``deref``/``pnew``/handles in a
  session resolve against that transaction's object cache);
* the **ambient session** is a thread-local — each session thread resolves
  ``db.txn_manager.current()`` to its own session's transaction, which is
  how every existing ``db.deref(...)`` call site became session-aware
  without changing its signature;
* persistent handles are *bound to the session that dereferenced them*: a
  handle used from anywhere runs its reads, writes, and event postings in
  its owning session's transaction.

Deadlock policy: the lock manager raises
:class:`~repro.errors.DeadlockError` in the victim (the session whose
request closed the cycle); :meth:`Session.run` aborts the transaction,
backs off, and retries the whole transaction body — the unit of retry is
the transaction, exactly because strict 2PL released all its locks at
abort.
"""

from __future__ import annotations

import random
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, fields as dataclass_fields, asdict
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro import obs
from repro.errors import (
    DatabaseClosedError,
    TransactionDeadlineError,
    TransactionError,
)
from repro.faults.retry import (
    DEFAULT_UNIFIED_RETRY,
    RetryClass,
    RetryState,
    UnifiedRetryPolicy,
)
from repro.storage.locks import current_wait_hooks

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database
    from repro.objects.handle import PersistentHandle
    from repro.objects.oid import PersistentPtr
    from repro.transactions.txn import Transaction


@dataclass
class SessionStats:
    """Per-database session counters (mounted as ``sessions.*``)."""

    opened: int = 0
    closed: int = 0
    peak_concurrent: int = 0
    #: deadlock-victim attempts that were actually retried (an attempt
    #: whose budget was exhausted re-raises and is *not* counted here —
    #: it lands in ``retry_exhausted`` instead)
    deadlock_retries: int = 0
    #: MVCC lost-update conflicts (TriggerStateConflictError) retried
    conflict_retries: int = 0
    #: transactions that exhausted their retry budget
    retry_exhausted: int = 0
    system_txns: int = 0

    def snapshot(self) -> dict[str, int]:
        return asdict(self)

    def reset(self) -> None:
        for field in dataclass_fields(self):
            setattr(self, field.name, 0)


# -- ambient session ----------------------------------------------------------

_ambient = threading.local()


def current_ambient_session() -> "Session | None":
    """The session the calling thread is executing in, if any."""
    stack = getattr(_ambient, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def ambient_session(session: "Session") -> Iterator["Session"]:
    """Make *session* the calling thread's ambient session for the block."""
    stack = getattr(_ambient, "stack", None)
    if stack is None:
        stack = _ambient.stack = []
    stack.append(session)
    try:
        yield session
    finally:
        stack.pop()


class Session:
    """One application's connection to an open database."""

    def __init__(self, db: "Database", name: str, *, default: bool = False):
        self.db = db
        self.name = name
        self.default = default
        self.closed = False
        #: The session's active (or committing) transaction, if any.  Only
        #: the session's own thread assigns it, via the transaction manager.
        self.current_txn: "Transaction | None" = None
        #: Set by a CooperativeScheduler when this session runs under it;
        #: used to make deadlock backoff a deterministic yield.
        self.scheduler = None
        # Seeded from a *stable* digest, not hash() — str hashing is salted
        # per process, and a per-run seed would make threaded backoff (and
        # therefore any schedule it perturbs) unreplayable across runs.
        # Cooperative mode never consults this rng at all (see _backoff).
        self._rng = random.Random(zlib.crc32(f"{db.name}/{name}".encode("utf-8")))

    # -- transactions ---------------------------------------------------------

    @contextmanager
    def transaction(self, *, system: bool = False) -> Iterator["Transaction"]:
        """A transaction block in this session (O++ semantics, see
        :meth:`repro.transactions.manager.TransactionManager.transaction`)."""
        self._check_open()
        with ambient_session(self):
            with self.db.txn_manager.transaction(system=system, session=self) as txn:
                yield txn

    def begin(self, *, system: bool = False) -> "Transaction":
        self._check_open()
        return self.db.txn_manager.begin(system=system, session=self)

    def commit(self) -> None:
        self.db.txn_manager.commit(self._require_txn())

    def abort(self) -> None:
        self.db.txn_manager.abort(self._require_txn())

    def run(
        self,
        body: Callable[["Transaction"], Any],
        *,
        retries: int | None = None,
        deadline: float | None = None,
        policy: "UnifiedRetryPolicy | None" = None,
    ) -> Any:
        """Run *body* in a transaction, retrying recoverable failures.

        Each failed attempt is classified (:mod:`repro.faults.retry`):
        deadlock victims, lock timeouts, and transient I/O errors that
        escaped the storage layer are retried from the top of the body —
        strict 2PL released all the aborted attempt's locks, so the unit
        of retry is the whole transaction — against per-class budgets from
        *policy* (default :data:`DEFAULT_UNIFIED_RETRY`); everything else
        re-raises immediately.  *retries* overrides just the deadlock
        budget (the historical signature).  Backoff is a deterministic
        yield under a cooperative scheduler and a crc32-seeded jittered
        sleep in threaded mode.

        *deadline*, in seconds, bounds the **waiting** across all
        attempts: each attempt's transaction registers an absolute
        deadline with the lock manager (a lock wait past it raises
        :class:`TransactionDeadlineError`), and the same check guards the
        retry loop itself, so a session cannot spin past its budget.
        CPU-bound bodies are not interrupted — the guarantee is "no
        unbounded waits", not preemption.
        """
        chosen = policy if policy is not None else DEFAULT_UNIFIED_RETRY
        if retries is not None:
            chosen = chosen.with_budget(RetryClass.DEADLOCK, retries)
        deadline_at = None if deadline is None else time.monotonic() + deadline
        state = RetryState(chosen)
        lock_manager = self.db.storage.lock_manager
        while True:
            if deadline_at is not None and time.monotonic() >= deadline_at:
                raise TransactionDeadlineError(
                    f"session {self.name!r}: deadline expired after "
                    f"{state.total_attempts} failed attempt(s)"
                )
            try:
                with self.transaction() as txn:
                    if deadline_at is not None:
                        lock_manager.set_deadline(txn.txid, deadline_at)
                    return body(txn)
            except Exception as exc:
                klass, may_retry = state.consume(exc)
                if not may_retry:
                    # An exhausted victim is not a retry: count it only in
                    # retry_exhausted, so `deadlock_retries` stays equal to
                    # the number of extra attempts actually made (E16's
                    # "deadlock retries" column reports retries, not
                    # victims).
                    if klass.retryable:
                        self.db.session_stats.retry_exhausted += 1
                    raise
                if klass is RetryClass.DEADLOCK:
                    self.db.session_stats.deadlock_retries += 1
                    if obs.ENABLED:
                        obs.emit(
                            "session.deadlock_retry",
                            session=self.name,
                            attempt=state.attempts[klass],
                        )
                else:
                    if klass is RetryClass.CC_CONFLICT:
                        self.db.session_stats.conflict_retries += 1
                    if obs.ENABLED:
                        obs.emit(
                            "session.retry",
                            session=self.name,
                            klass=klass.value,
                            attempt=state.attempts[klass],
                        )
                self.db.metrics.counter(f"retries.{klass.value}").inc()
                self._backoff(state.total_attempts, chosen)

    def _backoff(
        self, attempt: int, policy: "UnifiedRetryPolicy" = DEFAULT_UNIFIED_RETRY
    ) -> None:
        scheduler = self.scheduler
        if scheduler is None:
            # Running inside a scheduler task without an explicit binding:
            # the thread's lock-wait hooks *are* the scheduler.  Backing off
            # with time.sleep() here would wedge the whole scheduler — the
            # victim never yields, so the lock holders it keeps deadlocking
            # against never get the processor back to commit.
            hooks = current_wait_hooks()
            if hooks is not None and hasattr(hooks, "yield_now"):
                scheduler = hooks
        if scheduler is not None:
            # Deterministic: yield the processor `attempt` times so the
            # surviving transactions make progress before we retry.
            for _ in range(attempt):
                scheduler.yield_now()
        else:
            time.sleep(policy.delay(attempt, self._rng))

    # -- data plane (delegates to the database with this session ambient) ------

    def pnew(self, cls: type, *args: Any, **kwargs: Any) -> "PersistentHandle":
        with ambient_session(self):
            return self.db.pnew(cls, *args, **kwargs)

    def deref(self, ptr: "PersistentPtr") -> "PersistentHandle":
        with ambient_session(self):
            return self.db.deref(ptr)

    def pdelete(self, ptr: "PersistentPtr") -> None:
        with ambient_session(self):
            return self.db.pdelete(ptr)

    def objects(self, cls: type, include_derived: bool = True):
        with ambient_session(self):
            yield from self.db.objects(cls, include_derived)

    def find(self, cls: type, field_name: str, value):
        with ambient_session(self):
            return self.db.find(cls, field_name, value)

    def post_many(self, items) -> int:
        """Batch-post ``(handle_or_ptr, event_name)`` pairs in this
        session's transaction (see :meth:`Database.post_many`)."""
        with ambient_session(self):
            return self.db.post_many(items)

    # -- plumbing ----------------------------------------------------------------

    def current_txn_or_raise(self) -> "Transaction":
        from repro.errors import NoActiveTransactionError
        from repro.transactions.txn import TxnState

        txn = self.current_txn
        # COMMITTING counts as current: before-commit hooks (deferred
        # trigger actions, `before tcomplete` posting) still run inside
        # the transaction and perform data operations.
        if txn is None or txn.state not in (TxnState.ACTIVE, TxnState.COMMITTING):
            raise NoActiveTransactionError(
                f"no active transaction in session {self.name!r}; "
                "use `with session.transaction():`"
            )
        return txn

    def _require_txn(self) -> "Transaction":
        txn = self.current_txn
        if txn is None:
            raise TransactionError(f"session {self.name!r} has no transaction")
        return txn

    def _check_open(self) -> None:
        if self.closed:
            raise DatabaseClosedError(f"session {self.name!r} is closed")

    def close(self) -> None:
        """Close the session, aborting any transaction still in flight."""
        if self.closed:
            return
        txn = self.current_txn
        if txn is not None and txn.is_active:
            self.db.txn_manager.abort(txn, explicit=False)
        self.closed = True
        self.db._session_closed(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<Session {self.name!r} on {self.db.name!r} ({state})>"
