"""Storage-manager substrates for the Ode reproduction.

The Ode object manager runs on top of a storage manager that supplies
"locking, logging, transactions, etc." (paper Section 2).  The original
system used the disk-based EOS storage manager for regular Ode and the
main-memory Dali storage manager for MM-Ode; both share the object-manager
code above them.  This package reproduces that split:

* :class:`~repro.storage.disk.DiskStorageManager` — an EOS-like engine with
  slotted pages, an LRU buffer pool, a write-ahead log with value logging
  (redo committed work, undo losers), and strict two-phase locking.
* :class:`~repro.storage.mainmem.MainMemoryStorageManager` — a Dali-like
  engine keeping records in memory with per-transaction undo logs and an
  optional operation-log + snapshot durability scheme.

Both implement :class:`~repro.storage.interface.StorageManager`, so the
object manager (and thus the whole trigger system) is engine-agnostic,
exactly as Ode and MM-Ode "share a great deal of run-time system code"
(paper Section 5.6).
"""

from repro.storage.buffer import BufferPool, PagedFile
from repro.storage.disk import DiskStorageManager
from repro.storage.interface import StorageManager, StorageStats
from repro.storage.locks import (
    DEFAULT_LOCK_STRIPES,
    LockManager,
    LockMode,
    LockRequestStatus,
)
from repro.storage.mainmem import MainMemoryStorageManager
from repro.storage.page import PAGE_SIZE, SlottedPage
from repro.storage.wal import LogRecord, LogRecordKind, WriteAheadLog

__all__ = [
    "DEFAULT_LOCK_STRIPES",
    "PAGE_SIZE",
    "BufferPool",
    "DiskStorageManager",
    "LockManager",
    "LockMode",
    "LockRequestStatus",
    "LogRecord",
    "LogRecordKind",
    "MainMemoryStorageManager",
    "PagedFile",
    "SlottedPage",
    "StorageManager",
    "StorageStats",
    "WriteAheadLog",
    "open_storage",
]


def open_storage(path, engine: str = "disk", **kwargs) -> StorageManager:
    """Open a storage manager of the requested *engine* at *path*.

    ``engine`` is ``"disk"`` (EOS-like) or ``"mm"`` (Dali-like).  Extra
    keyword arguments are forwarded to the engine constructor.
    """
    if engine == "disk":
        return DiskStorageManager(path, **kwargs)
    if engine == "mm":
        return MainMemoryStorageManager(path, **kwargs)
    raise ValueError(f"unknown storage engine {engine!r} (expected 'disk' or 'mm')")
