"""A transactional B+-tree over the record store.

The paper notes that MM-Ode shipped "with full Ode functionality (except
for B-trees which do not exist in Dali)" — so disk Ode *had* B-trees.
This is that substrate: an order-N B+-tree whose nodes are ordinary
records, which makes every operation transactional (undo, recovery,
locking) for free through the storage manager underneath.

Design:

* Keys are byte strings (order-preserving encodings are the caller's job;
  see :mod:`repro.objects.index`), values are lists of ints (a secondary
  index maps a key to many rids).
* A fixed *header* record holds the current root rid, so the tree's
  identity survives root splits; the catalog stores the header rid.
* Leaves are chained for range scans.
* Deletion is lazy (keys are removed; underfull nodes are not rebalanced)
  — correct and simple, with space reclaimed when a tree is rebuilt; the
  classic engineering trade early systems made.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.errors import StorageError
from repro.objects.serialize import decode_value, encode_value

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.interface import StorageManager

#: Maximum keys per node before it splits.
DEFAULT_ORDER = 32

_NO_NODE = -1


def _encode(value) -> bytes:
    out = bytearray()
    encode_value(value, out)
    return bytes(out)


def _decode(raw: bytes):
    value, _ = decode_value(raw, 0)
    return value


@dataclasses.dataclass
class _Node:
    leaf: bool
    keys: list[bytes]
    # Leaves: values[i] is the list of ints for keys[i]; interior nodes:
    # children has len(keys)+1 rids.
    values: list[list[int]]
    children: list[int]
    next_leaf: int = _NO_NODE

    def encode(self) -> bytes:
        return _encode(
            {
                "leaf": self.leaf,
                "keys": list(self.keys),
                "values": [list(v) for v in self.values],
                "children": list(self.children),
                "next": self.next_leaf,
            }
        )

    @classmethod
    def decode(cls, raw: bytes) -> "_Node":
        data = _decode(raw)
        return cls(
            leaf=data["leaf"],
            keys=list(data["keys"]),
            values=[list(v) for v in data["values"]],
            children=list(data["children"]),
            next_leaf=data["next"],
        )


class BTree:
    """An order-N B+-tree stored in a :class:`StorageManager`."""

    def __init__(self, storage: "StorageManager", header_rid: int, order: int = DEFAULT_ORDER):
        if order < 4:
            raise StorageError("B-tree order must be at least 4")
        self.storage = storage
        self.header_rid = header_rid
        self.order = order

    # -- creation --------------------------------------------------------------

    @classmethod
    def create(
        cls, storage: "StorageManager", txid: int, order: int = DEFAULT_ORDER
    ) -> "BTree":
        """Allocate an empty tree; returns it (persist ``header_rid``)."""
        root = _Node(leaf=True, keys=[], values=[], children=[])
        root_rid = storage.insert(txid, root.encode())
        header_rid = storage.insert(txid, _encode({"root": root_rid}))
        return cls(storage, header_rid, order)

    # -- node I/O ----------------------------------------------------------------

    def _root_rid(self, txid: int) -> int:
        return _decode(self.storage.read(txid, self.header_rid))["root"]

    def _set_root_rid(self, txid: int, rid: int) -> None:
        self.storage.write(txid, self.header_rid, _encode({"root": rid}))

    def _load(self, txid: int, rid: int) -> _Node:
        return _Node.decode(self.storage.read(txid, rid))

    def _store(self, txid: int, rid: int, node: _Node) -> None:
        self.storage.write(txid, rid, node.encode())

    # -- search --------------------------------------------------------------------

    @staticmethod
    def _position(keys: list[bytes], key: bytes) -> int:
        """First index whose key is >= *key* (binary search)."""
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _find_leaf(self, txid: int, key: bytes) -> tuple[int, _Node]:
        rid = self._root_rid(txid)
        node = self._load(txid, rid)
        while not node.leaf:
            index = self._position(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                index += 1  # equal keys live in the right subtree
            rid = node.children[index]
            node = self._load(txid, rid)
        return rid, node

    def get(self, txid: int, key: bytes) -> list[int]:
        """The values stored under *key* (empty list when absent)."""
        _, leaf = self._find_leaf(txid, key)
        index = self._position(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def contains(self, txid: int, key: bytes) -> bool:
        return bool(self.get(txid, key))

    # -- range scans -------------------------------------------------------------------

    def range(
        self,
        txid: int,
        lo: bytes | None = None,
        hi: bytes | None = None,
    ) -> Iterator[tuple[bytes, int]]:
        """Yield ``(key, value)`` pairs with ``lo <= key <= hi``, in order."""
        if lo is None:
            rid = self._root_rid(txid)
            node = self._load(txid, rid)
            while not node.leaf:
                node = self._load(txid, node.children[0])
            leaf = node
        else:
            _, leaf = self._find_leaf(txid, lo)
        while True:
            for index, key in enumerate(leaf.keys):
                if lo is not None and key < lo:
                    continue
                if hi is not None and key > hi:
                    return
                for value in leaf.values[index]:
                    yield key, value
            if leaf.next_leaf == _NO_NODE:
                return
            leaf = self._load(txid, leaf.next_leaf)

    def items(self, txid: int) -> Iterator[tuple[bytes, int]]:
        return self.range(txid)

    def count(self, txid: int) -> int:
        return sum(1 for _ in self.items(txid))

    # -- insertion -----------------------------------------------------------------------

    def insert(self, txid: int, key: bytes, value: int) -> None:
        """Add *value* under *key* (duplicates per key are kept)."""
        root_rid = self._root_rid(txid)
        split = self._insert_into(txid, root_rid, key, value)
        if split is not None:
            sep_key, right_rid = split
            new_root = _Node(
                leaf=False,
                keys=[sep_key],
                values=[],
                children=[root_rid, right_rid],
            )
            new_root_rid = self.storage.insert(txid, new_root.encode())
            self._set_root_rid(txid, new_root_rid)

    def _insert_into(
        self, txid: int, rid: int, key: bytes, value: int
    ) -> tuple[bytes, int] | None:
        """Insert under the subtree at *rid*; returns a (separator, new
        right sibling rid) pair when the node split."""
        node = self._load(txid, rid)
        if node.leaf:
            index = self._position(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                if value not in node.values[index]:
                    node.values[index].append(value)
            else:
                node.keys.insert(index, key)
                node.values.insert(index, [value])
            if len(node.keys) > self.order:
                return self._split_leaf(txid, rid, node)
            self._store(txid, rid, node)
            return None

        index = self._position(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            index += 1
        split = self._insert_into(txid, node.children[index], key, value)
        if split is None:
            return None
        sep_key, right_rid = split
        node.keys.insert(index, sep_key)
        node.children.insert(index + 1, right_rid)
        if len(node.keys) > self.order:
            return self._split_interior(txid, rid, node)
        self._store(txid, rid, node)
        return None

    def _split_leaf(self, txid: int, rid: int, node: _Node) -> tuple[bytes, int]:
        mid = len(node.keys) // 2
        right = _Node(
            leaf=True,
            keys=node.keys[mid:],
            values=node.values[mid:],
            children=[],
            next_leaf=node.next_leaf,
        )
        right_rid = self.storage.insert(txid, right.encode())
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        node.next_leaf = right_rid
        self._store(txid, rid, node)
        return right.keys[0], right_rid

    def _split_interior(self, txid: int, rid: int, node: _Node) -> tuple[bytes, int]:
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = _Node(
            leaf=False,
            keys=node.keys[mid + 1 :],
            values=[],
            children=node.children[mid + 1 :],
        )
        right_rid = self.storage.insert(txid, right.encode())
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self._store(txid, rid, node)
        return sep_key, right_rid

    # -- deletion (lazy) ------------------------------------------------------------------

    def delete(self, txid: int, key: bytes, value: int | None = None) -> bool:
        """Remove *value* under *key* (or the whole key when value is None).

        Returns whether anything was removed.  Nodes are not rebalanced.
        """
        leaf_rid, leaf = self._find_leaf(txid, key)
        index = self._position(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        if value is None:
            del leaf.keys[index]
            del leaf.values[index]
        else:
            if value not in leaf.values[index]:
                return False
            leaf.values[index].remove(value)
            if not leaf.values[index]:
                del leaf.keys[index]
                del leaf.values[index]
        self._store(txid, leaf_rid, leaf)
        return True

    # -- diagnostics ---------------------------------------------------------------------

    def depth(self, txid: int) -> int:
        depth = 1
        node = self._load(txid, self._root_rid(txid))
        while not node.leaf:
            depth += 1
            node = self._load(txid, node.children[0])
        return depth

    def check_invariants(self, txid: int) -> list[str]:
        """Structural checks: key order within/between nodes, leaf chain."""
        problems: list[str] = []

        def walk(rid: int, lo: bytes | None, hi: bytes | None) -> None:
            node = self._load(txid, rid)
            for a, b in zip(node.keys, node.keys[1:]):
                if a >= b:
                    problems.append(f"node {rid}: keys out of order")
            for key in node.keys:
                if lo is not None and key < lo:
                    problems.append(f"node {rid}: key below subtree bound")
                if hi is not None and key >= hi:
                    problems.append(f"node {rid}: key above subtree bound")
            if node.leaf:
                if len(node.keys) != len(node.values):
                    problems.append(f"leaf {rid}: keys/values mismatch")
            else:
                if len(node.children) != len(node.keys) + 1:
                    problems.append(f"interior {rid}: children/keys mismatch")
                bounds = [lo] + list(node.keys) + [hi]
                for i, child in enumerate(node.children):
                    walk(child, bounds[i], bounds[i + 1])

        walk(self._root_rid(txid), None, None)
        # Leaf chain must enumerate keys in global order.
        last: bytes | None = None
        for key, _ in self.items(txid):
            if last is not None and key < last:
                problems.append("leaf chain out of order")
                break
            last = key
        return problems
