"""Paged file and LRU buffer pool for the disk engine.

:class:`PagedFile` gives page-granular I/O over an ordinary OS file.
:class:`BufferPool` caches :class:`~repro.storage.page.SlottedPage` frames
with pin counts and LRU replacement of unpinned frames; dirty frames are
written back on eviction or on an explicit flush (NO-FORCE at commit — the
write-ahead log makes committed work durable, not page flushes).
"""

from __future__ import annotations

import os
from collections import OrderedDict

from repro.errors import BufferPoolError, PageError
from repro.storage.page import PAGE_SIZE, SlottedPage


class PagedFile:
    """Page-granular I/O over a single OS file."""

    def __init__(self, path: str):
        self.path = str(path)
        flags = os.O_RDWR | os.O_CREAT
        self._fd = os.open(self.path, flags, 0o644)
        size = os.fstat(self._fd).st_size
        if size % PAGE_SIZE:
            raise PageError(f"{path}: size {size} is not a multiple of {PAGE_SIZE}")
        self._num_pages = size // PAGE_SIZE
        self._closed = False

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def allocate_page(self) -> int:
        """Append a zeroed page, returning its page number."""
        page_no = self._num_pages
        os.pwrite(self._fd, bytes(PAGE_SIZE), page_no * PAGE_SIZE)
        self._num_pages += 1
        return page_no

    def read_page(self, page_no: int) -> bytearray:
        if not 0 <= page_no < self._num_pages:
            raise PageError(f"page {page_no} out of range (have {self._num_pages})")
        data = os.pread(self._fd, PAGE_SIZE, page_no * PAGE_SIZE)
        return bytearray(data)

    def write_page(self, page_no: int, raw: bytes | bytearray) -> None:
        if len(raw) != PAGE_SIZE:
            raise PageError(f"write_page needs {PAGE_SIZE} bytes, got {len(raw)}")
        if not 0 <= page_no < self._num_pages:
            raise PageError(f"page {page_no} out of range (have {self._num_pages})")
        os.pwrite(self._fd, bytes(raw), page_no * PAGE_SIZE)

    def sync(self) -> None:
        os.fsync(self._fd)

    def close(self) -> None:
        if not self._closed:
            os.close(self._fd)
            self._closed = True


class _Frame:
    __slots__ = ("page", "pin_count", "dirty")

    def __init__(self, page: SlottedPage):
        self.page = page
        self.pin_count = 0
        self.dirty = False


class BufferPool:
    """Fixed-capacity page cache with pinning and LRU replacement."""

    def __init__(self, file: PagedFile, capacity: int = 128, stats=None, pre_write=None):
        if capacity < 1:
            raise BufferPoolError("buffer pool capacity must be >= 1")
        self.file = file
        self.capacity = capacity
        self._frames: OrderedDict[int, _Frame] = OrderedDict()
        self._stats = stats
        # Called before any dirty frame reaches disk — the engine forces the
        # WAL here so the write-ahead rule holds even for STEAL evictions.
        self._pre_write = pre_write

    # -- pin/unpin protocol -------------------------------------------------

    def fetch(self, page_no: int) -> SlottedPage:
        """Pin and return the page; loads (and possibly evicts) as needed."""
        frame = self._frames.get(page_no)
        if frame is not None:
            self._frames.move_to_end(page_no)
            if self._stats is not None:
                self._stats.page_hits += 1
        else:
            if self._stats is not None:
                self._stats.page_misses += 1
            self._ensure_room()
            frame = _Frame(SlottedPage(self.file.read_page(page_no)))
            self._frames[page_no] = frame
        frame.pin_count += 1
        return frame.page

    def unpin(self, page_no: int, *, dirty: bool) -> None:
        frame = self._frames.get(page_no)
        if frame is None or frame.pin_count == 0:
            raise BufferPoolError(f"page {page_no} is not pinned")
        frame.pin_count -= 1
        frame.dirty = frame.dirty or dirty

    # -- flushing -----------------------------------------------------------

    def flush_page(self, page_no: int) -> None:
        frame = self._frames.get(page_no)
        if frame is not None and frame.dirty:
            if self._pre_write is not None:
                self._pre_write()
            self.file.write_page(page_no, frame.page.raw)
            frame.dirty = False

    def flush_all(self) -> None:
        for page_no in list(self._frames):
            self.flush_page(page_no)
        self.file.sync()

    def drop_all(self) -> None:
        """Forget every frame without writing (used after crash simulation)."""
        if any(frame.pin_count for frame in self._frames.values()):
            raise BufferPoolError("cannot drop frames while pages are pinned")
        self._frames.clear()

    # -- internals -----------------------------------------------------------

    def _ensure_room(self) -> None:
        if len(self._frames) < self.capacity:
            return
        for page_no, frame in self._frames.items():
            if frame.pin_count == 0:
                if frame.dirty:
                    if self._pre_write is not None:
                        self._pre_write()
                    self.file.write_page(page_no, frame.page.raw)
                del self._frames[page_no]
                if self._stats is not None:
                    self._stats.page_evictions += 1
                return
        raise BufferPoolError("buffer pool exhausted: every frame is pinned")

    def cached_pages(self) -> frozenset[int]:
        return frozenset(self._frames)

    def __len__(self) -> int:
        return len(self._frames)
