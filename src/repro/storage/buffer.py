"""Paged file and LRU buffer pool for the disk engine.

:class:`PagedFile` gives page-granular I/O over an ordinary OS file.
:class:`BufferPool` caches :class:`~repro.storage.page.SlottedPage` frames
with pin counts and LRU replacement of unpinned frames; dirty frames are
written back on eviction or on an explicit flush (NO-FORCE at commit — the
write-ahead log makes committed work durable, not page flushes).

Robustness hooks threaded through this layer:

* every page carries a trailing CRC32 (see :mod:`repro.storage.page`),
  stamped on write and verified on read — torn page writes and bit rot
  raise :class:`~repro.errors.PageChecksumError` instead of decoding
  garbage;
* transient ``OSError``s around ``pread``/``pwrite``/``fsync`` are retried
  with bounded exponential backoff (:func:`repro.faults.with_retry`);
* named failpoints (``page.read``, ``page.write``, ``page.sync``,
  ``pool.evict``) let the fault injector crash, corrupt, or fail each
  physical operation deterministically.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from collections import OrderedDict

from repro import obs
from repro.errors import BufferPoolError, PageChecksumError, PageError
from repro.faults.injector import NULL_INJECTOR, FaultInjector, with_retry
from repro.storage.page import PAGE_SIZE, USABLE_END, SlottedPage

_CRC = struct.Struct("<I")


def stamp_checksum(raw: bytearray) -> None:
    """Write the CRC32 of the page body into its trailing checksum field."""
    _CRC.pack_into(raw, USABLE_END, zlib.crc32(bytes(raw[:USABLE_END])))


def checksum_ok(raw: bytes | bytearray) -> bool:
    """Whether a page's stored CRC matches its body.

    An all-zero page is accepted as a valid never-initialized page: its
    checksum field was never stamped, and there is no content to protect.
    """
    (stored,) = _CRC.unpack_from(raw, USABLE_END)
    if stored == zlib.crc32(bytes(raw[:USABLE_END])):
        return True
    return not any(raw)


class PagedFile:
    """Page-granular I/O over a single OS file."""

    def __init__(
        self,
        path: str,
        *,
        injector: FaultInjector = NULL_INJECTOR,
        stats=None,
    ):
        self.path = str(path)
        self.injector = injector
        self._stats = stats
        flags = os.O_RDWR | os.O_CREAT
        self._fd = os.open(self.path, flags, 0o644)
        size = os.fstat(self._fd).st_size
        if size % PAGE_SIZE:
            # A torn append: the process died while extending the file.
            # The partial tail page was never acknowledged to anyone (page
            # allocation is only durable once the header/WAL says so), so
            # discard it rather than refuse to open.
            size -= size % PAGE_SIZE
            os.ftruncate(self._fd, size)
        self._num_pages = size // PAGE_SIZE
        self._closed = False

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def _count_retry(self) -> None:
        if self._stats is not None:
            self._stats.io_retries += 1

    def allocate_page(self) -> int:
        """Append a zeroed (checksum-stamped) page, returning its number."""
        page_no = self._num_pages
        raw = bytearray(PAGE_SIZE)
        stamp_checksum(raw)

        def op():
            data, crash_after = self.injector.fire_write(
                "page.write", bytes(raw), page_no=page_no, allocate=True
            )
            os.pwrite(self._fd, data, page_no * PAGE_SIZE)
            if crash_after:
                os.fsync(self._fd)
                self.injector.crash_pending("page.write")

        with_retry(op, on_retry=self._count_retry)
        self._num_pages += 1
        return page_no

    def read_page(self, page_no: int) -> bytearray:
        if not 0 <= page_no < self._num_pages:
            raise PageError(f"page {page_no} out of range (have {self._num_pages})")

        def op():
            self.injector.fire("page.read", page_no=page_no)
            return os.pread(self._fd, PAGE_SIZE, page_no * PAGE_SIZE)

        data = bytearray(with_retry(op, on_retry=self._count_retry))
        if not checksum_ok(data):
            (stored,) = _CRC.unpack_from(data, USABLE_END)
            raise PageChecksumError(
                page_no, stored, zlib.crc32(bytes(data[:USABLE_END]))
            )
        return data

    def write_page(self, page_no: int, raw: bytes | bytearray) -> None:
        if len(raw) != PAGE_SIZE:
            raise PageError(f"write_page needs {PAGE_SIZE} bytes, got {len(raw)}")
        if not 0 <= page_no < self._num_pages:
            raise PageError(f"page {page_no} out of range (have {self._num_pages})")
        stamped = bytearray(raw)
        stamp_checksum(stamped)

        def op():
            # Faults mangle the bytes *after* the checksum is stamped, so
            # injected corruption is always detectable on the next read.
            data, crash_after = self.injector.fire_write(
                "page.write", bytes(stamped), page_no=page_no
            )
            os.pwrite(self._fd, data, page_no * PAGE_SIZE)
            if crash_after:
                os.fsync(self._fd)
                self.injector.crash_pending("page.write")

        with_retry(op, on_retry=self._count_retry)

    def sync(self) -> None:
        def op():
            self.injector.fire("page.sync")
            os.fsync(self._fd)

        with_retry(op, on_retry=self._count_retry)

    def close(self) -> None:
        if not self._closed:
            os.close(self._fd)
            self._closed = True


class _Frame:
    __slots__ = ("page", "pin_count", "dirty")

    def __init__(self, page: SlottedPage):
        self.page = page
        self.pin_count = 0
        self.dirty = False


class BufferPool:
    """Fixed-capacity page cache with pinning and LRU replacement.

    When :attr:`read_only` is set (the engine degraded after an
    unrecoverable media error) the pool stops writing entirely: flushes
    become no-ops and eviction discards only *clean* frames, growing past
    capacity rather than touching the failed medium.
    """

    def __init__(self, file: PagedFile, capacity: int = 128, stats=None, pre_write=None):
        if capacity < 1:
            raise BufferPoolError("buffer pool capacity must be >= 1")
        self.file = file
        self.capacity = capacity
        self.read_only = False
        self._frames: OrderedDict[int, _Frame] = OrderedDict()
        self._stats = stats
        # Serializes frame-table mutation for threaded sessions (the disk
        # engine's mutex covers its own calls; this keeps the pool safe
        # when driven directly).
        self._mutex = threading.RLock()
        # Called before any dirty frame reaches disk — the engine forces the
        # WAL here so the write-ahead rule holds even for STEAL evictions.
        self._pre_write = pre_write

    # -- pin/unpin protocol -------------------------------------------------

    def fetch(self, page_no: int) -> SlottedPage:
        """Pin and return the page; loads (and possibly evicts) as needed."""
        with self._mutex:
            return self._fetch_locked(page_no)

    def _fetch_locked(self, page_no: int) -> SlottedPage:
        frame = self._frames.get(page_no)
        if frame is not None:
            self._frames.move_to_end(page_no)
            if self._stats is not None:
                self._stats.page_hits += 1
            if obs.ENABLED:
                obs.emit("page.hit", page_no=page_no)
        else:
            if self._stats is not None:
                self._stats.page_misses += 1
            if obs.ENABLED:
                obs.emit("page.miss", page_no=page_no)
            self._ensure_room()
            frame = _Frame(SlottedPage(self.file.read_page(page_no)))
            self._frames[page_no] = frame
        frame.pin_count += 1
        return frame.page

    def unpin(self, page_no: int, *, dirty: bool) -> None:
        with self._mutex:
            frame = self._frames.get(page_no)
            if frame is None or frame.pin_count == 0:
                raise BufferPoolError(f"page {page_no} is not pinned")
            frame.pin_count -= 1
            frame.dirty = frame.dirty or dirty

    # -- flushing -----------------------------------------------------------

    def flush_page(self, page_no: int) -> None:
        if self.read_only:
            return
        with self._mutex:
            frame = self._frames.get(page_no)
            if frame is not None and frame.dirty:
                if self._pre_write is not None:
                    self._pre_write()
                self.file.write_page(page_no, frame.page.raw)
                frame.dirty = False

    def flush_all(self) -> None:
        if self.read_only:
            return
        with self._mutex:
            for page_no in list(self._frames):
                self.flush_page(page_no)
            self.file.sync()

    def drop_all(self) -> None:
        """Forget every frame without writing (used after crash simulation)."""
        if any(frame.pin_count for frame in self._frames.values()):
            raise BufferPoolError("cannot drop frames while pages are pinned")
        self._frames.clear()

    # -- internals -----------------------------------------------------------

    def _ensure_room(self) -> None:
        if len(self._frames) < self.capacity:
            return
        for page_no, frame in self._frames.items():
            if frame.pin_count == 0:
                was_dirty = frame.dirty
                if frame.dirty:
                    if self.read_only:
                        continue  # never write through a failed medium
                    self.file.injector.fire("pool.evict", page_no=page_no)
                    if self._pre_write is not None:
                        self._pre_write()
                    self.file.write_page(page_no, frame.page.raw)
                del self._frames[page_no]
                if self._stats is not None:
                    self._stats.page_evictions += 1
                if obs.ENABLED:
                    obs.emit("page.evict", page_no=page_no, dirty=was_dirty)
                return
        if self.read_only:
            return  # grow past capacity rather than touch the medium
        raise BufferPoolError("buffer pool exhausted: every frame is pinned")

    def cached_pages(self) -> frozenset[int]:
        return frozenset(self._frames)

    def __len__(self) -> int:
        return len(self._frames)
