"""The EOS-like disk storage manager.

Records live in slotted pages cached by an LRU buffer pool; mutations are
value-logged to a write-ahead log (STEAL/NO-FORCE: dirty pages may be
evicted before commit — the pool forces the log first — and commit forces
only the log).  Strict two-phase locking at record granularity.

Record identifiers pack a page number and slot number
(``rid = page_no << 16 | slot_no``).  Updates that outgrow their page leave
a *forwarding* record at the home slot so rids stay stable — essential
because the object manager hands rids out as persistent pointers.

Physical record encoding (first byte is a flag):

* ``0x00`` + u16 length + data (padded to ≥ 9 bytes) — stored inline; the
  padding guarantees an in-place upgrade to a forward pointer is always
  possible, even on a full page,
* ``0x01`` + 8-byte rid — forwarded; the body lives at the target rid,
* ``0x02`` + data — a body (or final body segment); skipped by scans,
* ``0x03`` + 8-byte next rid + data — a body segment with a continuation:
  records larger than a page span a chain of segments, so B-tree nodes and
  other big values fit the engine.

Page 0 is a header page holding a magic string and the committed root rid.

Crash model: :meth:`simulate_crash` closes the files without flushing *and
drops the unforced WAL tail* (``WriteAheadLog.crash``) — a real crash loses
everything the OS page cache held, so only fsynced state survives.  The
next open runs :mod:`repro.storage.recovery`.

Media model: an :class:`~repro.errors.UnrecoverableMediaError` from any
write path degrades the manager to read-only — committed state stays
readable, every later mutation raises
:class:`~repro.errors.ReadOnlyStorageError`, and close drops the unforced
log tail so no half-acknowledged commit surfaces after restart.
"""

from __future__ import annotations

import struct
import threading
from collections.abc import Iterator

from repro.errors import (
    PageFullError,
    ReadOnlyStorageError,
    RecordNotFoundError,
    StorageError,
    UnrecoverableMediaError,
    WALError,
)
from repro.faults.injector import NULL_INJECTOR, FaultInjector
from repro.storage.buffer import BufferPool, PagedFile
from repro.storage.interface import StorageManager
from repro.storage.locks import DEFAULT_LOCK_STRIPES, LockManager, LockMode
from repro.storage.page import PAGE_SIZE, USABLE_END, SlottedPage
from repro.storage.recovery import RecoveryStats, recover
from repro.storage.wal import LogRecord, LogRecordKind, WriteAheadLog

_MAGIC = b"ODEREPRO"
_HEADER_FMT = struct.Struct("<8sq")  # magic, root rid
_SLOT_BITS = 16
_SLOT_MASK = (1 << _SLOT_BITS) - 1

_FLAG_INLINE = 0
_FLAG_FORWARD = 1
_FLAG_MOVED = 2  # body (or final body segment) of a forwarded record
_FLAG_SEGMENT = 3  # body segment with a continuation: 8-byte next rid + chunk

_ROOT_RESOURCE = "ROOT"

_FWD = struct.Struct("<q")

#: Largest record data stored inline / per body segment.  Anything bigger
#: is spanned across a chain of segment records (flag 3 ... flag 2), so
#: records of arbitrary size — B-tree nodes included — fit the engine.
_MAX_CHUNK = 3500

# Inline payloads are length-prefixed and padded to at least the size of a
# forward pointer (9 bytes), so converting an inline record to a forward
# can always be done in place — even on a completely full page.
_INLINE_HEAD = struct.Struct("<BH")  # flag, data length
_MIN_PAYLOAD = 1 + _FWD.size


def _inline_payload(data: bytes) -> bytes:
    payload = _INLINE_HEAD.pack(_FLAG_INLINE, len(data)) + data
    if len(payload) < _MIN_PAYLOAD:
        payload += b"\x00" * (_MIN_PAYLOAD - len(payload))
    return payload


def _inline_data(payload: bytes) -> bytes:
    _, length = _INLINE_HEAD.unpack_from(payload, 0)
    return payload[_INLINE_HEAD.size : _INLINE_HEAD.size + length]


def pack_rid(page_no: int, slot_no: int) -> int:
    """Combine a page number and slot number into a record id."""
    return (page_no << _SLOT_BITS) | slot_no


def unpack_rid(rid: int) -> tuple[int, int]:
    """Split a record id into its page number and slot number."""
    return rid >> _SLOT_BITS, rid & _SLOT_MASK


class DiskStorageManager(StorageManager):
    """Transactional slotted-page store with WAL recovery and 2PL."""

    def __init__(
        self,
        path: str,
        buffer_capacity: int = 128,
        injector: FaultInjector = NULL_INJECTOR,
        lock_stripes: int = DEFAULT_LOCK_STRIPES,
        group_commit: bool = False,
    ):
        super().__init__()
        self.path = str(path)
        self.injector = injector
        self.degraded = False
        self.group_commit = group_commit
        self._file = PagedFile(
            self.path + ".data", injector=injector, stats=self.stats
        )
        self._wal = None
        try:
            self._wal = WriteAheadLog(
                self.path + ".wal",
                stats=self.stats,
                injector=injector,
                group_commit=group_commit,
            )
            self._pool = BufferPool(
                self._file,
                capacity=buffer_capacity,
                stats=self.stats,
                # WAL-before-data staging: force() returns only once every
                # byte appended so far is durable, which is exactly the
                # write-ahead rule — so a STEAL eviction may ride a commit
                # leader's batched fsync instead of paying its own.
                pre_write=self._wal.force,
            )
            self._locks = LockManager(stripes=lock_stripes)
            # Engine-wide mutex for threaded sessions: guards pages, the
            # buffer pool, the free map, per-txn undo lists, and the WAL.
            # Record locks are always taken *outside* it — a blocking lock
            # wait must never hold the engine mutex.
            self._mutex = threading.RLock()
            self._active: dict[int, list[LogRecord]] = {}
            self._page_free: dict[int, int] = {}
            self._root = self.NO_ROOT
            self._closed = False
            self.last_recovery: RecoveryStats | None = None
            self._bootstrap()
        except BaseException:
            # Construction failed (corrupt log, injected crash, ...): do
            # not leak the file descriptors — the crash harness reopens
            # the same path hundreds of times in one process.
            self._file.close()
            if self._wal is not None:
                self._wal.crash()
            raise

    # -- bootstrap / recovery -------------------------------------------------

    def _bootstrap(self) -> None:
        if self._file.num_pages == 0:
            self._file.allocate_page()  # header page
            self._write_header()
        else:
            self._read_header()
        self._rebuild_free_map()
        self.last_recovery = recover(self._wal.replay(), self._redo, self._undo)
        self.checkpoint()

    def _write_header(self) -> None:
        raw = bytearray(PAGE_SIZE)
        _HEADER_FMT.pack_into(raw, 0, _MAGIC, self._root)
        self._file.write_page(0, raw)

    def _read_header(self) -> None:
        raw = self._file.read_page(0)
        magic, root = _HEADER_FMT.unpack_from(raw, 0)
        if magic != _MAGIC:
            if not any(raw[:USABLE_END]):
                # A crash between allocating page 0 and stamping the
                # header leaves a zeroed (CRC-only) page: finish that
                # interrupted bootstrap.
                self._write_header()
                return
            raise StorageError(f"{self.path}: not an Ode-repro data file")
        self._root = root

    def _rebuild_free_map(self) -> None:
        self._page_free.clear()
        for page_no in range(1, self._file.num_pages):
            page = self._pool.fetch(page_no)
            try:
                self._page_free[page_no] = page.free_space()
            finally:
                self._pool.unpin(page_no, dirty=False)

    def _redo(self, record: LogRecord) -> None:
        if record.kind is LogRecordKind.SET_ROOT:
            (self._root,) = _FWD.unpack(record.after)
        elif record.kind is LogRecordKind.INSERT:
            self._ensure_present(record.rid, record.after)
        elif record.kind is LogRecordKind.UPDATE:
            self._ensure_present(record.rid, record.after)
        elif record.kind is LogRecordKind.DELETE:
            self._ensure_absent(record.rid)

    def _undo(self, record: LogRecord) -> None:
        if record.kind is LogRecordKind.SET_ROOT:
            (self._root,) = _FWD.unpack(record.before)
        elif record.kind is LogRecordKind.INSERT:
            self._ensure_absent(record.rid)
        elif record.kind is LogRecordKind.UPDATE:
            self._ensure_present(record.rid, record.before)
        elif record.kind is LogRecordKind.DELETE:
            self._ensure_present(record.rid, record.before)

    def _ensure_present(self, rid: int, data: bytes) -> None:
        if self._exists_raw(rid):
            self._write_raw(rid, data)
        else:
            self._insert_at_raw(rid, data)

    def _ensure_absent(self, rid: int) -> None:
        if self._exists_raw(rid):
            self._delete_raw(rid)

    # -- media degrade ---------------------------------------------------------

    def _degrade(self) -> None:
        """The medium failed permanently: stop writing, keep reading."""
        if self.degraded:
            return
        self.degraded = True
        self._pool.read_only = True
        self._notify_degraded()

    def _check_writable(self) -> None:
        if self.degraded:
            raise ReadOnlyStorageError(
                f"{self.path}: degraded to read-only after a media error"
            )

    def _append_logged(self, txid, kind, rid=-1, before=b"", after=b"") -> LogRecord:
        """WAL append that degrades the engine on permanent media failure."""
        try:
            return self._wal.append(txid, kind, rid, before, after)
        except UnrecoverableMediaError as exc:
            self._degrade()
            raise ReadOnlyStorageError(
                f"{self.path}: log append failed permanently; "
                "database degraded to read-only"
            ) from exc

    # -- transaction control ------------------------------------------------------

    def begin_transaction(self, txid: int) -> None:
        self._check_open()
        with self._mutex:
            if txid in self._active:
                raise StorageError(f"transaction {txid} already active")
            self._active[txid] = []
            if not self.degraded:  # read-only transactions stay possible
                self._append_logged(txid, LogRecordKind.BEGIN)

    def commit_transaction(self, txid: int) -> None:
        self._check_open()
        with self._mutex:
            records = self._require_active(txid)
            if self.degraded:
                if records:
                    raise ReadOnlyStorageError(
                        f"cannot commit transaction {txid}: "
                        "database degraded to read-only with logged mutations"
                    )
                del self._active[txid]
                self.stats.commits += 1
                self._locks.release_all(txid)
                return
            self.injector.fire("txn.commit.begin", txid=txid)
            try:
                self._wal.append(txid, LogRecordKind.COMMIT)
            except UnrecoverableMediaError as exc:
                self._degrade()
                raise ReadOnlyStorageError(
                    f"commit of transaction {txid} failed permanently; "
                    "database degraded to read-only"
                ) from exc
        # The durability fsync runs OUTSIDE the engine mutex: with group
        # commit, concurrent committers elect a leader that fsyncs once
        # for the batch; without it, overlapping appends are still safe
        # because WAL durability is prefix-based (an fsync covering later
        # records covers this COMMIT too).  The txid stays in ``_active``
        # until durable so an abort-after-failure can still undo it.
        try:
            self._wal.force()
        except UnrecoverableMediaError as exc:
            self._degrade()
            raise ReadOnlyStorageError(
                f"commit of transaction {txid} failed permanently; "
                "database degraded to read-only"
            ) from exc
        self.injector.fire("txn.commit.durable", txid=txid)
        with self._mutex:
            del self._active[txid]
            self.stats.commits += 1
        # Outside the mutex: releasing grants queued requests FIFO and
        # wakes the blocked sessions that now hold their locks.
        self._locks.release_all(txid)

    def abort_transaction(self, txid: int) -> None:
        self._check_open()
        with self._mutex:
            self._abort_locked(txid)
        self._locks.release_all(txid)

    def _abort_locked(self, txid: int) -> None:
        records = self._require_active(txid)
        for record in reversed(records):
            compensation = record.inverse()
            if not self.degraded:
                try:
                    self._wal.append(
                        txid,
                        compensation.kind,
                        compensation.rid,
                        compensation.before,
                        compensation.after,
                    )
                except UnrecoverableMediaError:
                    # Keep undoing in memory; recovery replays the loser
                    # from the (fsynced prefix of the) log at next open.
                    self._degrade()
            self._redo(compensation)
        if not self.degraded:
            try:
                self._wal.append(txid, LogRecordKind.ABORT)
            except UnrecoverableMediaError:
                self._degrade()
        del self._active[txid]
        self.stats.aborts += 1

    def _require_active(self, txid: int) -> list[LogRecord]:
        try:
            return self._active[txid]
        except KeyError:
            raise StorageError(f"transaction {txid} is not active") from None

    def _open_txids(self) -> frozenset[int]:
        return frozenset(self._active)

    # -- data operations --------------------------------------------------------------

    def insert(self, txid: int, data: bytes) -> int:
        self._check_open()
        self._check_writable()
        self._require_active(txid)
        with self._mutex:
            rid = self._insert_raw(bytes(data))
        # A fresh rid is invisible to other transactions: the X lock is
        # granted immediately, it just records the holding for 2PL.
        self._locks.lock(txid, rid, LockMode.X)
        with self._mutex:
            try:
                record = self._append_logged(
                    txid, LogRecordKind.INSERT, rid, b"", bytes(data)
                )
            except ReadOnlyStorageError:
                self._delete_raw(rid)  # un-place the unlogged record (in memory)
                raise
            self._active[txid].append(record)
            self.stats.inserts += 1
        return rid

    def read(self, txid: int, rid: int) -> bytes:
        self._check_open()
        self._require_active(txid)
        self._locks.lock(txid, rid, LockMode.S)
        with self._mutex:
            self.stats.reads += 1
            return self._read_raw(rid)

    def write(self, txid: int, rid: int, data: bytes) -> None:
        self._check_open()
        self._check_writable()
        self._require_active(txid)
        self._locks.lock(txid, rid, LockMode.X)
        with self._mutex:
            before = self._read_raw(rid)
            record = self._append_logged(
                txid, LogRecordKind.UPDATE, rid, before, bytes(data)
            )
            self._active[txid].append(record)
            self._write_raw(rid, bytes(data))
            self.stats.writes += 1

    def write_merged(self, txid: int, rid: int, data: bytes) -> None:
        # Lock-free by contract: the MVCC version manager's commit mutex
        # is the only serialization (see StorageManager.write_merged).
        self._check_open()
        self._check_writable()
        self._require_active(txid)
        with self._mutex:
            before = self._read_raw(rid)
            record = self._append_logged(
                txid, LogRecordKind.UPDATE, rid, before, bytes(data)
            )
            self._active[txid].append(record)
            self._write_raw(rid, bytes(data))
            self.stats.writes += 1

    def peek(self, rid: int) -> bytes:
        self._check_open()
        with self._mutex:
            return self._read_raw(rid)

    def delete(self, txid: int, rid: int) -> None:
        self._check_open()
        self._check_writable()
        self._require_active(txid)
        self._locks.lock(txid, rid, LockMode.X)
        with self._mutex:
            before = self._read_raw(rid)
            record = self._append_logged(txid, LogRecordKind.DELETE, rid, before, b"")
            self._active[txid].append(record)
            self._delete_raw(rid)
            self.stats.deletes += 1

    def exists(self, txid: int, rid: int) -> bool:
        self._check_open()
        self._require_active(txid)
        with self._mutex:
            return self._exists_raw(rid)

    def scan(self, txid: int) -> Iterator[tuple[int, bytes]]:
        self._check_open()
        self._require_active(txid)
        for page_no in range(1, self._file.num_pages):
            with self._mutex:
                page = self._pool.fetch(page_no)
                try:
                    entries = [
                        (slot_no, data)
                        for slot_no, data in page.records()
                        if data and data[0] in (_FLAG_INLINE, _FLAG_FORWARD)
                    ]
                finally:
                    self._pool.unpin(page_no, dirty=False)
            for slot_no, data in entries:
                rid = pack_rid(page_no, slot_no)
                self._locks.lock(txid, rid, LockMode.S)
                if data[0] == _FLAG_INLINE:
                    yield rid, _inline_data(data)
                else:  # forwarded: fetch the body from the target
                    with self._mutex:
                        yield rid, self._read_raw(rid)

    # -- root pointer --------------------------------------------------------------------

    def get_root(self) -> int:
        self._check_open()
        return self._root

    def set_root(self, txid: int, rid: int) -> None:
        self._check_open()
        self._check_writable()
        self._require_active(txid)
        self._locks.lock(txid, _ROOT_RESOURCE, LockMode.X)
        with self._mutex:
            record = self._append_logged(
                txid,
                LogRecordKind.SET_ROOT,
                -1,
                _FWD.pack(self._root),
                _FWD.pack(rid),
            )
            self._active[txid].append(record)
            self._root = rid

    # -- lifecycle ------------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush all pages + header and truncate the log."""
        self._check_open()
        if self.degraded:
            return  # nothing new can be made durable on a failed medium
        if self._active:
            raise StorageError("cannot checkpoint with active transactions")
        try:
            self.injector.fire("checkpoint.begin")
            with self._mutex:
                self._wal.force_now()
                self._pool.flush_all()
                self.injector.fire("checkpoint.after_flush")
                self._write_header()
                self._file.sync()
                self.injector.fire("checkpoint.before_truncate")
                self._wal.truncate()
            self.injector.fire("checkpoint.end")
        except UnrecoverableMediaError as exc:
            self._degrade()
            raise ReadOnlyStorageError(
                f"{self.path}: checkpoint failed permanently; "
                "database degraded to read-only"
            ) from exc

    def close(self) -> None:
        if self._closed:
            return
        if self._active:
            for txid in list(self._active):
                self.abort_transaction(txid)
        if not self.degraded:
            try:
                self.checkpoint()
            except ReadOnlyStorageError:
                pass  # fall through to the degraded shutdown below
        if self.degraded:
            # The app may have been told a commit *failed* while its
            # COMMIT record sits unforced in the log: dropping the
            # unforced tail keeps the refusal honest across restarts.
            self._wal.crash()
        else:
            self._wal.close()
        self._file.close()
        self._closed = True

    def simulate_crash(self) -> None:
        """Die abruptly: volatile state is lost, only fsynced state survives.

        Dirty buffer-pool pages vanish with the process and the *unforced*
        WAL tail is dropped (a real crash loses whatever the OS page cache
        held) — so a missing ``force()`` in the engine shows up as lost
        commits in tests instead of being papered over.
        """
        if self._closed:
            return
        self._wal.crash()
        self._file.close()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("storage manager is closed")

    @property
    def lock_manager(self) -> LockManager:
        return self._locks

    # -- physical record layer (flag + forwarding) -------------------------------------------

    def _fetch(self, page_no: int) -> SlottedPage:
        return self._pool.fetch(page_no)

    def _unpin(self, page_no: int, page: SlottedPage, *, dirty: bool) -> None:
        self._pool.unpin(page_no, dirty=dirty)
        self._page_free[page_no] = page.free_space()

    def _find_page_for(self, payload_len: int) -> int:
        need = payload_len + 4  # slot entry
        for page_no, free in self._page_free.items():
            if free >= need:
                return page_no
        page_no = self._file.allocate_page()
        self._page_free[page_no] = PAGE_SIZE
        return page_no

    def _place(self, payload: bytes) -> int:
        """Store one flagged payload (≤ a page) somewhere; returns its rid."""
        if len(payload) > _MAX_CHUNK + _FWD.size + 1:
            raise StorageError(
                f"internal: payload of {len(payload)} bytes must be chained"
            )
        while True:
            page_no = self._find_page_for(len(payload))
            page = self._fetch(page_no)
            try:
                slot_no = page.insert(payload)
            except PageFullError:
                self._unpin(page_no, page, dirty=False)
                # free-map estimate was stale; mark exhausted and retry
                self._page_free[page_no] = 0
                continue
            self._unpin(page_no, page, dirty=True)
            return pack_rid(page_no, slot_no)

    # -- body chains: records of any size span segment records ------------------

    def _place_body(self, data: bytes) -> int:
        """Store *data* as a (possibly chained) body; returns the head rid."""
        chunks = [data[i : i + _MAX_CHUNK] for i in range(0, len(data), _MAX_CHUNK)]
        if not chunks:
            chunks = [b""]
        next_rid: int | None = None
        # Build the chain back to front so each segment knows its successor.
        for chunk in reversed(chunks):
            if next_rid is None:
                payload = bytes([_FLAG_MOVED]) + chunk
            else:
                payload = bytes([_FLAG_SEGMENT]) + _FWD.pack(next_rid) + chunk
            next_rid = self._place(payload)
        return next_rid

    def _read_body(self, rid: int) -> bytes:
        parts = []
        while True:
            payload = self._load(rid)
            if payload[0] == _FLAG_MOVED:
                parts.append(payload[1:])
                return b"".join(parts)
            if payload[0] == _FLAG_SEGMENT:
                (rid,) = _FWD.unpack(payload[1:9])
                parts.append(payload[9:])
                continue
            raise RecordNotFoundError(f"rid {rid}: broken body chain")

    def _delete_body(self, rid: int) -> None:
        while True:
            payload = self._load(rid)
            self._delete_slot(rid)
            if payload[0] == _FLAG_SEGMENT:
                (rid,) = _FWD.unpack(payload[1:9])
                continue
            return

    # -- logical record operations ------------------------------------------------

    def _insert_raw(self, data: bytes) -> int:
        if len(data) <= _MAX_CHUNK:
            return self._place(_inline_payload(data))
        body = self._place_body(data)
        return self._place(bytes([_FLAG_FORWARD]) + _FWD.pack(body))

    def _insert_at_raw(self, rid: int, data: bytes) -> None:
        page_no, slot_no = unpack_rid(rid)
        while self._file.num_pages <= page_no:
            new_page = self._file.allocate_page()
            self._page_free[new_page] = PAGE_SIZE
        if len(data) <= _MAX_CHUNK:
            page = self._fetch(page_no)
            try:
                page.insert_at(slot_no, _inline_payload(data))
                self._unpin(page_no, page, dirty=True)
                return
            except PageFullError:
                self._unpin(page_no, page, dirty=False)
        body = self._place_body(data)
        page = self._fetch(page_no)
        page.insert_at(slot_no, bytes([_FLAG_FORWARD]) + _FWD.pack(body))
        self._unpin(page_no, page, dirty=True)

    def _load(self, rid: int) -> bytes:
        page_no, slot_no = unpack_rid(rid)
        if not 1 <= page_no < self._file.num_pages:
            raise RecordNotFoundError(f"rid {rid}: no such page")
        page = self._fetch(page_no)
        try:
            if not page.is_live(slot_no):
                raise RecordNotFoundError(f"rid {rid}: slot is empty")
            return page.read(slot_no)
        finally:
            self._pool.unpin(page_no, dirty=False)

    def _read_raw(self, rid: int) -> bytes:
        payload = self._load(rid)
        if payload[0] == _FLAG_INLINE:
            return _inline_data(payload)
        if payload[0] == _FLAG_FORWARD:
            (body,) = _FWD.unpack(payload[1:9])
            return self._read_body(body)
        raise RecordNotFoundError(f"rid {rid} addresses a record body, not a record")

    def _write_raw(self, rid: int, data: bytes) -> None:
        page_no, slot_no = unpack_rid(rid)
        payload = self._load(rid)
        if payload[0] == _FLAG_FORWARD:
            (body,) = _FWD.unpack(payload[1:9])
            head = self._load(body)
            if head[0] == _FLAG_MOVED and len(data) <= _MAX_CHUNK:
                # Single-segment body: try an in-place target update.
                tpage_no, tslot_no = unpack_rid(body)
                tpage = self._fetch(tpage_no)
                try:
                    tpage.update(tslot_no, bytes([_FLAG_MOVED]) + data)
                    self._unpin(tpage_no, tpage, dirty=True)
                    return
                except PageFullError:
                    self._unpin(tpage_no, tpage, dirty=False)
            self._delete_body(body)
            new_body = self._place_body(data)
            page = self._fetch(page_no)
            page.update(slot_no, bytes([_FLAG_FORWARD]) + _FWD.pack(new_body))
            self._unpin(page_no, page, dirty=True)
            return
        # Inline record: keep it inline if it fits, else grow a body chain.
        if len(data) <= _MAX_CHUNK:
            page = self._fetch(page_no)
            try:
                page.update(slot_no, _inline_payload(data))
                self._unpin(page_no, page, dirty=True)
                return
            except PageFullError:
                self._unpin(page_no, page, dirty=False)
        body = self._place_body(data)
        page = self._fetch(page_no)
        # Inline slots are always >= 9 bytes, so this update is in place
        # and cannot fail even on a full page.
        page.update(slot_no, bytes([_FLAG_FORWARD]) + _FWD.pack(body))
        self._unpin(page_no, page, dirty=True)

    def _delete_slot(self, rid: int) -> None:
        page_no, slot_no = unpack_rid(rid)
        page = self._fetch(page_no)
        page.delete(slot_no)
        self._unpin(page_no, page, dirty=True)

    def _delete_raw(self, rid: int) -> None:
        payload = self._load(rid)
        if payload[0] == _FLAG_FORWARD:
            (body,) = _FWD.unpack(payload[1:9])
            self._delete_body(body)
        self._delete_slot(rid)

    def _exists_raw(self, rid: int) -> bool:
        page_no, slot_no = unpack_rid(rid)
        if not 1 <= page_no < self._file.num_pages:
            return False
        page = self._fetch(page_no)
        try:
            if not page.is_live(slot_no):
                return False
            return page.read(slot_no)[0] in (_FLAG_INLINE, _FLAG_FORWARD)
        finally:
            self._pool.unpin(page_no, dirty=False)
