"""The storage-manager contract shared by the disk and main-memory engines.

The Ode object manager needs only a small contract from its storage manager:
transactional reads and writes of uninterpreted byte records addressed by
record identifiers, plus locking and recovery.  Record identifiers (*rids*)
are opaque non-negative integers; the disk engine packs a page number and a
slot number into one, the main-memory engine hands out a counter.

A distinguished *root* slot stores the rid of the object manager's catalog
so a reopened database can find its metadata (EOS similarly exposes a root
entry point).
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from collections.abc import Iterator

from repro.faults.injector import NULL_INJECTOR, FaultInjector


@dataclasses.dataclass
class StorageStats:
    """Counters exposed by every engine for the benchmark harness."""

    reads: int = 0
    writes: int = 0
    inserts: int = 0
    deletes: int = 0
    commits: int = 0
    aborts: int = 0
    log_records: int = 0
    log_forces: int = 0
    #: grouped fsyncs performed by a group-commit leader (one covers a batch)
    group_commits: int = 0
    #: commits whose durability rode a leader's batched fsync (no own fsync)
    group_piggybacks: int = 0
    page_hits: int = 0
    page_misses: int = 0
    page_evictions: int = 0
    io_retries: int = 0

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dict (for table printing)."""
        return dataclasses.asdict(self)

    def reset(self) -> None:
        """Zero every counter."""
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)


class StorageManager(ABC):
    """Abstract transactional record store.

    All data operations take the *txid* of an open transaction; the engine
    acquires the appropriate locks (shared for reads, exclusive for
    mutations) through its :class:`~repro.storage.locks.LockManager` and
    logs mutations so that :meth:`abort_transaction` and crash recovery can
    undo them.
    """

    NO_ROOT = -1

    #: The fault injector threaded through the engine's I/O paths; the
    #: shared no-op :data:`~repro.faults.injector.NULL_INJECTOR` by default.
    injector: FaultInjector = NULL_INJECTOR

    #: Set when the engine degraded to read-only after an unrecoverable
    #: media error; mutations raise ``ReadOnlyStorageError`` from then on.
    degraded: bool = False

    #: Callback invoked exactly once, at the active → read-only
    #: transition (the database wires metrics/obs through it; see
    #: DESIGN §13 on the degradation state machine).
    degrade_listener = None

    def _notify_degraded(self) -> None:
        listener = self.degrade_listener
        if listener is not None:
            listener()

    def __init__(self) -> None:
        self.stats = StorageStats()

    # -- transaction control ------------------------------------------------

    @abstractmethod
    def begin_transaction(self, txid: int) -> None:
        """Register *txid* as an open transaction."""

    @abstractmethod
    def commit_transaction(self, txid: int) -> None:
        """Durably commit *txid* and release its locks."""

    @abstractmethod
    def abort_transaction(self, txid: int) -> None:
        """Undo every effect of *txid* and release its locks."""

    # -- data operations ----------------------------------------------------

    @abstractmethod
    def insert(self, txid: int, data: bytes) -> int:
        """Store a new record, returning its rid."""

    @abstractmethod
    def read(self, txid: int, rid: int) -> bytes:
        """Return the record at *rid*; raises ``RecordNotFoundError``."""

    @abstractmethod
    def write(self, txid: int, rid: int, data: bytes) -> None:
        """Replace the record at *rid* with *data*."""

    @abstractmethod
    def write_merged(self, txid: int, rid: int, data: bytes) -> None:
        """Replace the record at *rid* **without acquiring its lock**.

        The MVCC commit-time merge path (DESIGN.md §15): the caller — the
        :class:`~repro.core.versioned.TriggerVersionManager` — serializes
        merges under its own commit mutex, so the record lock would add
        nothing but the E6 read→write amplification this scheme removes.
        The mutation is WAL-logged exactly like :meth:`write` (``UPDATE``
        with a before-image), so abort and crash recovery are unchanged.
        Never use this outside commit-time merging.
        """

    @abstractmethod
    def peek(self, rid: int) -> bytes:
        """Return *rid*'s current bytes without locking or a transaction.

        Used to load MVCC version chains lazily: sound only for records
        whose every mutation is serialized elsewhere (trigger states under
        ``trigger_cc="mvcc"`` — their rids become visible to other
        transactions only after the activating transaction committed).
        Raises ``RecordNotFoundError``.
        """

    @abstractmethod
    def delete(self, txid: int, rid: int) -> None:
        """Remove the record at *rid*."""

    @abstractmethod
    def exists(self, txid: int, rid: int) -> bool:
        """Return whether a record currently exists at *rid*."""

    @abstractmethod
    def scan(self, txid: int) -> Iterator[tuple[int, bytes]]:
        """Yield every ``(rid, data)`` pair (shared-locking each record)."""

    # -- root pointer ---------------------------------------------------------

    @abstractmethod
    def get_root(self) -> int:
        """Return the catalog rid stored in the root slot (NO_ROOT if unset)."""

    @abstractmethod
    def set_root(self, txid: int, rid: int) -> None:
        """Store *rid* in the root slot (transactionally)."""

    # -- lifecycle ------------------------------------------------------------

    @abstractmethod
    def checkpoint(self) -> None:
        """Make the current committed state durable compactly."""

    @abstractmethod
    def close(self) -> None:
        """Flush committed state and release OS resources."""

    @property
    @abstractmethod
    def lock_manager(self):
        """The engine's :class:`~repro.storage.locks.LockManager`."""

    # -- conveniences shared by both engines ----------------------------------

    def active_transactions(self) -> frozenset[int]:
        """Return the set of currently open transaction ids."""
        return frozenset(self._open_txids())

    @abstractmethod
    def _open_txids(self) -> frozenset[int]: ...
