"""Strict two-phase lock manager with waits-for deadlock detection.

Ode's storage managers provide locking; the paper's Section 6 observes that
*"triggers turn read access into write access, increasing both the amount of
time the transactions spend waiting for locks and the likelihood of
deadlock"* — experiment E6 measures exactly that, so the lock manager keeps
detailed counters.

The manager serves two callers:

* the **serial** database (one session): :meth:`LockManager.acquire_or_raise`
  — with one transaction at a time a conflict indicates a bug, so it raises
  :class:`~repro.errors.LockError` instead of waiting;
* the **multi-session** database: :meth:`LockManager.acquire_blocking` —
  a conflicting request queues FIFO behind the current holders and earlier
  waiters and *blocks the calling session* until granted.  Releases
  (:meth:`release_all`) grant queued requests in arrival order per resource
  and wake the blocked sessions.  Engines pick the behaviour through
  :meth:`lock`, switched by the :attr:`blocking` flag the database flips
  when a second session opens.

Blocking has two waiting strategies: by default the caller sleeps on the
manager's condition variable (real ``threading`` concurrency); a
cooperative scheduler installs per-thread *wait hooks*
(:func:`set_wait_hooks`) and the manager delegates the entire wait to the
scheduler, which parks the session deterministically.

Deadlock policy: the waits-for graph is rebuilt from the grant table and
the FIFO queues on every change, so it is always sound — a transaction
waiting on several resources keeps every edge.  A request that would close
a cycle raises :class:`~repro.errors.DeadlockError` in the *requester*
(the victim is the transaction that completes the cycle — the simplest
deterministic policy); the victim's abort releases its locks, which grants
and wakes the survivors.
"""

from __future__ import annotations

import dataclasses
import enum
import threading
import time
from collections import defaultdict

from repro import obs
from repro.errors import (
    DeadlockError,
    LockError,
    LockTimeoutError,
    TransactionDeadlineError,
    WaitPoisonedError,
)


class LockMode(enum.IntEnum):
    """Shared or exclusive."""

    S = 1
    X = 2

    def compatible(self, other: "LockMode") -> bool:
        return self is LockMode.S and other is LockMode.S


class LockRequestStatus(enum.Enum):
    GRANTED = "granted"
    WAIT = "wait"


@dataclasses.dataclass
class LockStats:
    """Counters consumed by experiment E6 (lock amplification).

    Every increment happens inside the owning
    :class:`LockManager`'s mutex (the manager shares that mutex in as
    :attr:`_mutex`), and :meth:`snapshot`/:meth:`reset` take it too —
    otherwise a snapshot concurrent with a grant could see
    ``x_acquired`` without its paired ``upgrades`` (a torn multi-counter
    view), and a reset racing an increment would lose it.
    """

    s_acquired: int = 0
    x_acquired: int = 0
    upgrades: int = 0
    waits: int = 0
    deadlocks: int = 0
    timeouts: int = 0
    #: lock waits cancelled because the transaction's deadline expired
    deadline_aborts: int = 0
    #: waiters woken with :class:`WaitPoisonedError` (crash/close wake-all)
    poisoned_waits: int = 0

    def __post_init__(self) -> None:
        # Standalone instances (tests) get their own lock; a LockManager
        # replaces it with the manager mutex so snapshot/reset serialize
        # against the increments themselves.
        self._mutex = threading.Lock()

    def snapshot(self) -> dict[str, int]:
        with self._mutex:
            return {
                field.name: getattr(self, field.name)
                for field in dataclasses.fields(self)
            }

    def reset(self) -> None:
        with self._mutex:
            for field in dataclasses.fields(self):
                setattr(self, field.name, 0)


# -- cooperative wait hooks ----------------------------------------------------

#: Thread-local carrier for the active wait strategy.  A cooperative
#: scheduler sets hooks for each session thread it runs; the default (no
#: hooks) blocks on the lock manager's condition variable.
_wait_context = threading.local()


def set_wait_hooks(hooks) -> None:
    """Install *hooks* (or ``None``) as this thread's wait strategy.

    *hooks* needs one method: ``lock_wait(predicate)`` — block the calling
    session until ``predicate()`` is true, letting other sessions run.
    """
    _wait_context.hooks = hooks


def current_wait_hooks():
    return getattr(_wait_context, "hooks", None)


class _LockEntry:
    """Per-resource state: current holders and the FIFO wait queue."""

    __slots__ = ("holders", "waiters")

    def __init__(self) -> None:
        self.holders: dict[int, LockMode] = {}
        self.waiters: list[tuple[int, LockMode]] = []


class LockManager:
    """S/X locks on opaque hashable resources, strict 2PL discipline."""

    def __init__(self) -> None:
        self._table: dict[object, _LockEntry] = {}
        self._held: dict[int, set[object]] = defaultdict(set)
        self._waits_for: dict[int, set[int]] = defaultdict(set)
        self.stats = LockStats()
        self._mutex = threading.RLock()
        self.stats._mutex = self._mutex
        self._cond = threading.Condition(self._mutex)
        #: Conflict behaviour of :meth:`lock`: ``False`` (serial database)
        #: raises LockError, ``True`` (multi-session) blocks until granted.
        self.blocking = False
        #: Safety net for the threaded mode — a wait longer than this
        #: raises :class:`LockTimeoutError` instead of hanging the suite.
        self.wait_timeout = 30.0
        #: Per-transaction absolute deadlines (``time.monotonic()`` values)
        #: set through :meth:`set_deadline`; a lock wait past its deadline
        #: raises :class:`TransactionDeadlineError`.  Cleared by
        #: :meth:`release_all`, so the registry cannot leak across txids.
        self._deadlines: dict[int, float] = {}
        #: When set (see :meth:`poison`), every present and future blocked
        #: wait raises instead of sleeping — crash/close wake-all.
        self._poison: str | None = None
        #: Acquisition-order trace (see :meth:`start_order_trace`): when
        #: not ``None``, every grant appends ``(txid, resource, mode name,
        #: upgrading)`` — including grants made after a wait, which the
        #: obs layer does not re-announce.  The static analyzer's dynamic
        #: lockset checker consumes this to validate footprint order.
        self.order_log: list[tuple[int, object, str, bool]] | None = None

    # -- order tracing -------------------------------------------------------

    def start_order_trace(self) -> list[tuple[int, object, str, bool]]:
        """Begin recording every grant in acquisition order; returns the
        live log list (cleared on each start)."""
        with self._mutex:
            self.order_log = []
            return self.order_log

    def stop_order_trace(self) -> list[tuple[int, object, str, bool]]:
        """Stop recording and return the captured grant sequence."""
        with self._mutex:
            log, self.order_log = self.order_log, None
            return log if log is not None else []

    # -- acquisition ---------------------------------------------------------

    def acquire(self, txid: int, resource: object, mode: LockMode) -> LockRequestStatus:
        """Request *mode* on *resource* for *txid* without blocking.

        Returns GRANTED immediately when compatible; otherwise records the
        FIFO wait (raising :class:`DeadlockError` if it would deadlock) and
        returns WAIT.  The caller retries after other transactions release.
        """
        with self._mutex:
            return self._acquire_locked(txid, resource, mode)

    def _acquire_locked(
        self, txid: int, resource: object, mode: LockMode
    ) -> LockRequestStatus:
        entry = self._table.get(resource)
        if entry is None:
            entry = self._table[resource] = _LockEntry()

        current = entry.holders.get(txid)
        if current is not None and current >= mode:
            return LockRequestStatus.GRANTED  # already held at this strength

        already_queued = any(w == txid for w, _ in entry.waiters)
        # An upgrader already holds the resource, so it conceptually sits at
        # the head of the queue: only the holders can block it.
        position = 0 if current is not None else None
        if not already_queued and self._grantable(entry, txid, mode, position=position):
            self._grant(entry, txid, resource, mode)
            if obs.ENABLED:
                obs.emit(
                    "lock.acquire",
                    txid=txid,
                    resource=resource,
                    mode=mode.name,
                    upgrade=current is not None,
                )
            return LockRequestStatus.GRANTED

        if not already_queued:
            self.stats.waits += 1
            if obs.ENABLED:
                obs.emit(
                    "lock.wait",
                    txid=txid,
                    resource=resource,
                    mode=mode.name,
                    blockers=self._describe_blockers(entry, txid, mode),
                )
            self._enqueue(entry, txid, mode)
            self._rebuild_waits_for()
            cycle = self._find_cycle(txid)
            if cycle:
                self.stats.deadlocks += 1
                entry.waiters = [(t, m) for t, m in entry.waiters if t != txid]
                self._rebuild_waits_for()
                if obs.ENABLED:
                    obs.emit("lock.deadlock", txid=txid, cycle=list(cycle))
                raise DeadlockError(txid, cycle)
        return LockRequestStatus.WAIT

    def acquire_or_raise(self, txid: int, resource: object, mode: LockMode) -> None:
        """Acquire, raising :class:`LockError` on conflict.

        The single-session database uses this path: with one transaction at a
        time a conflict indicates a bug rather than contention.
        """
        with self._mutex:
            status = self._acquire_locked(txid, resource, mode)
            if status is LockRequestStatus.GRANTED:
                return
            # Undo the queued request — serial callers never retry.
            entry = self._table.get(resource)
            holders = frozenset(entry.holders) if entry else frozenset()
            if entry is not None:
                entry.waiters = [(t, m) for t, m in entry.waiters if t != txid]
            self._rebuild_waits_for()
        raise LockError(
            f"transaction {txid} blocked on {resource!r} held by {sorted(holders)}"
        )

    def acquire_blocking(
        self,
        txid: int,
        resource: object,
        mode: LockMode,
        timeout: float | None = None,
    ) -> None:
        """Acquire, blocking the calling session until the lock is granted.

        Raises :class:`DeadlockError` when this request closes a waits-for
        cycle (the requester is the victim), :class:`LockTimeoutError`
        when the threaded wait exceeds *timeout* (default
        :attr:`wait_timeout`), :class:`TransactionDeadlineError` when the
        transaction's deadline (:meth:`set_deadline`) expires mid-wait,
        and :class:`WaitPoisonedError` when the manager is poisoned while
        the caller is parked.  An already-satisfiable request is granted
        even past a deadline or poison — only *waiting* is cancelled.
        """
        hooks = current_wait_hooks()
        wait_deadline = None
        while True:
            with self._mutex:
                status = self._acquire_locked(txid, resource, mode)
                if status is LockRequestStatus.GRANTED:
                    return
                if self._poison is not None:
                    self._abandon_poisoned_locked(txid, resource)
                txn_deadline = self._deadlines.get(txid)
                if txn_deadline is not None and time.monotonic() >= txn_deadline:
                    self._abandon_deadline_locked(txid, resource, mode)
                if hooks is None:
                    # Threaded mode: sleep on the condition until a release
                    # grants us (or a timeout/deadline/poison wakes us).
                    if wait_deadline is None:
                        budget = self.wait_timeout if timeout is None else timeout
                        wait_deadline = time.monotonic() + budget
                    while not self._is_granted_locked(txid, resource, mode):
                        if self._poison is not None:
                            self._abandon_poisoned_locked(txid, resource)
                        txn_deadline = self._deadlines.get(txid)
                        limit = (
                            wait_deadline
                            if txn_deadline is None
                            else min(wait_deadline, txn_deadline)
                        )
                        remaining = limit - time.monotonic()
                        if remaining <= 0 or not self._cond.wait(remaining):
                            if self._is_granted_locked(txid, resource, mode):
                                break
                            if self._poison is not None:
                                self._abandon_poisoned_locked(txid, resource)
                            now = time.monotonic()
                            if txn_deadline is not None and now >= txn_deadline:
                                self._abandon_deadline_locked(txid, resource, mode)
                            if now >= wait_deadline:
                                self.stats.timeouts += 1
                                self._drop_request(txid, resource)
                                if obs.ENABLED:
                                    obs.emit(
                                        "lock.timeout",
                                        txid=txid,
                                        resource=resource,
                                        mode=mode.name,
                                    )
                                raise LockTimeoutError(
                                    f"transaction {txid} timed out waiting for "
                                    f"{resource!r} ({mode.name})"
                                )
                            # Notified without a grant: re-check and re-wait.
                    return
            # Cooperative mode: the scheduler parks this session and runs
            # others until the grant happened — or the wait must be
            # abandoned (poison, deadline), which the next loop iteration
            # turns into the matching raise.
            hooks.lock_wait(
                lambda: self.is_granted(txid, resource, mode)
                or self._wait_abandoned(txid)
            )

    def _abandon_poisoned_locked(self, txid: int, resource: object) -> None:
        self.stats.poisoned_waits += 1
        self._drop_request(txid, resource)
        raise WaitPoisonedError(
            f"transaction {txid}'s lock wait on {resource!r} was cancelled: "
            f"{self._poison}"
        )

    def _abandon_deadline_locked(
        self, txid: int, resource: object, mode: LockMode
    ) -> None:
        self.stats.deadline_aborts += 1
        self._drop_request(txid, resource)
        if obs.ENABLED:
            obs.emit("lock.deadline", txid=txid, resource=resource, mode=mode.name)
        raise TransactionDeadlineError(
            f"transaction {txid}'s deadline expired waiting for "
            f"{resource!r} ({mode.name})"
        )

    def _wait_abandoned(self, txid: int) -> bool:
        """Cooperative wake predicate arm: should this parked wait give up?"""
        with self._mutex:
            if self._poison is not None:
                return True
            deadline = self._deadlines.get(txid)
            return deadline is not None and time.monotonic() >= deadline

    # -- deadlines and poisoning ------------------------------------------------

    def set_deadline(self, txid: int, deadline: float | None) -> None:
        """Bound *txid*'s lock waits by an absolute ``time.monotonic()``
        instant (``None`` clears).  :meth:`release_all` clears it too, so
        commit/abort cannot leak a deadline onto a recycled txid."""
        with self._mutex:
            if deadline is None:
                self._deadlines.pop(txid, None)
            else:
                self._deadlines[txid] = deadline
                self._cond.notify_all()

    def poison(self, reason: str) -> None:
        """Cancel every present and future blocked wait with
        :class:`WaitPoisonedError`.

        The crash/close path: when the process modelled by this database
        dies, sessions parked behind its locks must be *woken with an
        error*, not left to hang — a dead holder will never release.  The
        grant tables are left intact for post-mortem inspection; a reopen
        builds a fresh manager.
        """
        with self._mutex:
            self._poison = reason
            self._cond.notify_all()
        if obs.ENABLED:
            obs.emit("lock.poison", reason=reason)

    @property
    def poisoned(self) -> bool:
        with self._mutex:
            return self._poison is not None

    def lock(self, txid: int, resource: object, mode: LockMode) -> None:
        """The engines' acquisition entry point; behaviour per :attr:`blocking`."""
        if self.blocking:
            self.acquire_blocking(txid, resource, mode)
        else:
            self.acquire_or_raise(txid, resource, mode)

    # -- grant machinery -------------------------------------------------------

    def _grantable(
        self, entry: _LockEntry, txid: int, mode: LockMode, position: int | None
    ) -> bool:
        """Whether *txid*'s request is compatible with holders and the queue.

        *position* is the request's index in the FIFO queue (``None`` for a
        fresh request, which conceptually sits at the tail).  A request is
        grantable when no *other* holder conflicts and no earlier queued
        request conflicts — later arrivals never overtake an incompatible
        waiter, so writers cannot starve.
        """
        for holder, held in entry.holders.items():
            if holder != txid and not held.compatible(mode):
                return False
        ahead = entry.waiters if position is None else entry.waiters[:position]
        for waiter, wmode in ahead:
            if waiter != txid and not (
                wmode.compatible(mode) and mode.compatible(wmode)
            ):
                return False
        return True

    def _grant(
        self, entry: _LockEntry, txid: int, resource: object, mode: LockMode
    ) -> None:
        current = entry.holders.get(txid)
        upgrading = current is not None and mode > current
        entry.holders[txid] = mode if current is None else max(current, mode)
        self._held[txid].add(resource)
        if self.order_log is not None:
            self.order_log.append((txid, resource, mode.name, upgrading))
        if upgrading:
            self.stats.upgrades += 1
        if mode is LockMode.S:
            self.stats.s_acquired += 1
        else:
            self.stats.x_acquired += 1

    def _enqueue(self, entry: _LockEntry, txid: int, mode: LockMode) -> None:
        """Queue a request FIFO; lock *upgrades* jump ahead of fresh requests.

        An upgrader already holds the resource, so anything granted before
        it would conflict anyway; front-running it shortens the convoy and
        matches conventional lock-manager behaviour.
        """
        if txid in entry.holders:
            at = 0
            while at < len(entry.waiters) and entry.waiters[at][0] in entry.holders:
                at += 1
            entry.waiters.insert(at, (txid, mode))
        else:
            entry.waiters.append((txid, mode))

    def _describe_blockers(
        self, entry: _LockEntry, txid: int, mode: LockMode
    ) -> list:
        return sorted(
            holder
            for holder, held in entry.holders.items()
            if holder != txid and not held.compatible(mode)
        )

    def _is_granted_locked(self, txid: int, resource: object, mode: LockMode) -> bool:
        entry = self._table.get(resource)
        if entry is None:
            return False
        held = entry.holders.get(txid)
        return held is not None and held >= mode

    def is_granted(self, txid: int, resource: object, mode: LockMode) -> bool:
        """Whether *txid* currently holds *resource* at least at *mode*."""
        with self._mutex:
            return self._is_granted_locked(txid, resource, mode)

    def _drop_request(self, txid: int, resource: object) -> None:
        entry = self._table.get(resource)
        if entry is not None:
            entry.waiters = [(t, m) for t, m in entry.waiters if t != txid]
            if not entry.holders and not entry.waiters:
                del self._table[resource]
        self._rebuild_waits_for()

    # -- release ---------------------------------------------------------------

    def release_all(self, txid: int) -> None:
        """Release every lock *txid* holds, drop its queued requests, and
        grant-and-wake whoever its release unblocks (FIFO per resource)."""
        with self._mutex:
            self._deadlines.pop(txid, None)
            for resource in self._held.pop(txid, set()):
                entry = self._table.get(resource)
                if entry is not None:
                    entry.holders.pop(txid, None)
                    if not entry.holders and not entry.waiters:
                        del self._table[resource]
            for entry in list(self._table.values()):
                entry.waiters = [(t, m) for t, m in entry.waiters if t != txid]
            granted = self._retry_waiters_locked()
            self._rebuild_waits_for()
            if granted:
                self._cond.notify_all()

    def retry_waiters(self) -> list[int]:
        """Grant every now-compatible queued request in FIFO arrival order
        per resource; returns the txids granted (with repeats per resource).

        Grants stop at the first still-blocked request of each queue so a
        late arrival can never overtake an incompatible earlier waiter.
        The waits-for graph is rebuilt from the remaining queues — a
        granted transaction still waiting on *other* resources keeps those
        edges, so deadlock detection stays sound.
        """
        with self._mutex:
            granted = self._retry_waiters_locked()
            self._rebuild_waits_for()
            if granted:
                self._cond.notify_all()
            return granted

    def _retry_waiters_locked(self) -> list[int]:
        granted: list[int] = []
        for resource, entry in list(self._table.items()):
            while entry.waiters:
                txid, mode = entry.waiters[0]
                held = entry.holders.get(txid)
                if held is not None and held >= mode:
                    entry.waiters.pop(0)  # stale: already satisfied
                    continue
                if not self._grantable(entry, txid, mode, position=0):
                    break
                entry.waiters.pop(0)
                self._grant(entry, txid, resource, mode)
                granted.append(txid)
            if not entry.holders and not entry.waiters:
                del self._table[resource]
        if granted:
            self._rebuild_waits_for()
        return granted

    # -- introspection ------------------------------------------------------------

    def holders_of(self, resource: object) -> frozenset[int]:
        with self._mutex:
            entry = self._table.get(resource)
            return frozenset(entry.holders) if entry else frozenset()

    def mode_held(self, txid: int, resource: object) -> LockMode | None:
        with self._mutex:
            entry = self._table.get(resource)
            return entry.holders.get(txid) if entry else None

    def locks_held(self, txid: int) -> frozenset[object]:
        with self._mutex:
            return frozenset(self._held.get(txid, set()))

    def waits_for_edges(self) -> dict[int, frozenset[int]]:
        with self._mutex:
            return {t: frozenset(b) for t, b in self._waits_for.items() if b}

    # -- deadlock detection ----------------------------------------------------------

    def _rebuild_waits_for(self) -> None:
        """Recompute the waits-for graph from the grant table and queues.

        An edge ``W -> B`` exists when queued request W conflicts with
        holder B, or with an *earlier* queued request B on the same
        resource (FIFO: W cannot be granted before B).  Rebuilding from
        ground truth — instead of mutating edges incrementally — is what
        keeps a transaction's edges on its *other* pending resources alive
        when one of its requests is granted.
        """
        self._waits_for.clear()
        for entry in self._table.values():
            for position, (txid, mode) in enumerate(entry.waiters):
                edges = self._waits_for[txid]
                for holder, held in entry.holders.items():
                    if holder != txid and not held.compatible(mode):
                        edges.add(holder)
                for earlier, emode in entry.waiters[:position]:
                    if earlier != txid and not (
                        emode.compatible(mode) and mode.compatible(emode)
                    ):
                        edges.add(earlier)

    def _find_cycle(self, start: int) -> tuple[int, ...]:
        """DFS from *start* in the waits-for graph; returns a cycle or ()."""
        path: list[int] = []
        on_path: set[int] = set()
        visited: set[int] = set()

        def dfs(node: int) -> tuple[int, ...]:
            if node in on_path:
                idx = path.index(node)
                return tuple(path[idx:]) + (node,)
            if node in visited:
                return ()
            visited.add(node)
            path.append(node)
            on_path.add(node)
            for nxt in self._waits_for.get(node, ()):
                cycle = dfs(nxt)
                if cycle:
                    return cycle
            path.pop()
            on_path.discard(node)
            return ()

        return dfs(start)
