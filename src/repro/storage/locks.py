"""Strict two-phase lock manager with waits-for deadlock detection.

Ode's storage managers provide locking; the paper's Section 6 observes that
*"triggers turn read access into write access, increasing both the amount of
time the transactions spend waiting for locks and the likelihood of
deadlock"* — experiment E6 measures exactly that, so the lock manager keeps
detailed counters.

The manager is *logical*: callers (the single-session database, or the
interleaved-transaction simulator used by the benchmarks) drive it
synchronously.  :meth:`LockManager.acquire` returns
:attr:`LockRequestStatus.GRANTED` or :attr:`LockRequestStatus.WAIT`; a WAIT
registers the requester in the waits-for graph and, if that closes a cycle,
raises :class:`~repro.errors.DeadlockError` choosing the requester as the
victim (the simplest deterministic policy).
"""

from __future__ import annotations

import dataclasses
import enum
from collections import defaultdict

from repro import obs
from repro.errors import DeadlockError, LockError


class LockMode(enum.IntEnum):
    """Shared or exclusive."""

    S = 1
    X = 2

    def compatible(self, other: "LockMode") -> bool:
        return self is LockMode.S and other is LockMode.S


class LockRequestStatus(enum.Enum):
    GRANTED = "granted"
    WAIT = "wait"


@dataclasses.dataclass
class LockStats:
    """Counters consumed by experiment E6 (lock amplification)."""

    s_acquired: int = 0
    x_acquired: int = 0
    upgrades: int = 0
    waits: int = 0
    deadlocks: int = 0

    def snapshot(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    def reset(self) -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)


class _LockEntry:
    """Per-resource state: current holders and the FIFO wait queue."""

    __slots__ = ("holders", "waiters")

    def __init__(self) -> None:
        self.holders: dict[int, LockMode] = {}
        self.waiters: list[tuple[int, LockMode]] = []


class LockManager:
    """S/X locks on opaque hashable resources, strict 2PL discipline."""

    def __init__(self) -> None:
        self._table: dict[object, _LockEntry] = {}
        self._held: dict[int, set[object]] = defaultdict(set)
        self._waits_for: dict[int, set[int]] = defaultdict(set)
        self.stats = LockStats()

    # -- acquisition ---------------------------------------------------------

    def acquire(self, txid: int, resource: object, mode: LockMode) -> LockRequestStatus:
        """Request *mode* on *resource* for *txid*.

        Returns GRANTED immediately when compatible; otherwise records the
        wait (raising :class:`DeadlockError` if it would deadlock) and
        returns WAIT.  The caller retries after other transactions release.
        """
        entry = self._table.get(resource)
        if entry is None:
            entry = self._table[resource] = _LockEntry()

        current = entry.holders.get(txid)
        if current is not None and current >= mode:
            return LockRequestStatus.GRANTED  # already held at this strength

        blockers = {
            holder
            for holder, held_mode in entry.holders.items()
            if holder != txid and not held_mode.compatible(mode)
        }
        # A new S request must also queue behind waiting X requests to avoid
        # writer starvation — unless we'd be upgrading our own lock.
        if current is None and any(
            wmode is LockMode.X and waiter != txid for waiter, wmode in entry.waiters
        ):
            blockers |= {w for w, m in entry.waiters if m is LockMode.X and w != txid}

        if not blockers:
            upgrading = current is not None and mode > current
            entry.holders[txid] = mode
            self._held[txid].add(resource)
            if upgrading:
                self.stats.upgrades += 1
            if mode is LockMode.S:
                self.stats.s_acquired += 1
            else:
                self.stats.x_acquired += 1
            if obs.ENABLED:
                obs.emit(
                    "lock.acquire",
                    txid=txid,
                    resource=resource,
                    mode=mode.name,
                    upgrade=upgrading,
                )
            return LockRequestStatus.GRANTED

        self.stats.waits += 1
        if obs.ENABLED:
            obs.emit(
                "lock.wait",
                txid=txid,
                resource=resource,
                mode=mode.name,
                blockers=sorted(blockers),
            )
        self._waits_for[txid] |= blockers
        cycle = self._find_cycle(txid)
        if cycle:
            self.stats.deadlocks += 1
            self._waits_for.pop(txid, None)
            if obs.ENABLED:
                obs.emit("lock.deadlock", txid=txid, cycle=list(cycle))
            raise DeadlockError(txid, cycle)
        if (txid, mode) not in entry.waiters:
            entry.waiters.append((txid, mode))
        return LockRequestStatus.WAIT

    def acquire_or_raise(self, txid: int, resource: object, mode: LockMode) -> None:
        """Acquire, raising :class:`LockError` on conflict.

        The single-session database uses this path: with one transaction at a
        time a conflict indicates a bug rather than contention.
        """
        status = self.acquire(txid, resource, mode)
        if status is not LockRequestStatus.GRANTED:
            holders = self.holders_of(resource)
            raise LockError(
                f"transaction {txid} blocked on {resource!r} held by {sorted(holders)}"
            )

    # -- release ---------------------------------------------------------------

    def release_all(self, txid: int) -> None:
        """Release every lock *txid* holds and drop its queued requests."""
        for resource in self._held.pop(txid, set()):
            entry = self._table.get(resource)
            if entry is not None:
                entry.holders.pop(txid, None)
                if not entry.holders and not entry.waiters:
                    del self._table[resource]
        for entry in list(self._table.values()):
            entry.waiters = [(t, m) for t, m in entry.waiters if t != txid]
        self._waits_for.pop(txid, None)
        for waiters in self._waits_for.values():
            waiters.discard(txid)

    def retry_waiters(self) -> list[int]:
        """Re-attempt every queued request; returns txids newly granted.

        Used by the interleaved-transaction simulator after each release.
        """
        granted: list[int] = []
        for resource, entry in list(self._table.items()):
            for txid, mode in list(entry.waiters):
                probe = {
                    holder
                    for holder, held in entry.holders.items()
                    if holder != txid and not held.compatible(mode)
                }
                if probe:
                    continue
                entry.waiters.remove((txid, mode))
                entry.holders[txid] = max(mode, entry.holders.get(txid, mode))
                self._held[txid].add(resource)
                self._waits_for.pop(txid, None)
                if mode is LockMode.S:
                    self.stats.s_acquired += 1
                else:
                    self.stats.x_acquired += 1
                granted.append(txid)
        return granted

    # -- introspection ------------------------------------------------------------

    def holders_of(self, resource: object) -> frozenset[int]:
        entry = self._table.get(resource)
        return frozenset(entry.holders) if entry else frozenset()

    def mode_held(self, txid: int, resource: object) -> LockMode | None:
        entry = self._table.get(resource)
        return entry.holders.get(txid) if entry else None

    def locks_held(self, txid: int) -> frozenset[object]:
        return frozenset(self._held.get(txid, set()))

    def waits_for_edges(self) -> dict[int, frozenset[int]]:
        return {t: frozenset(b) for t, b in self._waits_for.items() if b}

    # -- deadlock detection ----------------------------------------------------------

    def _find_cycle(self, start: int) -> tuple[int, ...]:
        """DFS from *start* in the waits-for graph; returns a cycle or ()."""
        path: list[int] = []
        on_path: set[int] = set()
        visited: set[int] = set()

        def dfs(node: int) -> tuple[int, ...]:
            if node in on_path:
                idx = path.index(node)
                return tuple(path[idx:]) + (node,)
            if node in visited:
                return ()
            visited.add(node)
            path.append(node)
            on_path.add(node)
            for nxt in self._waits_for.get(node, ()):
                cycle = dfs(nxt)
                if cycle:
                    return cycle
            path.pop()
            on_path.discard(node)
            return ()

        return dfs(start)
