"""Strict two-phase lock manager with waits-for deadlock detection.

Ode's storage managers provide locking; the paper's Section 6 observes that
*"triggers turn read access into write access, increasing both the amount of
time the transactions spend waiting for locks and the likelihood of
deadlock"* — experiment E6 measures exactly that, so the lock manager keeps
detailed counters.

The manager serves two callers:

* the **serial** database (one session): :meth:`LockManager.acquire_or_raise`
  — with one transaction at a time a conflict indicates a bug, so it raises
  :class:`~repro.errors.LockError` instead of waiting;
* the **multi-session** database: :meth:`LockManager.acquire_blocking` —
  a conflicting request queues FIFO behind the current holders and earlier
  waiters and *blocks the calling session* until granted.  Releases
  (:meth:`release_all`) grant queued requests in arrival order per resource
  and wake the blocked sessions.  Engines pick the behaviour through
  :meth:`lock`, switched by the :attr:`blocking` flag the database flips
  when a second session opens.

Blocking has two waiting strategies: by default the caller sleeps on the
owning stripe's condition variable (real ``threading`` concurrency); a
cooperative scheduler installs per-thread *wait hooks*
(:func:`set_wait_hooks`) and the manager delegates the entire wait to the
scheduler, which parks the session deterministically.

**Striping.**  The lock table is hash-partitioned into N *stripes*, each
with its own mutex, condition variable, table, grant index, and
:class:`LockStats`.  A resource lives entirely inside one stripe
(``hash(resource) % N``), so per-resource FIFO fairness, the S→X upgrade
queue-jump, and the grant rules are exactly the single-mutex semantics —
two sessions touching different stripes simply never contend on a lock
manager mutex.  ``LockManager(stripes=1)`` is the old single-mutex manager.

Deadlock policy: each stripe rebuilds its local waits-for edges from its
grant table and FIFO queues on every change and publishes a snapshot into
a cross-stripe registry (guarded by a dedicated graph lock; the global
lock order is *stripe mutex → graph lock*, and no code path ever holds two
stripe mutexes).  A request that would close a cycle in the merged graph
raises :class:`~repro.errors.DeadlockError` in the *requester* (the victim
is the transaction that completes the cycle — the simplest deterministic
policy); the victim's abort releases its locks, which grants and wakes the
survivors.  Detection is sound across stripes because every enqueue
publishes its edges *before* searching: whichever requester publishes the
cycle-closing edge last is guaranteed to see the whole cycle.  Under real
threads two requesters racing to close the same cycle may *both* abort
(a conservative outcome the session retry loop absorbs); under the
deterministic CooperativeScheduler — and at ``stripes=1`` — operations
serialize and the victim choice matches the single-mutex manager exactly.
"""

from __future__ import annotations

import dataclasses
import enum
import threading
import time
from collections import defaultdict

from repro import obs
from repro.errors import (
    DeadlockError,
    LockError,
    LockTimeoutError,
    TransactionDeadlineError,
    WaitPoisonedError,
)

#: Default stripe count: enough that 8-16 sessions hashing random rids
#: rarely collide, small enough that cross-stripe sweeps (release_all,
#: retry_waiters) stay cheap.
DEFAULT_LOCK_STRIPES = 16


class LockMode(enum.IntEnum):
    """Shared or exclusive."""

    S = 1
    X = 2

    def compatible(self, other: "LockMode") -> bool:
        return self is LockMode.S and other is LockMode.S


class LockRequestStatus(enum.Enum):
    GRANTED = "granted"
    WAIT = "wait"


@dataclasses.dataclass
class LockStats:
    """Counters consumed by experiment E6 (lock amplification).

    Every increment happens inside the owning stripe's mutex (the manager
    shares that mutex in as :attr:`_mutex`), and :meth:`snapshot`/
    :meth:`reset` take it too — otherwise a snapshot concurrent with a
    grant could see ``x_acquired`` without its paired ``upgrades`` (a torn
    multi-counter view), and a reset racing an increment would lose it.
    Counters incremented together always belong to the same resource and
    therefore the same stripe, so the exactly-once/untorn discipline holds
    per stripe even though the manager aggregates across stripes.
    """

    s_acquired: int = 0
    x_acquired: int = 0
    upgrades: int = 0
    waits: int = 0
    deadlocks: int = 0
    timeouts: int = 0
    #: lock waits cancelled because the transaction's deadline expired
    deadline_aborts: int = 0
    #: waiters woken with :class:`WaitPoisonedError` (crash/close wake-all)
    poisoned_waits: int = 0

    def __post_init__(self) -> None:
        # Standalone instances (tests) get their own lock; a LockManager
        # stripe replaces it with the stripe mutex so snapshot/reset
        # serialize against the increments themselves.
        self._mutex = threading.Lock()

    def snapshot(self) -> dict[str, int]:
        with self._mutex:
            return {
                field.name: getattr(self, field.name)
                for field in dataclasses.fields(self)
            }

    def reset(self) -> None:
        with self._mutex:
            for field in dataclasses.fields(self):
                setattr(self, field.name, 0)


_STAT_FIELDS = tuple(field.name for field in dataclasses.fields(LockStats))


class StripedLockStats:
    """Aggregate read view over the per-stripe :class:`LockStats`.

    Attribute reads (``stats.waits`` …) sum the stripe counters;
    :meth:`snapshot` additionally reports stripe-spread figures under
    ``stripe_*`` keys (surfacing as ``locks.stripe_*`` metrics).  Each
    per-stripe read is serialized against that stripe's increments, so
    counters that are bumped together (always same resource → same stripe)
    can never be seen torn apart; the cross-stripe sum is a sequence of
    such consistent reads.
    """

    def __init__(self, stripes: tuple["_Stripe", ...]) -> None:
        self._stripes = stripes

    def __getattr__(self, name: str):
        if name in _STAT_FIELDS:
            return sum(getattr(stripe.stats, name) for stripe in self._stripes)
        raise AttributeError(name)

    def snapshot(self) -> dict[str, int]:
        totals = {name: 0 for name in _STAT_FIELDS}
        busiest = 0
        active = 0
        for stripe in self._stripes:
            snap = stripe.stats.snapshot()
            acquired = snap["s_acquired"] + snap["x_acquired"]
            busiest = max(busiest, acquired)
            if acquired:
                active += 1
            for key, value in snap.items():
                totals[key] += value
        totals["stripe_count"] = len(self._stripes)
        totals["stripe_active"] = active
        totals["stripe_busiest_acquired"] = busiest
        return totals

    def reset(self) -> None:
        for stripe in self._stripes:
            stripe.stats.reset()


# -- cooperative wait hooks ----------------------------------------------------

#: Thread-local carrier for the active wait strategy.  A cooperative
#: scheduler sets hooks for each session thread it runs; the default (no
#: hooks) blocks on the stripe's condition variable.
_wait_context = threading.local()


def set_wait_hooks(hooks) -> None:
    """Install *hooks* (or ``None``) as this thread's wait strategy.

    *hooks* needs one method: ``lock_wait(predicate)`` — block the calling
    session until ``predicate()`` is true, letting other sessions run.
    """
    _wait_context.hooks = hooks


def current_wait_hooks():
    return getattr(_wait_context, "hooks", None)


class _LockEntry:
    """Per-resource state: current holders and the FIFO wait queue."""

    __slots__ = ("holders", "waiters")

    def __init__(self) -> None:
        self.holders: dict[int, LockMode] = {}
        self.waiters: list[tuple[int, LockMode]] = []


class _Stripe:
    """One hash partition of the lock table.

    Everything per-resource — the entry table, the grant index, the
    condition waiters sleep on, and the stats the grants increment — lives
    here, guarded by :attr:`mutex`.  Stripes never nest: no code path
    holds two stripe mutexes at once.
    """

    __slots__ = ("index", "mutex", "cond", "table", "held", "stats")

    def __init__(self, index: int) -> None:
        self.index = index
        self.mutex = threading.RLock()
        self.cond = threading.Condition(self.mutex)
        self.table: dict[object, _LockEntry] = {}
        self.held: dict[int, set[object]] = defaultdict(set)
        self.stats = LockStats()
        self.stats._mutex = self.mutex


class LockManager:
    """S/X locks on opaque hashable resources, strict 2PL discipline."""

    def __init__(self, stripes: int = DEFAULT_LOCK_STRIPES) -> None:
        if stripes < 1:
            raise ValueError(f"stripes must be >= 1, got {stripes}")
        self._stripes: tuple[_Stripe, ...] = tuple(
            _Stripe(i) for i in range(stripes)
        )
        self.stats = StripedLockStats(self._stripes)
        #: Cross-stripe waits-for registry: stripe index → that stripe's
        #: published ``{waiter: {blockers}}`` edge snapshot.  Guarded by
        #: :attr:`_graph_lock`; global lock order is stripe mutex →
        #: graph lock, never the reverse.
        self._graph_lock = threading.Lock()
        self._edges: dict[int, dict[int, set[int]]] = {}
        #: Conflict behaviour of :meth:`lock`: ``False`` (serial database)
        #: raises LockError, ``True`` (multi-session) blocks until granted.
        self.blocking = False
        #: Safety net for the threaded mode — a wait longer than this
        #: raises :class:`LockTimeoutError` instead of hanging the suite.
        self.wait_timeout = 30.0
        #: Per-transaction absolute deadlines (``time.monotonic()`` values)
        #: set through :meth:`set_deadline`; a lock wait past its deadline
        #: raises :class:`TransactionDeadlineError`.  Cleared by
        #: :meth:`release_all`, so the registry cannot leak across txids.
        #: Plain dict: single-key get/set/pop are atomic under the GIL and
        #: waiters re-check on every wake, so no extra lock is needed.
        self._deadlines: dict[int, float] = {}
        #: When set (see :meth:`poison`), every present and future blocked
        #: wait raises instead of sleeping — crash/close wake-all.
        self._poison: str | None = None
        #: Acquisition-order trace (see :meth:`start_order_trace`): when
        #: not ``None``, every grant appends ``(txid, resource, mode name,
        #: upgrading)`` — including grants made after a wait, which the
        #: obs layer does not re-announce.  The static analyzer's dynamic
        #: lockset checker consumes this to validate footprint order.
        #: Appends happen under the granting stripe's mutex; list.append
        #: is atomic, so the trace needs no lock of its own.
        self.order_log: list[tuple[int, object, str, bool]] | None = None

    @property
    def stripe_count(self) -> int:
        return len(self._stripes)

    def _stripe_for(self, resource: object) -> _Stripe:
        return self._stripes[hash(resource) % len(self._stripes)]

    # -- order tracing -------------------------------------------------------

    def start_order_trace(self) -> list[tuple[int, object, str, bool]]:
        """Begin recording every grant in acquisition order; returns the
        live log list (cleared on each start)."""
        log: list[tuple[int, object, str, bool]] = []
        self.order_log = log
        return log

    def stop_order_trace(self) -> list[tuple[int, object, str, bool]]:
        """Stop recording and return the captured grant sequence."""
        log, self.order_log = self.order_log, None
        return log if log is not None else []

    # -- acquisition ---------------------------------------------------------

    def acquire(self, txid: int, resource: object, mode: LockMode) -> LockRequestStatus:
        """Request *mode* on *resource* for *txid* without blocking.

        Returns GRANTED immediately when compatible; otherwise records the
        FIFO wait (raising :class:`DeadlockError` if it would deadlock) and
        returns WAIT.  The caller retries after other transactions release.
        """
        stripe = self._stripe_for(resource)
        with stripe.mutex:
            return self._acquire_locked(stripe, txid, resource, mode)

    def _acquire_locked(
        self, stripe: _Stripe, txid: int, resource: object, mode: LockMode
    ) -> LockRequestStatus:
        entry = stripe.table.get(resource)
        if entry is None:
            entry = stripe.table[resource] = _LockEntry()

        current = entry.holders.get(txid)
        if current is not None and current >= mode:
            return LockRequestStatus.GRANTED  # already held at this strength

        already_queued = any(w == txid for w, _ in entry.waiters)
        # An upgrader already holds the resource, so it conceptually sits at
        # the head of the queue: only the holders can block it.
        position = 0 if current is not None else None
        if not already_queued and self._grantable(entry, txid, mode, position=position):
            self._grant(stripe, entry, txid, resource, mode)
            if obs.ENABLED:
                obs.emit(
                    "lock.acquire",
                    txid=txid,
                    resource=resource,
                    mode=mode.name,
                    upgrade=current is not None,
                )
            return LockRequestStatus.GRANTED

        if not already_queued:
            stripe.stats.waits += 1
            if obs.ENABLED:
                obs.emit(
                    "lock.wait",
                    txid=txid,
                    resource=resource,
                    mode=mode.name,
                    blockers=self._describe_blockers(entry, txid, mode),
                )
            self._enqueue(entry, txid, mode)
            self._publish_edges_locked(stripe)
            cycle = self._find_cycle(txid)
            if cycle:
                stripe.stats.deadlocks += 1
                entry.waiters = [(t, m) for t, m in entry.waiters if t != txid]
                self._publish_edges_locked(stripe)
                if obs.ENABLED:
                    obs.emit("lock.deadlock", txid=txid, cycle=list(cycle))
                raise DeadlockError(txid, cycle)
        return LockRequestStatus.WAIT

    def acquire_or_raise(self, txid: int, resource: object, mode: LockMode) -> None:
        """Acquire, raising :class:`LockError` on conflict.

        The single-session database uses this path: with one transaction at a
        time a conflict indicates a bug rather than contention.
        """
        stripe = self._stripe_for(resource)
        with stripe.mutex:
            status = self._acquire_locked(stripe, txid, resource, mode)
            if status is LockRequestStatus.GRANTED:
                return
            # Undo the queued request — serial callers never retry.
            entry = stripe.table.get(resource)
            holders = frozenset(entry.holders) if entry else frozenset()
            if entry is not None:
                entry.waiters = [(t, m) for t, m in entry.waiters if t != txid]
            self._publish_edges_locked(stripe)
        raise LockError(
            f"transaction {txid} blocked on {resource!r} held by {sorted(holders)}"
        )

    def acquire_blocking(
        self,
        txid: int,
        resource: object,
        mode: LockMode,
        timeout: float | None = None,
    ) -> None:
        """Acquire, blocking the calling session until the lock is granted.

        Raises :class:`DeadlockError` when this request closes a waits-for
        cycle (the requester is the victim), :class:`LockTimeoutError`
        when the threaded wait exceeds *timeout* (default
        :attr:`wait_timeout`), :class:`TransactionDeadlineError` when the
        transaction's deadline (:meth:`set_deadline`) expires mid-wait,
        and :class:`WaitPoisonedError` when the manager is poisoned while
        the caller is parked.  An already-satisfiable request is granted
        even past a deadline or poison — only *waiting* is cancelled.
        """
        hooks = current_wait_hooks()
        stripe = self._stripe_for(resource)
        wait_deadline = None
        while True:
            with stripe.mutex:
                status = self._acquire_locked(stripe, txid, resource, mode)
                if status is LockRequestStatus.GRANTED:
                    return
                if self._poison is not None:
                    self._abandon_poisoned_locked(stripe, txid, resource)
                txn_deadline = self._deadlines.get(txid)
                if txn_deadline is not None and time.monotonic() >= txn_deadline:
                    self._abandon_deadline_locked(stripe, txid, resource, mode)
                if hooks is None:
                    # Threaded mode: sleep on the stripe condition until a
                    # release grants us (or a timeout/deadline/poison wakes
                    # us).
                    if wait_deadline is None:
                        budget = self.wait_timeout if timeout is None else timeout
                        wait_deadline = time.monotonic() + budget
                    while not self._is_granted_locked(stripe, txid, resource, mode):
                        if self._poison is not None:
                            self._abandon_poisoned_locked(stripe, txid, resource)
                        txn_deadline = self._deadlines.get(txid)
                        limit = (
                            wait_deadline
                            if txn_deadline is None
                            else min(wait_deadline, txn_deadline)
                        )
                        remaining = limit - time.monotonic()
                        if remaining <= 0 or not stripe.cond.wait(remaining):
                            if self._is_granted_locked(stripe, txid, resource, mode):
                                break
                            if self._poison is not None:
                                self._abandon_poisoned_locked(stripe, txid, resource)
                            now = time.monotonic()
                            if txn_deadline is not None and now >= txn_deadline:
                                self._abandon_deadline_locked(
                                    stripe, txid, resource, mode
                                )
                            if now >= wait_deadline:
                                stripe.stats.timeouts += 1
                                self._drop_request(txid, resource)
                                if obs.ENABLED:
                                    obs.emit(
                                        "lock.timeout",
                                        txid=txid,
                                        resource=resource,
                                        mode=mode.name,
                                    )
                                raise LockTimeoutError(
                                    f"transaction {txid} timed out waiting for "
                                    f"{resource!r} ({mode.name})"
                                )
                            # Notified without a grant: re-check and re-wait.
                    return
            # Cooperative mode: the scheduler parks this session and runs
            # others until the grant happened — or the wait must be
            # abandoned (poison, deadline), which the next loop iteration
            # turns into the matching raise.
            hooks.lock_wait(
                lambda: self.is_granted(txid, resource, mode)
                or self._wait_abandoned(txid)
            )

    def _abandon_poisoned_locked(
        self, stripe: _Stripe, txid: int, resource: object
    ) -> None:
        stripe.stats.poisoned_waits += 1
        self._drop_request(txid, resource)
        raise WaitPoisonedError(
            f"transaction {txid}'s lock wait on {resource!r} was cancelled: "
            f"{self._poison}"
        )

    def _abandon_deadline_locked(
        self, stripe: _Stripe, txid: int, resource: object, mode: LockMode
    ) -> None:
        stripe.stats.deadline_aborts += 1
        self._drop_request(txid, resource)
        if obs.ENABLED:
            obs.emit("lock.deadline", txid=txid, resource=resource, mode=mode.name)
        raise TransactionDeadlineError(
            f"transaction {txid}'s deadline expired waiting for "
            f"{resource!r} ({mode.name})"
        )

    def _wait_abandoned(self, txid: int) -> bool:
        """Cooperative wake predicate arm: should this parked wait give up?"""
        if self._poison is not None:
            return True
        deadline = self._deadlines.get(txid)
        return deadline is not None and time.monotonic() >= deadline

    # -- deadlines and poisoning ------------------------------------------------

    def set_deadline(self, txid: int, deadline: float | None) -> None:
        """Bound *txid*'s lock waits by an absolute ``time.monotonic()``
        instant (``None`` clears).  :meth:`release_all` clears it too, so
        commit/abort cannot leak a deadline onto a recycled txid."""
        if deadline is None:
            self._deadlines.pop(txid, None)
            return
        self._deadlines[txid] = deadline
        # The dict write above happens before the notify, and a parked
        # waiter re-checks its deadline on every wake, so waking every
        # stripe (we don't know where txid is parked) cannot lose the
        # update.
        for stripe in self._stripes:
            with stripe.mutex:
                stripe.cond.notify_all()

    def poison(self, reason: str) -> None:
        """Cancel every present and future blocked wait with
        :class:`WaitPoisonedError`.

        The crash/close path: when the process modelled by this database
        dies, sessions parked behind its locks must be *woken with an
        error*, not left to hang — a dead holder will never release.  The
        grant tables are left intact for post-mortem inspection; a reopen
        builds a fresh manager.
        """
        self._poison = reason
        for stripe in self._stripes:
            with stripe.mutex:
                stripe.cond.notify_all()
        if obs.ENABLED:
            obs.emit("lock.poison", reason=reason)

    @property
    def poisoned(self) -> bool:
        return self._poison is not None

    def lock(self, txid: int, resource: object, mode: LockMode) -> None:
        """The engines' acquisition entry point; behaviour per :attr:`blocking`."""
        if self.blocking:
            self.acquire_blocking(txid, resource, mode)
        else:
            self.acquire_or_raise(txid, resource, mode)

    # -- grant machinery -------------------------------------------------------

    def _grantable(
        self, entry: _LockEntry, txid: int, mode: LockMode, position: int | None
    ) -> bool:
        """Whether *txid*'s request is compatible with holders and the queue.

        *position* is the request's index in the FIFO queue (``None`` for a
        fresh request, which conceptually sits at the tail).  A request is
        grantable when no *other* holder conflicts and no earlier queued
        request conflicts — later arrivals never overtake an incompatible
        waiter, so writers cannot starve.
        """
        for holder, held in entry.holders.items():
            if holder != txid and not held.compatible(mode):
                return False
        ahead = entry.waiters if position is None else entry.waiters[:position]
        for waiter, wmode in ahead:
            if waiter != txid and not (
                wmode.compatible(mode) and mode.compatible(wmode)
            ):
                return False
        return True

    def _grant(
        self,
        stripe: _Stripe,
        entry: _LockEntry,
        txid: int,
        resource: object,
        mode: LockMode,
    ) -> None:
        current = entry.holders.get(txid)
        upgrading = current is not None and mode > current
        entry.holders[txid] = mode if current is None else max(current, mode)
        stripe.held[txid].add(resource)
        log = self.order_log
        if log is not None:
            log.append((txid, resource, mode.name, upgrading))
        if upgrading:
            stripe.stats.upgrades += 1
        if mode is LockMode.S:
            stripe.stats.s_acquired += 1
        else:
            stripe.stats.x_acquired += 1

    def _enqueue(self, entry: _LockEntry, txid: int, mode: LockMode) -> None:
        """Queue a request FIFO; lock *upgrades* jump ahead of fresh requests.

        An upgrader already holds the resource, so anything granted before
        it would conflict anyway; front-running it shortens the convoy and
        matches conventional lock-manager behaviour.
        """
        if txid in entry.holders:
            at = 0
            while at < len(entry.waiters) and entry.waiters[at][0] in entry.holders:
                at += 1
            entry.waiters.insert(at, (txid, mode))
        else:
            entry.waiters.append((txid, mode))

    def _describe_blockers(
        self, entry: _LockEntry, txid: int, mode: LockMode
    ) -> list:
        return sorted(
            holder
            for holder, held in entry.holders.items()
            if holder != txid and not held.compatible(mode)
        )

    def _is_granted_locked(
        self, stripe: _Stripe, txid: int, resource: object, mode: LockMode
    ) -> bool:
        entry = stripe.table.get(resource)
        if entry is None:
            return False
        held = entry.holders.get(txid)
        return held is not None and held >= mode

    def is_granted(self, txid: int, resource: object, mode: LockMode) -> bool:
        """Whether *txid* currently holds *resource* at least at *mode*."""
        stripe = self._stripe_for(resource)
        with stripe.mutex:
            return self._is_granted_locked(stripe, txid, resource, mode)

    def _drop_request(self, txid: int, resource: object) -> None:
        """Remove *txid*'s queued request on *resource*, keeping grants.

        Safe to call with or without the stripe mutex held (it re-enters
        the owning stripe's RLock); the timeout/deadline/poison abandon
        paths call it while already inside the stripe.
        """
        stripe = self._stripe_for(resource)
        with stripe.mutex:
            entry = stripe.table.get(resource)
            if entry is not None:
                entry.waiters = [(t, m) for t, m in entry.waiters if t != txid]
                if not entry.holders and not entry.waiters:
                    del stripe.table[resource]
            self._publish_edges_locked(stripe)

    # -- release ---------------------------------------------------------------

    def release_all(self, txid: int) -> None:
        """Release every lock *txid* holds, drop its queued requests, and
        grant-and-wake whoever its release unblocks (FIFO per resource)."""
        self._deadlines.pop(txid, None)
        for stripe in self._stripes:
            # Unlocked pre-check: only this thread creates grants or queue
            # entries for txid, so a stripe with an empty table and no
            # grant-index entry for txid cannot gain either concurrently.
            if not stripe.table and txid not in stripe.held:
                continue
            with stripe.mutex:
                for resource in stripe.held.pop(txid, set()):
                    entry = stripe.table.get(resource)
                    if entry is not None:
                        entry.holders.pop(txid, None)
                        if not entry.holders and not entry.waiters:
                            del stripe.table[resource]
                for entry in list(stripe.table.values()):
                    entry.waiters = [(t, m) for t, m in entry.waiters if t != txid]
                granted = self._retry_stripe_locked(stripe)
                self._publish_edges_locked(stripe)
                if granted:
                    stripe.cond.notify_all()

    def retry_waiters(self) -> list[int]:
        """Grant every now-compatible queued request in FIFO arrival order
        per resource; returns the txids granted (with repeats per resource).

        Grants stop at the first still-blocked request of each queue so a
        late arrival can never overtake an incompatible earlier waiter.
        Each stripe's waits-for edges are rebuilt from its remaining
        queues — a granted transaction still waiting on *other* resources
        keeps those edges, so deadlock detection stays sound.
        """
        granted: list[int] = []
        for stripe in self._stripes:
            if not stripe.table:
                continue
            with stripe.mutex:
                fresh = self._retry_stripe_locked(stripe)
                self._publish_edges_locked(stripe)
                if fresh:
                    stripe.cond.notify_all()
                    granted.extend(fresh)
        return granted

    def _retry_stripe_locked(self, stripe: _Stripe) -> list[int]:
        granted: list[int] = []
        for resource, entry in list(stripe.table.items()):
            while entry.waiters:
                txid, mode = entry.waiters[0]
                held = entry.holders.get(txid)
                if held is not None and held >= mode:
                    entry.waiters.pop(0)  # stale: already satisfied
                    continue
                if not self._grantable(entry, txid, mode, position=0):
                    break
                entry.waiters.pop(0)
                self._grant(stripe, entry, txid, resource, mode)
                granted.append(txid)
            if not entry.holders and not entry.waiters:
                del stripe.table[resource]
        return granted

    # -- introspection ------------------------------------------------------------

    def holders_of(self, resource: object) -> frozenset[int]:
        stripe = self._stripe_for(resource)
        with stripe.mutex:
            entry = stripe.table.get(resource)
            return frozenset(entry.holders) if entry else frozenset()

    def mode_held(self, txid: int, resource: object) -> LockMode | None:
        stripe = self._stripe_for(resource)
        with stripe.mutex:
            entry = stripe.table.get(resource)
            return entry.holders.get(txid) if entry else None

    def locks_held(self, txid: int) -> frozenset[object]:
        held: set[object] = set()
        for stripe in self._stripes:
            with stripe.mutex:
                held.update(stripe.held.get(txid, ()))
        return frozenset(held)

    def waits_for_edges(self) -> dict[int, frozenset[int]]:
        merged = self._merged_edges()
        return {t: frozenset(b) for t, b in merged.items() if b}

    # -- deadlock detection ----------------------------------------------------------

    def _publish_edges_locked(self, stripe: _Stripe) -> None:
        """Recompute *stripe*'s waits-for edges and publish a snapshot.

        An edge ``W -> B`` exists when queued request W conflicts with
        holder B, or with an *earlier* queued request B on the same
        resource (FIFO: W cannot be granted before B).  Rebuilding from
        ground truth — instead of mutating edges incrementally — is what
        keeps a transaction's edges on its *other* pending resources alive
        when one of its requests is granted.  Caller holds the stripe
        mutex; publishing takes the graph lock (stripe mutex → graph lock
        is the global order).
        """
        edges: dict[int, set[int]] = {}
        for entry in stripe.table.values():
            for position, (txid, mode) in enumerate(entry.waiters):
                bucket = edges.setdefault(txid, set())
                for holder, held in entry.holders.items():
                    if holder != txid and not held.compatible(mode):
                        bucket.add(holder)
                for earlier, emode in entry.waiters[:position]:
                    if earlier != txid and not (
                        emode.compatible(mode) and mode.compatible(emode)
                    ):
                        bucket.add(earlier)
        edges = {txid: blockers for txid, blockers in edges.items() if blockers}
        with self._graph_lock:
            if edges:
                self._edges[stripe.index] = edges
            else:
                self._edges.pop(stripe.index, None)

    def _merged_edges(self) -> dict[int, set[int]]:
        """Union of every stripe's published edge snapshot."""
        with self._graph_lock:
            merged: dict[int, set[int]] = {}
            for per_stripe in self._edges.values():
                for txid, blockers in per_stripe.items():
                    merged.setdefault(txid, set()).update(blockers)
            return merged

    def _find_cycle(self, start: int) -> tuple[int, ...]:
        """DFS from *start* in the merged waits-for graph; a cycle or ().

        The caller has already published its own stripe's edges, so the
        requester whose edge closes a cycle always sees the full cycle
        here regardless of which stripes the other edges live in.
        """
        graph = self._merged_edges()
        path: list[int] = []
        on_path: set[int] = set()
        visited: set[int] = set()

        def dfs(node: int) -> tuple[int, ...]:
            if node in on_path:
                idx = path.index(node)
                return tuple(path[idx:]) + (node,)
            if node in visited:
                return ()
            visited.add(node)
            path.append(node)
            on_path.add(node)
            for nxt in graph.get(node, ()):
                cycle = dfs(nxt)
                if cycle:
                    return cycle
            path.pop()
            on_path.discard(node)
            return ()

        return dfs(start)
