"""The Dali-like main-memory storage manager (MM-Ode's substrate).

Records live in a plain dictionary; transactions keep in-memory undo lists.
Durability (optional, on by default when a path is given) follows Dali's
checkpoint + redo-log design: mutations are appended to an operation log,
and :meth:`checkpoint` writes a snapshot of the committed store and
truncates the log.  Reopening loads the snapshot and replays the log with
the shared :mod:`repro.storage.recovery` passes — the same code the disk
engine uses, mirroring how MM-Ode "shares a great deal of run-time system
code" with disk Ode (paper Section 5.6).

With ``durable=False`` the engine is purely volatile (no files touched),
which is the configuration the performance experiments use to isolate
main-memory costs.
"""

from __future__ import annotations

import os
import struct
import threading
from collections.abc import Iterator

from repro.errors import (
    ReadOnlyStorageError,
    RecordNotFoundError,
    StorageError,
    UnrecoverableMediaError,
)
from repro.faults.injector import NULL_INJECTOR, FaultInjector
from repro.storage.interface import StorageManager
from repro.storage.locks import DEFAULT_LOCK_STRIPES, LockManager, LockMode
from repro.storage.recovery import RecoveryStats, recover
from repro.storage.wal import LogRecord, LogRecordKind, WriteAheadLog

_ROOT_RESOURCE = "ROOT"
_SNAP_HEAD = struct.Struct("<8sqqq")  # magic, next_rid, root, count
_SNAP_REC = struct.Struct("<qI")  # rid, length
_MAGIC = b"ODEREPMM"
_I64 = struct.Struct("<q")


class MainMemoryStorageManager(StorageManager):
    """Transactional in-memory record store with optional durability."""

    def __init__(
        self,
        path: str | None = None,
        durable: bool | None = None,
        injector: FaultInjector = NULL_INJECTOR,
        lock_stripes: int = DEFAULT_LOCK_STRIPES,
        group_commit: bool = False,
    ):
        super().__init__()
        self.path = str(path) if path is not None else None
        self.injector = injector
        self.degraded = False
        self.group_commit = group_commit
        if durable is None:
            durable = path is not None
        if durable and path is None:
            raise StorageError("a durable main-memory store needs a path")
        self.durable = durable
        self._store: dict[int, bytes] = {}
        self._next_rid = 1
        # Engine-wide mutex for threaded sessions: guards the store, the
        # rid counter, per-txn undo lists, and the op log.  Record locks
        # are always taken *outside* it — a blocking lock wait must never
        # hold the engine mutex.
        self._mutex = threading.RLock()
        self._root = self.NO_ROOT
        self._locks = LockManager(stripes=lock_stripes)
        self._active: dict[int, list[LogRecord]] = {}
        self._closed = False
        self._wal: WriteAheadLog | None = None
        self.last_recovery: RecoveryStats | None = None
        if self.durable:
            self._load_snapshot()
            self._wal = WriteAheadLog(
                self.path + ".oplog",
                stats=self.stats,
                injector=injector,
                group_commit=group_commit,
            )
            try:
                self.last_recovery = recover(
                    self._wal.replay(), self._redo, self._undo
                )
                self.checkpoint()
            except BaseException:
                self._wal.crash()  # no fd leaks on a failed/crashed open
                raise

    # -- snapshot / recovery -------------------------------------------------

    def _snapshot_path(self) -> str:
        return self.path + ".snap"

    def _load_snapshot(self) -> None:
        try:
            with open(self._snapshot_path(), "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return
        magic, next_rid, root, count = _SNAP_HEAD.unpack_from(raw, 0)
        if magic != _MAGIC:
            raise StorageError(f"{self.path}: not an MM-Ode-repro snapshot")
        pos = _SNAP_HEAD.size
        store: dict[int, bytes] = {}
        for _ in range(count):
            rid, length = _SNAP_REC.unpack_from(raw, pos)
            pos += _SNAP_REC.size
            store[rid] = raw[pos : pos + length]
            pos += length
        self._store = store
        self._next_rid = next_rid
        self._root = root

    def _write_snapshot(self) -> None:
        parts = [
            _SNAP_HEAD.pack(_MAGIC, self._next_rid, self._root, len(self._store))
        ]
        for rid, data in self._store.items():
            parts.append(_SNAP_REC.pack(rid, len(data)))
            parts.append(data)
        tmp = self._snapshot_path() + ".tmp"
        self.injector.fire("snapshot.write")
        with open(tmp, "wb") as fh:
            fh.write(b"".join(parts))
            fh.flush()
            os.fsync(fh.fileno())
        # Atomic rename: a crash on either side leaves a usable snapshot
        # (the old one before, the new one after).
        self.injector.fire("snapshot.replace")
        os.replace(tmp, self._snapshot_path())

    def _redo(self, record: LogRecord) -> None:
        if record.kind is LogRecordKind.SET_ROOT:
            (self._root,) = _I64.unpack(record.after)
        elif record.kind in (LogRecordKind.INSERT, LogRecordKind.UPDATE):
            self._store[record.rid] = record.after
            self._next_rid = max(self._next_rid, record.rid + 1)
        elif record.kind is LogRecordKind.DELETE:
            self._store.pop(record.rid, None)

    def _undo(self, record: LogRecord) -> None:
        if record.kind is LogRecordKind.SET_ROOT:
            (self._root,) = _I64.unpack(record.before)
        elif record.kind is LogRecordKind.INSERT:
            self._store.pop(record.rid, None)
        elif record.kind in (LogRecordKind.UPDATE, LogRecordKind.DELETE):
            self._store[record.rid] = record.before

    # -- media degrade ---------------------------------------------------------

    def _degrade(self) -> None:
        if self.degraded:
            return
        self.degraded = True
        self._notify_degraded()

    def _check_writable(self) -> None:
        if self.degraded:
            raise ReadOnlyStorageError(
                f"{self.path}: degraded to read-only after a media error"
            )

    # -- transaction control ---------------------------------------------------

    def begin_transaction(self, txid: int) -> None:
        self._check_open()
        with self._mutex:
            if txid in self._active:
                raise StorageError(f"transaction {txid} already active")
            self._active[txid] = []
            if self._wal is not None and not self.degraded:
                try:
                    self._wal.append(txid, LogRecordKind.BEGIN)
                except UnrecoverableMediaError as exc:
                    self._degrade()
                    raise ReadOnlyStorageError(
                        f"{self.path}: log append failed permanently; "
                        "database degraded to read-only"
                    ) from exc

    def commit_transaction(self, txid: int) -> None:
        self._check_open()
        with self._mutex:
            records = self._require_active(txid)
            wal = self._wal if not self.degraded else None
            if self.degraded and records:
                raise ReadOnlyStorageError(
                    f"cannot commit transaction {txid}: "
                    "database degraded to read-only with logged mutations"
                )
            if wal is not None:
                self.injector.fire("txn.commit.begin", txid=txid)
                try:
                    wal.append(txid, LogRecordKind.COMMIT)
                except UnrecoverableMediaError as exc:
                    self._degrade()
                    raise ReadOnlyStorageError(
                        f"commit of transaction {txid} failed permanently; "
                        "database degraded to read-only"
                    ) from exc
            else:
                del self._active[txid]
                self.stats.commits += 1
        if wal is not None:
            # The durability fsync runs OUTSIDE the engine mutex so group-
            # commit leaders can batch concurrent committers (and even
            # without grouping, overlapping appends are safe: WAL
            # durability is prefix-based).  The txid stays in ``_active``
            # until durable so an abort-after-failure can still undo it.
            try:
                wal.force()
            except UnrecoverableMediaError as exc:
                self._degrade()
                raise ReadOnlyStorageError(
                    f"commit of transaction {txid} failed permanently; "
                    "database degraded to read-only"
                ) from exc
            self.injector.fire("txn.commit.durable", txid=txid)
            with self._mutex:
                del self._active[txid]
                self.stats.commits += 1
        # Outside the mutex: releasing grants queued requests FIFO and
        # wakes the blocked sessions that now hold their locks.
        self._locks.release_all(txid)

    def abort_transaction(self, txid: int) -> None:
        self._check_open()
        with self._mutex:
            self._abort_locked(txid)
        self._locks.release_all(txid)

    def _abort_locked(self, txid: int) -> None:
        records = self._require_active(txid)
        for record in reversed(records):
            compensation = record.inverse()
            if self._wal is not None and not self.degraded:
                try:
                    self._wal.append(
                        txid,
                        compensation.kind,
                        compensation.rid,
                        compensation.before,
                        compensation.after,
                    )
                except UnrecoverableMediaError:
                    self._degrade()  # keep undoing in memory
            self._redo(compensation)
        if self._wal is not None and not self.degraded:
            try:
                self._wal.append(txid, LogRecordKind.ABORT)
            except UnrecoverableMediaError:
                self._degrade()
        del self._active[txid]
        self.stats.aborts += 1

    def _require_active(self, txid: int) -> list[LogRecord]:
        try:
            return self._active[txid]
        except KeyError:
            raise StorageError(f"transaction {txid} is not active") from None

    def _open_txids(self) -> frozenset[int]:
        return frozenset(self._active)

    # -- data operations -----------------------------------------------------------

    def _log(self, txid, kind, rid=-1, before=b"", after=b"") -> None:
        record = LogRecord(0, txid, kind, rid, bytes(before), bytes(after))
        if self._wal is not None:
            try:
                record = self._wal.append(txid, kind, rid, before, after)
            except UnrecoverableMediaError as exc:
                self._degrade()
                raise ReadOnlyStorageError(
                    f"{self.path}: log append failed permanently; "
                    "database degraded to read-only"
                ) from exc
        self._active[txid].append(record)

    def insert(self, txid: int, data: bytes) -> int:
        self._check_open()
        self._check_writable()
        self._require_active(txid)
        with self._mutex:
            rid = self._next_rid
            self._next_rid += 1
        # A fresh rid is invisible to other transactions: the X lock is
        # granted immediately, it just records the holding for 2PL.
        self._locks.lock(txid, rid, LockMode.X)
        with self._mutex:
            self._log(txid, LogRecordKind.INSERT, rid, b"", data)
            self._store[rid] = bytes(data)
            self.stats.inserts += 1
        return rid

    def read(self, txid: int, rid: int) -> bytes:
        self._check_open()
        self._require_active(txid)
        self._locks.lock(txid, rid, LockMode.S)
        with self._mutex:
            try:
                data = self._store[rid]
            except KeyError:
                raise RecordNotFoundError(f"rid {rid} not found") from None
            self.stats.reads += 1
        return data

    def write(self, txid: int, rid: int, data: bytes) -> None:
        self._check_open()
        self._check_writable()
        self._require_active(txid)
        self._locks.lock(txid, rid, LockMode.X)
        with self._mutex:
            try:
                before = self._store[rid]
            except KeyError:
                raise RecordNotFoundError(f"rid {rid} not found") from None
            self._log(txid, LogRecordKind.UPDATE, rid, before, data)
            self._store[rid] = bytes(data)
            self.stats.writes += 1

    def write_merged(self, txid: int, rid: int, data: bytes) -> None:
        # Lock-free by contract: the MVCC version manager's commit mutex
        # is the only serialization (see StorageManager.write_merged).
        self._check_open()
        self._check_writable()
        self._require_active(txid)
        with self._mutex:
            try:
                before = self._store[rid]
            except KeyError:
                raise RecordNotFoundError(f"rid {rid} not found") from None
            self._log(txid, LogRecordKind.UPDATE, rid, before, data)
            self._store[rid] = bytes(data)
            self.stats.writes += 1

    def peek(self, rid: int) -> bytes:
        self._check_open()
        with self._mutex:
            try:
                return self._store[rid]
            except KeyError:
                raise RecordNotFoundError(f"rid {rid} not found") from None

    def delete(self, txid: int, rid: int) -> None:
        self._check_open()
        self._check_writable()
        self._require_active(txid)
        self._locks.lock(txid, rid, LockMode.X)
        with self._mutex:
            try:
                before = self._store[rid]
            except KeyError:
                raise RecordNotFoundError(f"rid {rid} not found") from None
            self._log(txid, LogRecordKind.DELETE, rid, before, b"")
            del self._store[rid]
            self.stats.deletes += 1

    def exists(self, txid: int, rid: int) -> bool:
        self._check_open()
        self._require_active(txid)
        return rid in self._store

    def scan(self, txid: int) -> Iterator[tuple[int, bytes]]:
        self._check_open()
        self._require_active(txid)
        with self._mutex:
            rids = sorted(self._store)
        for rid in rids:
            self._locks.lock(txid, rid, LockMode.S)
            with self._mutex:
                data = self._store.get(rid)
            if data is not None:
                yield rid, data

    # -- root pointer ------------------------------------------------------------------

    def get_root(self) -> int:
        self._check_open()
        return self._root

    def set_root(self, txid: int, rid: int) -> None:
        self._check_open()
        self._check_writable()
        self._require_active(txid)
        self._locks.lock(txid, _ROOT_RESOURCE, LockMode.X)
        with self._mutex:
            self._log_set_root(txid, rid)

    def _log_set_root(self, txid: int, rid: int) -> None:
        self._log(
            txid,
            LogRecordKind.SET_ROOT,
            -1,
            _I64.pack(self._root),
            _I64.pack(rid),
        )
        self._root = rid

    # -- lifecycle ------------------------------------------------------------------------

    def checkpoint(self) -> None:
        self._check_open()
        if self.degraded:
            return
        if self._active:
            raise StorageError("cannot checkpoint with active transactions")
        if not self.durable:
            return
        try:
            self.injector.fire("checkpoint.begin")
            self._write_snapshot()
            self.injector.fire("checkpoint.before_truncate")
            assert self._wal is not None
            self._wal.truncate()
            self.injector.fire("checkpoint.end")
        except UnrecoverableMediaError as exc:
            self._degrade()
            raise ReadOnlyStorageError(
                f"{self.path}: checkpoint failed permanently; "
                "database degraded to read-only"
            ) from exc

    def close(self) -> None:
        if self._closed:
            return
        for txid in list(self._active):
            self.abort_transaction(txid)
        if self.durable:
            if not self.degraded:
                try:
                    self.checkpoint()
                except ReadOnlyStorageError:
                    pass
            assert self._wal is not None
            if self.degraded:
                # Drop any unforced tail — e.g. a COMMIT whose force
                # failed and which the application saw refused.
                self._wal.crash()
            else:
                self._wal.close()
        self._closed = True

    def simulate_crash(self) -> None:
        """Drop all volatile state; only snapshot + *forced* op-log survive.

        Like the disk engine, the unforced log tail is truncated away — a
        real crash loses whatever was never fsynced.
        """
        if self._closed:
            return
        if self._wal is not None:
            self._wal.crash()
        self._store.clear()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("storage manager is closed")

    @property
    def lock_manager(self) -> LockManager:
        return self._locks
