"""Slotted pages — the on-disk unit of the EOS-like engine.

A page is a fixed-size byte array laid out in the classic slotted style::

    +------------------+-----------------------------+------------------+
    | header (8 bytes) | slot directory (grows ->)   | <- record heap   |
    +------------------+-----------------------------+------------------+

Header fields: ``slot_count`` and ``free_end`` (offset one past the byte
where the next record will end, i.e. records are packed from the tail).
Each slot is an ``(offset, length)`` pair; a deleted slot has offset
``TOMBSTONE`` so slot numbers stay stable (rids embed them) while the space
is reclaimed lazily by :meth:`SlottedPage.compact`.

The trailing :data:`CHECKSUM_SIZE` bytes of every page are reserved for a
CRC32 stamped by ``PagedFile.write_page`` and verified on read — torn page
writes and bit rot surface as :class:`~repro.errors.PageChecksumError`
instead of silently decoding garbage.  The heap therefore packs against
``PAGE_SIZE - CHECKSUM_SIZE``, never into the checksum field.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator

from repro.errors import PageError, PageFullError

PAGE_SIZE = 4096
CHECKSUM_SIZE = 4  # trailing CRC32, stamped/verified by PagedFile
USABLE_END = PAGE_SIZE - CHECKSUM_SIZE

_HEADER = struct.Struct("<HH")  # slot_count, free_end
_SLOT = struct.Struct("<HH")  # offset, length
_HEADER_SIZE = _HEADER.size
_SLOT_SIZE = _SLOT.size

TOMBSTONE = 0xFFFF


class SlottedPage:
    """A mutable slotted page over a ``bytearray`` of :data:`PAGE_SIZE`."""

    def __init__(self, raw: bytearray | None = None):
        if raw is None:
            raw = bytearray(PAGE_SIZE)
            _HEADER.pack_into(raw, 0, 0, USABLE_END)
        if len(raw) != PAGE_SIZE:
            raise PageError(f"page must be exactly {PAGE_SIZE} bytes, got {len(raw)}")
        self.raw = raw

    # -- header accessors -----------------------------------------------------

    @property
    def slot_count(self) -> int:
        return _HEADER.unpack_from(self.raw, 0)[0]

    @property
    def free_end(self) -> int:
        return _HEADER.unpack_from(self.raw, 0)[1]

    def _set_header(self, slot_count: int, free_end: int) -> None:
        _HEADER.pack_into(self.raw, 0, slot_count, free_end)

    def _slot(self, slot_no: int) -> tuple[int, int]:
        if not 0 <= slot_no < self.slot_count:
            raise PageError(f"slot {slot_no} out of range (count={self.slot_count})")
        return _SLOT.unpack_from(self.raw, _HEADER_SIZE + slot_no * _SLOT_SIZE)

    def _set_slot(self, slot_no: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.raw, _HEADER_SIZE + slot_no * _SLOT_SIZE, offset, length)

    # -- space accounting -------------------------------------------------------

    @property
    def directory_end(self) -> int:
        """First byte past the slot directory."""
        return _HEADER_SIZE + self.slot_count * _SLOT_SIZE

    def free_space(self) -> int:
        """Contiguous bytes available between the directory and the heap."""
        return self.free_end - self.directory_end

    def reclaimable_space(self) -> int:
        """Bytes held by tombstoned slots, recoverable by :meth:`compact`."""
        dead = 0
        for slot_no in range(self.slot_count):
            offset, length = self._slot(slot_no)
            if offset == TOMBSTONE:
                dead += length
        return dead

    def fits(self, data_len: int, *, reuse_slot: bool = False) -> bool:
        """Whether a record of *data_len* bytes can be inserted now."""
        need = data_len if reuse_slot else data_len + _SLOT_SIZE
        return self.free_space() >= need

    # -- record operations --------------------------------------------------------

    def insert(self, data: bytes) -> int:
        """Insert *data*, returning its slot number.

        Reuses a tombstoned slot when one exists (keeping the directory
        small); compacts the heap first if fragmentation is the only thing
        standing in the way.
        """
        if len(data) > USABLE_END - _HEADER_SIZE - _SLOT_SIZE:
            raise PageFullError(f"record of {len(data)} bytes can never fit in a page")
        free_slot = self._find_tombstone()
        reuse = free_slot is not None
        if not self.fits(len(data), reuse_slot=reuse):
            self.compact()
        if not self.fits(len(data), reuse_slot=reuse):
            raise PageFullError(
                f"no room for {len(data)} bytes (free={self.free_space()})"
            )
        new_end = self.free_end - len(data)
        self.raw[new_end : new_end + len(data)] = data
        if reuse:
            slot_no = free_slot
            self._set_header(self.slot_count, new_end)
        else:
            slot_no = self.slot_count
            self._set_header(self.slot_count + 1, new_end)
        self._set_slot(slot_no, new_end, len(data))
        return slot_no

    def insert_at(self, slot_no: int, data: bytes) -> None:
        """Re-insert *data* at a specific (tombstoned or new) slot.

        Used by recovery/undo, where the rid — and hence the slot number —
        must be preserved.
        """
        while self.slot_count <= slot_no:
            if self.free_space() < _SLOT_SIZE:
                self.compact()
                if self.free_space() < _SLOT_SIZE:
                    raise PageFullError("no room to extend slot directory")
            self._set_header(self.slot_count + 1, self.free_end)
            self._set_slot(self.slot_count - 1, TOMBSTONE, 0)
        offset, _ = self._slot(slot_no)
        if offset != TOMBSTONE:
            raise PageError(f"slot {slot_no} is occupied; cannot insert_at")
        if not self.fits(len(data), reuse_slot=True):
            self.compact()
        if not self.fits(len(data), reuse_slot=True):
            raise PageFullError(f"no room for {len(data)} bytes at slot {slot_no}")
        new_end = self.free_end - len(data)
        self.raw[new_end : new_end + len(data)] = data
        self._set_header(self.slot_count, new_end)
        self._set_slot(slot_no, new_end, len(data))

    def read(self, slot_no: int) -> bytes:
        """Return the record stored at *slot_no*."""
        offset, length = self._slot(slot_no)
        if offset == TOMBSTONE:
            raise PageError(f"slot {slot_no} is deleted")
        return bytes(self.raw[offset : offset + length])

    def update(self, slot_no: int, data: bytes) -> None:
        """Replace the record at *slot_no* with *data* (may relocate it)."""
        offset, length = self._slot(slot_no)
        if offset == TOMBSTONE:
            raise PageError(f"slot {slot_no} is deleted")
        if len(data) <= length:
            self.raw[offset : offset + len(data)] = data
            self._set_slot(slot_no, offset, len(data))
            return
        # Grow: tombstone the old copy and re-place at the heap tail.
        old_data = bytes(self.raw[offset : offset + length])
        self._set_slot(slot_no, TOMBSTONE, length)
        try:
            self.insert_at(slot_no, data)
        except PageFullError:
            # insert_at may have compacted the page (moving every record)
            # before giving up, so the old offset is meaningless now —
            # re-insert the saved bytes instead.  This cannot fail: the
            # record occupied at least this much space a moment ago.
            self.insert_at(slot_no, old_data)
            raise

    def delete(self, slot_no: int) -> None:
        """Tombstone the record at *slot_no* (slot number stays allocated)."""
        offset, length = self._slot(slot_no)
        if offset == TOMBSTONE:
            raise PageError(f"slot {slot_no} is already deleted")
        self._set_slot(slot_no, TOMBSTONE, length)

    def is_live(self, slot_no: int) -> bool:
        """Whether *slot_no* currently holds a record."""
        if not 0 <= slot_no < self.slot_count:
            return False
        offset, _ = self._slot(slot_no)
        return offset != TOMBSTONE

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(slot_no, data)`` for every live record."""
        for slot_no in range(self.slot_count):
            offset, length = self._slot(slot_no)
            if offset != TOMBSTONE:
                yield slot_no, bytes(self.raw[offset : offset + length])

    def compact(self) -> None:
        """Repack live records against the page tail, erasing fragmentation."""
        live = [
            (slot_no, self.read(slot_no))
            for slot_no in range(self.slot_count)
            if self.is_live(slot_no)
        ]
        end = USABLE_END
        for slot_no, data in live:
            end -= len(data)
            self.raw[end : end + len(data)] = data
            self._set_slot(slot_no, end, len(data))
        self._set_header(self.slot_count, end)

    # -- helpers -----------------------------------------------------------------

    def _find_tombstone(self) -> int | None:
        for slot_no in range(self.slot_count):
            offset, _ = self._slot(slot_no)
            if offset == TOMBSTONE:
                return slot_no
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        live = sum(1 for _ in self.records())
        return (
            f"<SlottedPage slots={self.slot_count} live={live} "
            f"free={self.free_space()}>"
        )
