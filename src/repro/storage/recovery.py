"""Crash recovery over record-level value logging.

Both engines log logical record values (before/after images), which makes
the classic three-pass scheme simple and engine-independent:

1. **Analysis** — partition transactions into *winners* (a COMMIT record
   reached the log) and *losers* (everything else that began).
2. **Redo** — repeat history: re-apply every logged mutation, winner or
   loser, in log order.  Because pages may have been stolen (flushed with
   uncommitted data) or never flushed, the disk can be in any mixed state;
   value-level redo is idempotent, so repeating history converges.
3. **Undo** — roll back loser mutations in reverse log order using the
   before images.

The engine supplies the physical apply callbacks; this module owns the
ordering logic and exposes :class:`RecoveryStats` for experiment E12.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterable

from repro.storage.wal import LogRecord, LogRecordKind

_MUTATIONS = (
    LogRecordKind.INSERT,
    LogRecordKind.UPDATE,
    LogRecordKind.DELETE,
    LogRecordKind.SET_ROOT,
)


@dataclasses.dataclass
class RecoveryStats:
    """Outcome of a recovery pass."""

    records_scanned: int = 0
    winners: int = 0
    losers: int = 0
    redo_applied: int = 0
    undo_applied: int = 0

    def snapshot(self) -> dict[str, int]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class AnalysisResult:
    winners: frozenset[int]
    losers: frozenset[int]
    mutations: tuple[LogRecord, ...]


def analyze(records: Iterable[LogRecord]) -> AnalysisResult:
    """Pass 1: classify transactions and collect the mutation records."""
    began: set[int] = set()
    winners: set[int] = set()
    mutations: list[LogRecord] = []
    for record in records:
        if record.kind is LogRecordKind.BEGIN:
            began.add(record.txid)
        elif record.kind is LogRecordKind.COMMIT:
            winners.add(record.txid)
        elif record.kind is LogRecordKind.ABORT:
            # Aborts log *compensation* mutations before the ABORT record
            # (see the engines' abort paths), so the rolled-back state is
            # reproduced by plain redo — an aborted transaction is a winner
            # from recovery's point of view, exactly like ARIES CLRs.
            winners.add(record.txid)
        elif record.kind in _MUTATIONS:
            began.add(record.txid)
            mutations.append(record)
    losers = began - winners
    return AnalysisResult(frozenset(winners), frozenset(losers), tuple(mutations))


def recover(
    records: Iterable[LogRecord],
    redo: Callable[[LogRecord], None],
    undo: Callable[[LogRecord], None],
) -> RecoveryStats:
    """Run analysis, redo, and undo; returns the pass statistics.

    *redo(record)* must re-apply the record's after-state; *undo(record)*
    must restore its before-state.  Both must be idempotent at the record
    level (set-to-value / ensure-present / ensure-absent semantics).
    """
    materialized = list(records)
    result = analyze(materialized)
    stats = RecoveryStats(
        records_scanned=len(materialized),
        winners=len(result.winners),
        losers=len(result.losers),
    )
    for record in result.mutations:  # redo: repeat history in log order
        redo(record)
        stats.redo_applied += 1
    for record in reversed(result.mutations):  # undo losers, newest first
        if record.txid in result.losers:
            undo(record)
            stats.undo_applied += 1
    return stats
