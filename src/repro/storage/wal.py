"""Write-ahead log with record-level value logging.

Each mutation appends a :class:`LogRecord` carrying before/after images of
the affected record, which makes redo and undo idempotent at the record
level (see :mod:`repro.storage.recovery`).  Commit appends a COMMIT record
and forces the log; data pages are written lazily (STEAL/NO-FORCE).

On-disk format per record::

    <u32 payload_len> <u32 crc32(payload)> <payload>

where payload is ``<u64 lsn> <u64 txid> <u8 kind> <i64 rid>
<u32 before_len> before <u32 after_len> after``.  A torn *tail* (partial
last record or CRC mismatch with nothing valid after it) is treated as the
end of the log, as a real WAL would after a crash mid-write.  *Interior*
corruption — a bad frame with valid frames still decodable after it —
means committed history was damaged; :meth:`WriteAheadLog.replay` raises
:class:`~repro.errors.WALError` carrying salvage info rather than silently
dropping committed transactions.

The log tracks its last-fsynced offset so :meth:`WriteAheadLog.crash` can
simulate a real process death: everything after the last force is dropped,
exactly what the page cache would lose at power-off.

**Group commit** (``group_commit=True``): concurrent :meth:`force` callers
elect a *leader* that performs one fsync covering every record appended
before it; the others (*followers*) wait for that flush to land and return
without their own fsync.  Durability is prefix-based — an fsync makes the
whole log up to the flush point durable, so a COMMIT record covered by a
later caller's fsync is exactly as durable as one covered by its own.
The batch has its own failpoints: ``wal.group_force`` fires before the
batched fsync (a crash there loses the entire batch — every commit in it
was still unacknowledged) and ``wal.group_force.after`` fires once the
batch is durable.  A single committer degenerates to leader-with-empty-
batch, i.e. exactly today's one-fsync-per-commit behaviour; cooperative
schedulers bypass grouping entirely (their sessions run one at a time, so
there is never a batch to share).
"""

from __future__ import annotations

import dataclasses
import enum
import os
import struct
import threading
import time
import zlib
from collections.abc import Iterator

from repro import obs
from repro.errors import WALError
from repro.faults.injector import NULL_INJECTOR, FaultInjector, with_retry
from repro.storage.locks import current_wait_hooks

_FRAME = struct.Struct("<II")  # payload_len, crc
_PAYLOAD_HEAD = struct.Struct("<QQBq")  # lsn, txid, kind, rid
_LEN = struct.Struct("<I")

#: Upper bound on a sane payload length, used when re-synchronizing after
#: a corrupt frame — anything larger is noise, not a frame header.
_MAX_SANE_PAYLOAD = 1 << 24


class LogRecordKind(enum.IntEnum):
    """The kinds of log record the engines emit."""

    BEGIN = 1
    INSERT = 2
    UPDATE = 3
    DELETE = 4
    COMMIT = 5
    ABORT = 6
    CHECKPOINT = 7
    SET_ROOT = 8


@dataclasses.dataclass(frozen=True)
class LogRecord:
    """One entry in the write-ahead log."""

    lsn: int
    txid: int
    kind: LogRecordKind
    rid: int = -1
    before: bytes = b""
    after: bytes = b""

    def encode(self) -> bytes:
        payload = (
            _PAYLOAD_HEAD.pack(self.lsn, self.txid, int(self.kind), self.rid)
            + _LEN.pack(len(self.before))
            + self.before
            + _LEN.pack(len(self.after))
            + self.after
        )
        return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload

    def inverse(self) -> "LogRecord":
        """The compensation record that undoes this mutation.

        Logged (and applied) by the engines' abort paths so that crash
        recovery can replay aborted transactions with plain redo.
        """
        kind_map = {
            LogRecordKind.INSERT: LogRecordKind.DELETE,
            LogRecordKind.DELETE: LogRecordKind.INSERT,
            LogRecordKind.UPDATE: LogRecordKind.UPDATE,
            LogRecordKind.SET_ROOT: LogRecordKind.SET_ROOT,
        }
        if self.kind not in kind_map:
            raise WALError(f"{self.kind.name} records have no inverse")
        return LogRecord(
            0, self.txid, kind_map[self.kind], self.rid, self.after, self.before
        )

    @classmethod
    def decode(cls, payload: bytes) -> "LogRecord":
        lsn, txid, kind, rid = _PAYLOAD_HEAD.unpack_from(payload, 0)
        pos = _PAYLOAD_HEAD.size
        (blen,) = _LEN.unpack_from(payload, pos)
        pos += _LEN.size
        before = payload[pos : pos + blen]
        pos += blen
        (alen,) = _LEN.unpack_from(payload, pos)
        pos += _LEN.size
        after = payload[pos : pos + alen]
        return cls(lsn, txid, LogRecordKind(kind), rid, bytes(before), bytes(after))


class WalStatsView:
    """Metrics adapter exposing the log's counters under a ``wal.*`` prefix.

    The counters themselves live on the engine's ``StorageStats`` (the WAL
    increments them there); this view re-exports the log-related subset so
    dashboards can read ``wal.group_commits`` next to ``wal.log_forces``
    without knowing the storage layout.  ``reset`` is a no-op — the storage
    source owns the fields and resets them.
    """

    def __init__(self, stats) -> None:
        self._stats = stats

    def snapshot(self) -> dict[str, int]:
        stats = self._stats
        return {
            "log_records": stats.log_records,
            "log_forces": stats.log_forces,
            "group_commits": stats.group_commits,
            "group_piggybacks": stats.group_piggybacks,
        }

    def reset(self) -> None:
        pass


class WriteAheadLog:
    """Append-only log file with CRC framing and explicit force points."""

    def __init__(
        self,
        path: str,
        stats=None,
        injector: FaultInjector = NULL_INJECTOR,
        *,
        group_commit: bool = False,
        group_window: float = 0.0,
    ):
        self.path = str(path)
        self.injector = injector
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        self._stats = stats
        # Whatever is on disk at open survived (or was already forced);
        # appends grow _size, forces advance _synced_size to match.
        self._size = os.fstat(self._fd).st_size
        self._synced_size = self._size
        self._closed = False
        # Serializes append/force/truncate: concurrent sessions share one
        # log (the engine mutex already covers the common paths; this keeps
        # the WAL safe even when driven directly, e.g. by tests).
        self._mutex = threading.RLock()
        #: Batch concurrent commit forces behind a single leader fsync.
        self.group_commit = group_commit
        #: Optional leader dally (seconds) before the batched fsync, to
        #: gather more committers.  0 = pure piggybacking: the leader
        #: fsyncs immediately and commits arriving during that fsync are
        #: batched by the *next* leader — no added latency at one session.
        self.group_window = group_window
        self._gc_flushing = False
        self._gc_cond = threading.Condition(self._mutex)
        try:
            self._next_lsn = self._scan_next_lsn()
        except WALError:
            os.close(self._fd)
            self._closed = True
            raise

    def _scan_next_lsn(self) -> int:
        last = 0
        for record in self.replay():
            last = record.lsn
        return last + 1

    def _count_retry(self) -> None:
        if self._stats is not None:
            self._stats.io_retries += 1

    # -- appending -------------------------------------------------------------

    def append(
        self,
        txid: int,
        kind: LogRecordKind,
        rid: int = -1,
        before: bytes = b"",
        after: bytes = b"",
    ) -> LogRecord:
        """Append a record, returning it (with its assigned LSN)."""
        if self._closed:
            raise WALError("log is closed")
        with self._mutex:
            record = LogRecord(
                self._next_lsn, txid, kind, rid, bytes(before), bytes(after)
            )
            self._next_lsn += 1
            frame = record.encode()

            def op():
                data, crash_after = self.injector.fire_write(
                    "wal.append", frame, lsn=record.lsn, kind=kind.name
                )
                os.write(self._fd, data)
                self._size += len(data)
                if crash_after:
                    # A torn append the power cut made durable: fsync the
                    # partial frame so the simulated crash keeps it and
                    # recovery has a real torn tail to truncate.
                    os.fsync(self._fd)
                    self._synced_size = self._size
                    self.injector.crash_pending("wal.append")

            with_retry(op, on_retry=self._count_retry)
        if self._stats is not None:
            self._stats.log_records += 1
        if obs.ENABLED:
            obs.emit(
                "wal.append",
                lsn=record.lsn,
                txid=txid,
                record=kind.name,
                rid=rid,
                bytes=len(frame),
            )
        return record

    def force(self) -> None:
        """fsync the log — the durability point for commits.

        With :attr:`group_commit` enabled (and no cooperative scheduler
        installed on this thread), concurrent callers share a leader's
        batched fsync; otherwise this is a plain :meth:`force_now`.
        """
        if not self.group_commit or current_wait_hooks() is not None:
            self.force_now()
            return
        self._force_grouped()

    def force_now(self) -> None:
        """Unconditional single-caller fsync.

        Checkpoints use this directly: they truncate the log right after,
        so the flush must not ride (or race) a commit leader's batch.
        The buffer pool's WAL-before-data staging goes through
        :meth:`force` instead — write-ahead only requires the log durable
        up to the page's records, which a batched flush also guarantees.
        """

        def op():
            self.injector.fire("wal.force")  # crash here: nothing durable
            os.fsync(self._fd)

        with self._mutex:
            with_retry(op, on_retry=self._count_retry)
            self._synced_size = self._size
        self.injector.fire("wal.force.after")  # crash here: tail is durable
        if self._stats is not None:
            self._stats.log_forces += 1
        if obs.ENABLED:
            obs.emit("wal.force", synced_bytes=self._synced_size)

    def _force_grouped(self) -> None:
        with self._mutex:
            goal = self._size
            while True:
                if self._synced_size >= goal:
                    # A leader's batched fsync already covered every byte
                    # this caller appended: durability by piggyback.
                    if self._stats is not None:
                        self._stats.group_piggybacks += 1
                    return
                if not self._gc_flushing:
                    self._gc_flushing = True
                    break
                # Follower: a flush is in flight; wait for it to land and
                # re-check.  The wait is bounded only as a belt against a
                # leader dying without its ``finally`` (not expected).
                self._gc_cond.wait(0.05)

        # Leader.  The fsync runs OUTSIDE the WAL mutex so concurrent
        # committers keep appending records the next flush will cover —
        # that overlap is the entire scaling win.
        flushed = None
        try:
            if self.group_window > 0:
                time.sleep(self.group_window)  # gather more committers
            with self._mutex:
                flush_to = self._size

            def op():
                # Crash here: the whole batch is lost, and every commit in
                # it was still unacknowledged — same contract as wal.force.
                self.injector.fire("wal.group_force")
                os.fsync(self._fd)

            with_retry(op, on_retry=self._count_retry)
            flushed = flush_to
        finally:
            with self._mutex:
                if flushed is not None and flushed > self._synced_size:
                    self._synced_size = flushed
                self._gc_flushing = False
                self._gc_cond.notify_all()
        # Crash here: the batch is durable; recovery replays every commit.
        self.injector.fire("wal.group_force.after")
        if self._stats is not None:
            self._stats.log_forces += 1
            self._stats.group_commits += 1
        if obs.ENABLED:
            obs.emit("wal.group_force", synced_bytes=flushed)

    # -- reading -----------------------------------------------------------------

    def replay(self) -> Iterator[LogRecord]:
        """Yield every complete record from the start of the log.

        Stops silently at a torn or corrupt *tail* — exactly the state a
        crash mid-append leaves behind.  If valid frames are still
        decodable *after* the bad one, the damage is interior (committed
        history was corrupted, not torn off): raises
        :class:`~repro.errors.WALError` whose ``salvage`` attribute maps
        out what survives on either side of the damage.
        """
        with open(self.path, "rb") as fh:
            buf = fh.read()
        offset = 0
        yielded = 0
        while True:
            if len(buf) - offset < _FRAME.size:
                return
            payload_len, crc = _FRAME.unpack_from(buf, offset)
            payload = buf[offset + _FRAME.size : offset + _FRAME.size + payload_len]
            if len(payload) < payload_len or zlib.crc32(payload) != crc:
                self._check_interior_corruption(buf, offset, yielded)
                return
            yield LogRecord.decode(payload)
            yielded += 1
            offset += _FRAME.size + payload_len

    @staticmethod
    def _check_interior_corruption(
        buf: bytes, bad_offset: int, records_before: int
    ) -> None:
        """Raise if any valid frame exists after the bad one at *bad_offset*."""
        resync = None
        for pos in range(bad_offset + 1, len(buf) - _FRAME.size + 1):
            payload_len, crc = _FRAME.unpack_from(buf, pos)
            if not 0 < payload_len <= _MAX_SANE_PAYLOAD:
                continue
            payload = buf[pos + _FRAME.size : pos + _FRAME.size + payload_len]
            if len(payload) == payload_len and zlib.crc32(payload) == crc:
                resync = pos
                break
        if resync is None:
            return  # nothing valid follows: an ordinary torn tail
        # Count what survives from the re-sync point.
        records_after = 0
        pos = resync
        while len(buf) - pos >= _FRAME.size:
            payload_len, crc = _FRAME.unpack_from(buf, pos)
            payload = buf[pos + _FRAME.size : pos + _FRAME.size + payload_len]
            if len(payload) < payload_len or zlib.crc32(payload) != crc:
                break
            records_after += 1
            pos += _FRAME.size + payload_len
        error = WALError(
            f"interior log corruption at byte {bad_offset}: "
            f"{records_before} record(s) decode before the damage and "
            f"{records_after} more from byte {resync} — refusing to "
            "silently drop committed history; salvage the tail manually"
        )
        error.salvage = {
            "records_before": records_before,
            "corrupt_offset": bad_offset,
            "resync_offset": resync,
            "records_after": records_after,
        }
        raise error

    # -- truncation (post-checkpoint) ----------------------------------------------

    def truncate(self) -> None:
        """Discard the log contents (called after a checkpoint)."""
        self.injector.fire("wal.truncate")

        def op():
            os.ftruncate(self._fd, 0)
            os.fsync(self._fd)

        with self._mutex:
            with_retry(op, on_retry=self._count_retry)
            self._size = 0
            self._synced_size = 0
            self._next_lsn = 1

    def size_bytes(self) -> int:
        return os.fstat(self._fd).st_size

    def synced_bytes(self) -> int:
        """Bytes of log guaranteed durable (fsynced)."""
        return self._synced_size

    def crash(self) -> None:
        """Die like a real process: drop everything after the last fsync.

        No failpoints fire and no final fsync happens — the unforced log
        tail is truncated away, exactly what the OS page cache loses at
        power-off.  (``ftruncate`` here *simulates* the loss; a real crash
        needs no syscall to lose unforced data.)
        """
        if not self._closed:
            os.ftruncate(self._fd, self._synced_size)
            os.close(self._fd)
            self._closed = True

    def close(self) -> None:
        if not self._closed:
            os.fsync(self._fd)
            self._synced_size = self._size
            os.close(self._fd)
            self._closed = True
