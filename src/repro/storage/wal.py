"""Write-ahead log with record-level value logging.

Each mutation appends a :class:`LogRecord` carrying before/after images of
the affected record, which makes redo and undo idempotent at the record
level (see :mod:`repro.storage.recovery`).  Commit appends a COMMIT record
and forces the log; data pages are written lazily (STEAL/NO-FORCE).

On-disk format per record::

    <u32 payload_len> <u32 crc32(payload)> <payload>

where payload is ``<u64 lsn> <u64 txid> <u8 kind> <i64 rid>
<u32 before_len> before <u32 after_len> after``.  A torn tail (partial last
record or CRC mismatch) is treated as the end of the log, as a real WAL
would after a crash mid-write.
"""

from __future__ import annotations

import dataclasses
import enum
import os
import struct
import zlib
from collections.abc import Iterator

from repro.errors import WALError

_FRAME = struct.Struct("<II")  # payload_len, crc
_PAYLOAD_HEAD = struct.Struct("<QQBq")  # lsn, txid, kind, rid
_LEN = struct.Struct("<I")


class LogRecordKind(enum.IntEnum):
    """The kinds of log record the engines emit."""

    BEGIN = 1
    INSERT = 2
    UPDATE = 3
    DELETE = 4
    COMMIT = 5
    ABORT = 6
    CHECKPOINT = 7
    SET_ROOT = 8


@dataclasses.dataclass(frozen=True)
class LogRecord:
    """One entry in the write-ahead log."""

    lsn: int
    txid: int
    kind: LogRecordKind
    rid: int = -1
    before: bytes = b""
    after: bytes = b""

    def encode(self) -> bytes:
        payload = (
            _PAYLOAD_HEAD.pack(self.lsn, self.txid, int(self.kind), self.rid)
            + _LEN.pack(len(self.before))
            + self.before
            + _LEN.pack(len(self.after))
            + self.after
        )
        return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload

    def inverse(self) -> "LogRecord":
        """The compensation record that undoes this mutation.

        Logged (and applied) by the engines' abort paths so that crash
        recovery can replay aborted transactions with plain redo.
        """
        kind_map = {
            LogRecordKind.INSERT: LogRecordKind.DELETE,
            LogRecordKind.DELETE: LogRecordKind.INSERT,
            LogRecordKind.UPDATE: LogRecordKind.UPDATE,
            LogRecordKind.SET_ROOT: LogRecordKind.SET_ROOT,
        }
        if self.kind not in kind_map:
            raise WALError(f"{self.kind.name} records have no inverse")
        return LogRecord(
            0, self.txid, kind_map[self.kind], self.rid, self.after, self.before
        )

    @classmethod
    def decode(cls, payload: bytes) -> "LogRecord":
        lsn, txid, kind, rid = _PAYLOAD_HEAD.unpack_from(payload, 0)
        pos = _PAYLOAD_HEAD.size
        (blen,) = _LEN.unpack_from(payload, pos)
        pos += _LEN.size
        before = payload[pos : pos + blen]
        pos += blen
        (alen,) = _LEN.unpack_from(payload, pos)
        pos += _LEN.size
        after = payload[pos : pos + alen]
        return cls(lsn, txid, LogRecordKind(kind), rid, bytes(before), bytes(after))


class WriteAheadLog:
    """Append-only log file with CRC framing and explicit force points."""

    def __init__(self, path: str, stats=None):
        self.path = str(path)
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        self._stats = stats
        self._next_lsn = self._scan_next_lsn()
        self._closed = False

    def _scan_next_lsn(self) -> int:
        last = 0
        for record in self.replay():
            last = record.lsn
        return last + 1

    # -- appending -------------------------------------------------------------

    def append(
        self,
        txid: int,
        kind: LogRecordKind,
        rid: int = -1,
        before: bytes = b"",
        after: bytes = b"",
    ) -> LogRecord:
        """Append a record, returning it (with its assigned LSN)."""
        if self._closed:
            raise WALError("log is closed")
        record = LogRecord(self._next_lsn, txid, kind, rid, bytes(before), bytes(after))
        self._next_lsn += 1
        os.write(self._fd, record.encode())
        if self._stats is not None:
            self._stats.log_records += 1
        return record

    def force(self) -> None:
        """fsync the log — the durability point for commits."""
        os.fsync(self._fd)
        if self._stats is not None:
            self._stats.log_forces += 1

    # -- reading -----------------------------------------------------------------

    def replay(self) -> Iterator[LogRecord]:
        """Yield every complete record from the start of the log.

        Stops silently at a torn or corrupt tail — exactly the state a crash
        mid-append leaves behind.
        """
        with open(self.path, "rb") as fh:
            while True:
                frame = fh.read(_FRAME.size)
                if len(frame) < _FRAME.size:
                    return
                payload_len, crc = _FRAME.unpack(frame)
                payload = fh.read(payload_len)
                if len(payload) < payload_len or zlib.crc32(payload) != crc:
                    return
                yield LogRecord.decode(payload)

    # -- truncation (post-checkpoint) ----------------------------------------------

    def truncate(self) -> None:
        """Discard the log contents (called after a checkpoint)."""
        os.ftruncate(self._fd, 0)
        os.fsync(self._fd)
        self._next_lsn = 1

    def size_bytes(self) -> int:
        return os.fstat(self._fd).st_size

    def close(self) -> None:
        if not self._closed:
            os.fsync(self._fd)
            os.close(self._fd)
            self._closed = True
