"""Inspection utilities: dump a database's objects, triggers, and machines.

``python -m repro.tools <path> [--engine disk|mm]`` prints a human-readable
summary of a database: every persistent object with its fields and control
flags, every active trigger with its FSM position, the catalog, and any
static-analyzer findings.  ``python -m repro.tools lint ...`` forwards to
the trigger linter (see :mod:`repro.analysis`); ``python -m repro.tools
fsck <path>`` runs the storage integrity checker (see :mod:`repro.fsck`)
and exits non-zero when anything at warning severity or above is found;
``python -m repro.tools trace {record,show,summary}`` records a traced
credit-card workload run and pretty-prints the resulting JSONL (see
:mod:`repro.obs`).

The functions are also importable for programmatic use (the test suite
uses them as a read-only consistency probe).
"""

from __future__ import annotations

import argparse
from typing import TYPE_CHECKING

from repro.core.trigger_state import TriggerState
from repro.objects.serialize import FLAG_HAS_TRIGGERS, decode_object

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database


def describe_objects(db: "Database") -> list[str]:
    """One line per persistent object (skips internal records)."""
    txn = db.txn_manager.current()
    lines = []
    for rid, raw in db.storage.scan(txn.txid):
        try:
            type_name, fields, flags = decode_object(raw)
        except Exception:
            continue  # catalog/index/state records are not object records
        if not isinstance(fields, dict):
            continue
        tag = " [triggers]" if flags & FLAG_HAS_TRIGGERS else ""
        body = ", ".join(f"{k}={v!r}" for k, v in sorted(fields.items()))
        lines.append(f"rid {rid}: {type_name}({body}){tag}")
    return lines


def describe_triggers(db: "Database") -> list[str]:
    """One line per active trigger, resolved through its metatype."""
    txn = db.txn_manager.current()
    lines = []
    index = db.trigger_system.index
    for key, state_rids in sorted(index.entries(txn)):
        for state_rid in state_rids:
            raw = db.storage.read(txn.txid, state_rid)
            tstate = TriggerState.decode(raw)
            try:
                info = db.registry.find(tstate.trigobjtype).trigger_info(
                    tstate.triggernum
                )
                name = info.name
                detail = (
                    f"state {tstate.statenum}/{len(info.fsm) - 1}, "
                    f"{info.coupling.value}"
                    f"{', perpetual' if info.perpetual else ''}"
                )
            except Exception:
                name = f"<unresolved {tstate.trigobjtype}#{tstate.triggernum}>"
                detail = f"state {tstate.statenum}"
            params = f" params={tstate.params}" if tstate.params else ""
            lines.append(
                f"object {key}: {name} ({detail}){params} -> TriggerId rid {state_rid}"
            )
    return lines


def describe_catalog(db: "Database") -> list[str]:
    txn = db.txn_manager.current()
    catalog = db._read_catalog(txn)
    return [f"{key} -> rid {rid}" for key, rid in sorted(catalog.items())]


def describe_analysis(db: "Database") -> list[str]:
    """Static-analyzer findings: registered classes + persistent states.

    Runs the declaration-level passes (including the ODE3xx concurrency
    pass, predictions unconfirmed — a dump should not spin up witness
    databases — and the ODE4xx compilability pass gating the generated
    posting tier) over every registered active class and the database
    pass (dead/trap trigger states) over *db*; one line per finding,
    ``["ok"]`` when clean.
    """
    from repro.analysis import analyze_database, analyze_registry

    report = analyze_registry(db.registry, concurrency=True, compilability=True)
    report.extend(analyze_database(db).diagnostics)
    return [diag.render() for diag in report.diagnostics] or ["ok"]


def describe_stats(db: "Database") -> list[str]:
    """Current metrics-registry snapshot, one ``name = value`` line each."""
    from repro.obs.metrics import describe

    metrics = getattr(db, "metrics", None)
    if metrics is None:
        return ["(no metrics registry)"]
    return describe(metrics.snapshot())


def dump_database(db: "Database") -> str:
    """A full textual dump of *db* (runs in its own transaction if needed)."""
    manager = db.txn_manager
    own = manager.current_or_none() is None
    if own:
        txn = manager.begin(system=True)
    try:
        sections = [
            (f"database {db.name!r} ({db.engine})", []),
            ("catalog", describe_catalog(db)),
            ("objects", describe_objects(db)),
            ("active triggers", describe_triggers(db)),
            ("integrity", db.trigger_system.verify_integrity() or ["ok"]),
            ("analysis", describe_analysis(db)),
            ("stats", describe_stats(db)),
        ]
        parts = []
        for title, lines in sections:
            parts.append(f"--- {title} ---")
            parts.extend(lines or ["(none)"] if title != f"database {db.name!r} ({db.engine})" else [])
        return "\n".join(parts)
    finally:
        if own:
            manager.commit(txn)


def trace_main(argv: list[str]) -> int:
    """``python -m repro.tools trace {record,show,summary} ...``.

    ``record`` runs the credit-card workload (paper Section 4) against a
    scratch database with tracing enabled and exports the ring buffer as
    JSONL; ``show`` pretty-prints a JSONL trace with span nesting and
    firing order; ``summary`` prints per-kind record counts.
    """
    parser = argparse.ArgumentParser(
        prog="repro.tools trace", description="Record or inspect an obs trace"
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    rec = sub.add_parser("record", help="run the credit-card workload traced")
    rec.add_argument("out", help="output JSONL path")
    rec.add_argument("--db", default=None, help="database path (default: temp)")
    rec.add_argument("--engine", choices=["disk", "mm"], default="mm")
    rec.add_argument("--cards", type=int, default=4)
    rec.add_argument("--ops", type=int, default=40)
    rec.add_argument("--seed", type=int, default=1996)
    rec.add_argument("--capacity", type=int, default=65536)

    show = sub.add_parser("show", help="pretty-print a JSONL trace")
    show.add_argument("path", help="trace JSONL path")

    summ = sub.add_parser("summary", help="per-kind record counts")
    summ.add_argument("path", help="trace JSONL path")

    args = parser.parse_args(argv)

    if args.cmd == "record":
        import tempfile

        from repro import obs
        from repro.objects.database import Database
        from repro.workloads.credit_card import CreditCardWorkload

        path = args.db
        tmp = None
        if path is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-trace-")
            path = f"{tmp.name}/trace-db"
        try:
            db = Database.open(path, engine=args.engine)
            try:
                workload = CreditCardWorkload(seed=args.seed)
                ptrs = workload.setup(
                    db, args.cards, activate_deny=True, activate_raise=True
                )
                obs.enable(capacity=args.capacity)
                result = workload.run(db, ptrs, args.ops)
                recorder = obs.disable()
                recorder.export(args.out)
                delta = db.metrics.snapshot()
                print(
                    f"recorded {len(recorder.records())} record(s) "
                    f"({recorder.stats.records_dropped} dropped) -> {args.out}"
                )
                print(
                    f"workload: {result.operations} ops, {result.buys} buys, "
                    f"{result.payments} payments, {result.denied} denied"
                )
                print(
                    f"posting: {delta.get('posting.events_posted', 0)} events, "
                    f"{delta.get('posting.firings', 0)} firings, "
                    f"{delta.get('posting.masks_evaluated_posting', 0)} masks"
                )
            finally:
                db.close()
        finally:
            if tmp is not None:
                tmp.cleanup()
        return 0

    from repro.obs.trace import load_jsonl, render_trace, summarize_trace

    records = load_jsonl(args.path)
    if args.cmd == "show":
        print("\n".join(render_trace(records)))
    else:
        counts = summarize_trace(records)
        width = max((len(k) for k in counts), default=0)
        for kind in sorted(counts):
            print(f"{kind:<{width}}  {counts[kind]}")
        print(f"{'total':<{width}}  {len(records)}")
    return 0


def chaos_main(argv: list[str]) -> int:
    """``python -m repro.tools chaos [--engine ...] [--limit N] [--out report.json]``.

    Runs the concurrent crash matrix (cooperative mode: record the
    failpoint trace at N sessions, then crash-recover-verify at the
    selected hits) and writes a JSON survival report.  Exits non-zero if
    any crash fails to recover cleanly — the CI chaos job runs the capped
    subset and archives the report.
    """
    import tempfile

    from repro.faults.concurrent import explore_concurrent, write_survival_report

    parser = argparse.ArgumentParser(
        prog="repro.tools chaos",
        description="Concurrent crash matrix with a JSON survival report",
    )
    parser.add_argument(
        "--engine",
        choices=["disk", "mm", "both"],
        default="both",
        help="storage engine(s) to explore (default: both)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        help="cap on crash points per engine (default: the whole trace)",
    )
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--txns", type=int, default=3)
    parser.add_argument("--out", default=None, help="survival report JSON path")
    parser.add_argument("--workdir", default=None, help="scratch dir (default: temp)")
    args = parser.parse_args(argv)

    engines = ["disk", "mm"] if args.engine == "both" else [args.engine]
    tmp = None
    workdir = args.workdir
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        workdir = tmp.name
    try:
        results = []
        for engine in engines:
            result = explore_concurrent(
                f"{workdir}/chaos-{engine}",
                engine=engine,
                limit=args.limit,
                n_sessions=args.sessions,
                txns_per_session=args.txns,
            )
            results.append(result)
            print(
                f"{engine}: {len(result.explored)} crash(es) explored over "
                f"{len(result.points_explored)} failpoint(s) "
                f"({len(result.trace)} hits traced), all recovered"
            )
        union = sorted(set().union(*(r.points_explored for r in results)))
        print(f"failpoints covered: {len(union)}: {', '.join(union)}")
        if args.out:
            write_survival_report(results, args.out)
            print(f"survival report -> {args.out}")
        return 0
    finally:
        if tmp is not None:
            tmp.cleanup()


def fsck_main(argv: list[str]) -> int:
    """``python -m repro.tools fsck <path> [--engine disk|mm] [--json]``."""
    from repro.fsck import fsck

    parser = argparse.ArgumentParser(
        prog="repro.tools fsck", description="Check an Ode-repro database"
    )
    parser.add_argument("path", help="database path")
    parser.add_argument("--engine", choices=["disk", "mm"], default="disk")
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    parser.add_argument(
        "--import",
        dest="imports",
        action="append",
        default=[],
        metavar="MODULE",
        help="import MODULE first so its persistent classes register "
        "(repeatable); without it, unknown trigger types are only "
        "reported as skipped checks",
    )
    args = parser.parse_args(argv)
    import importlib

    for module in args.imports:
        importlib.import_module(module)
    report = fsck(args.path, engine=args.engine)
    print(report.render_json() if args.json else report.render_text())
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    import sys

    from repro.objects.database import Database

    if argv is None:
        argv = sys.argv[1:]
    # `python -m repro.tools lint ...` is the static analyzer's CLI; the
    # positional-path form keeps its historical dump behaviour.
    if argv and argv[0] == "lint":
        from repro.analysis.__main__ import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "fsck":
        return fsck_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])

    parser = argparse.ArgumentParser(description="Dump an Ode-repro database")
    parser.add_argument("path", help="database path")
    parser.add_argument("--engine", choices=["disk", "mm"], default="disk")
    args = parser.parse_args(argv)
    db = Database.open(args.path, engine=args.engine)
    try:
        print(dump_database(db))
    finally:
        db.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # e.g. `trace show ... | head`
        raise SystemExit(0)
