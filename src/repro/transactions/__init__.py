"""Transactions for the Ode reproduction.

O++ programs manipulate persistent objects inside transaction blocks; the
trigger system hangs coupling-mode processing off the commit and abort
paths (paper Section 5.5).  This package supplies:

* :class:`~repro.transactions.txn.Transaction` — one (top-level or system)
  transaction with hook points the trigger manager populates,
* :class:`~repro.transactions.manager.TransactionManager` — begin/commit/
  abort orchestration, ``tabort`` handling, and system transactions,
* :class:`~repro.transactions.dependencies.CommitDependencyGraph` — commit
  dependencies for the *dependent* coupling mode,
* :class:`~repro.transactions.phoenix.PhoenixQueue` — persistent intention
  log giving the restart-until-done "phoenix transactions" the paper says
  reasonable ``after tcommit`` semantics require (Section 6).
"""

from repro.transactions.dependencies import CommitDependencyGraph
from repro.transactions.manager import TransactionManager
from repro.transactions.phoenix import PhoenixQueue
from repro.transactions.txn import Transaction, TxnState

__all__ = [
    "CommitDependencyGraph",
    "PhoenixQueue",
    "Transaction",
    "TransactionManager",
    "TxnState",
]
