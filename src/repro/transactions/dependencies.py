"""Commit dependencies.

The *dependent* coupling mode runs a trigger's action "in a separate
transaction from the one that detected the event [which] can commit only if
the event detecting transaction does" (paper Section 4.2).  The graph here
records those edges; the transaction manager consults it at commit time and
refuses to commit a child whose parent did not commit.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import CommitDependencyError
from repro.transactions.txn import TxnState


class CommitDependencyGraph:
    """child txid -> parent txids it may only commit after."""

    def __init__(self) -> None:
        self._parents: dict[int, set[int]] = defaultdict(set)

    def add(self, child: int, parent: int) -> None:
        """Record that *child* can commit only if *parent* committed."""
        if child == parent:
            raise CommitDependencyError(f"transaction {child} cannot depend on itself")
        self._parents[child].add(parent)

    def parents_of(self, child: int) -> frozenset[int]:
        return frozenset(self._parents.get(child, set()))

    def check_commit_allowed(self, child: int, outcomes: dict[int, TxnState]) -> None:
        """Raise :class:`CommitDependencyError` unless every parent committed.

        A parent with no recorded outcome is treated as not-committed: the
        dependency is on a completed commit, not an in-flight transaction.
        """
        for parent in self._parents.get(child, set()):
            outcome = outcomes.get(parent)
            if outcome is not TxnState.COMMITTED:
                raise CommitDependencyError(
                    f"transaction {child} depends on {parent}, whose outcome is "
                    f"{outcome.value if outcome else 'unknown'}"
                )

    def forget(self, txid: int) -> None:
        """Drop *txid*'s dependency edges (after its outcome is final)."""
        self._parents.pop(txid, None)
