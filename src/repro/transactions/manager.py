"""Begin/commit/abort orchestration.

One top-level transaction is active per database at a time (Ode programs
execute transaction blocks serially within an application); *system*
transactions — those "not explicitly requested by the user, but required
for trigger processing" (paper Section 5.5) — run between user transactions
to execute dependent/!dependent trigger actions and phoenix intentions.

The commit path is ordered exactly as the paper describes: deferred (*end*)
actions and ``before tcomplete`` events run first (still inside the
transaction, able to ``tabort`` it), then dirty objects are written back,
the storage manager makes the transaction durable, and only then do the
detached-mode hooks spawn their system transactions.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable

from repro import obs
from repro.errors import (
    DatabaseClosedError,
    NestedTransactionError,
    NoActiveTransactionError,
    TransactionAbort,
    TransactionError,
)
from repro.transactions.dependencies import CommitDependencyGraph
from repro.transactions.txn import Transaction, TxnState

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database


class TransactionManager:
    """Drives transactions for one :class:`~repro.objects.database.Database`."""

    def __init__(self, db: "Database"):
        self.db = db
        self._next_txid = 1
        self._current: Transaction | None = None
        self.outcomes: dict[int, TxnState] = {}
        self.dependencies = CommitDependencyGraph()
        self._begin_listeners: list[Callable[[Transaction], None]] = []

    # -- listeners ------------------------------------------------------------

    def on_begin(self, listener: Callable[[Transaction], None]) -> None:
        """Register a callback invoked for every new transaction.

        The trigger manager uses this to install its coupling-mode hooks.
        """
        self._begin_listeners.append(listener)

    # -- lifecycle --------------------------------------------------------------

    def begin(self, *, system: bool = False) -> Transaction:
        if self.db.closed:
            raise DatabaseClosedError(f"database {self.db.name!r} is closed")
        if self._current is not None and self._current.is_active:
            raise NestedTransactionError(
                f"transaction {self._current.txid} is still active; Ode does "
                "not support nested transactions (paper Section 5.4.5)"
            )
        txn = Transaction(self._next_txid, self.db, system=system)
        self._next_txid += 1
        self.db.storage.begin_transaction(txn.txid)
        self._current = txn
        if obs.ENABLED:
            obs.emit("txn.begin", txid=txn.txid, system=system)
            # Per-transaction metrics delta: snapshot the registry now so
            # obs.transaction_delta(txn) can report what this txn cost.
            metrics = getattr(self.db, "metrics", None)
            if metrics is not None:
                txn.attachments[obs.TXN_METRICS_KEY] = metrics.snapshot()
        for listener in self._begin_listeners:
            listener(txn)
        return txn

    def current(self) -> Transaction:
        # COMMITTING counts as current: before-commit hooks (deferred
        # trigger actions, `before tcomplete` posting) still run inside
        # the transaction and perform data operations.
        if self._current is None or self._current.state not in (
            TxnState.ACTIVE,
            TxnState.COMMITTING,
        ):
            raise NoActiveTransactionError(
                "no active transaction; use `with db.transaction():`"
            )
        return self._current

    def current_or_none(self) -> Transaction | None:
        try:
            return self.current()
        except NoActiveTransactionError:
            return None

    # -- commit ------------------------------------------------------------------

    def commit(self, txn: Transaction) -> TxnState:
        """Attempt to commit; returns the final state.

        A :class:`TransactionAbort` raised by a before-commit hook (an *end*
        trigger action or a ``before tcomplete`` trigger) turns the commit
        into an abort, as `tabort` semantics require.
        """
        self._require_current(txn)
        txn.state = TxnState.COMMITTING
        try:
            for hook in list(txn.before_commit):
                hook(txn)
        except TransactionAbort:
            txn.state = TxnState.ACTIVE
            self.abort(txn, explicit=True)
            return txn.state
        try:
            self.dependencies.check_commit_allowed(txn.txid, self.outcomes)
            self.db.flush_transaction(txn)
            self.db.storage.commit_transaction(txn.txid)
        except BaseException:
            txn.state = TxnState.ACTIVE
            self.abort(txn, explicit=False)
            raise
        txn.state = TxnState.COMMITTED
        self._finish(txn)
        if obs.ENABLED:
            obs.emit("txn.commit", txid=txn.txid, system=txn.system)
        for hook in list(txn.after_commit):
            hook(txn)
        return txn.state

    # -- abort --------------------------------------------------------------------

    def abort(self, txn: Transaction, *, explicit: bool = True) -> TxnState:
        """Roll *txn* back.  *explicit* aborts post ``before tabort`` events
        (via the before-abort hooks); implicit ones — crashes — cannot
        (paper Section 6)."""
        self._require_current(txn)
        if explicit:
            for hook in list(txn.before_abort):
                try:
                    hook(txn)
                except TransactionAbort:
                    pass  # already aborting
        self.db.storage.abort_transaction(txn.txid)
        txn.cache.clear()
        txn.dirty.clear()
        txn.state = TxnState.ABORTED
        self._finish(txn)
        if obs.ENABLED:
            obs.emit("txn.abort", txid=txn.txid, explicit=explicit, system=txn.system)
        for hook in list(txn.after_abort):
            hook(txn)
        return txn.state

    def _finish(self, txn: Transaction) -> None:
        self.outcomes[txn.txid] = txn.state
        self.dependencies.forget(txn.txid)
        if self._current is txn:
            self._current = None

    def _require_current(self, txn: Transaction) -> None:
        if self._current is not txn:
            raise TransactionError(f"{txn!r} is not the current transaction")

    # -- conveniences -----------------------------------------------------------------

    @contextmanager
    def transaction(self, *, system: bool = False):
        """``with`` block with O++ transaction-block semantics.

        ``tabort`` (a :class:`TransactionAbort` escaping the block) aborts
        and is swallowed — execution continues after the block, as in O++.
        Any other exception aborts and propagates.
        """
        txn = self.begin(system=system)
        try:
            yield txn
        except TransactionAbort:
            if txn.is_active:
                self.abort(txn, explicit=True)
        except BaseException:
            if txn.is_active:
                self.abort(txn, explicit=False)
            raise
        else:
            if txn.is_active:
                self.commit(txn)

    def run_system_transaction(
        self,
        body: Callable[[Transaction], None],
        *,
        depends_on: int | None = None,
    ) -> Transaction:
        """Run *body* in a fresh system transaction and commit it.

        With *depends_on*, the system transaction carries a commit
        dependency on that transaction (the *dependent* coupling mode);
        commit raises :class:`~repro.errors.CommitDependencyError` if the
        parent did not commit, and the action is rolled back.
        """
        txn = self.begin(system=True)
        if depends_on is not None:
            self.dependencies.add(txn.txid, depends_on)
        try:
            body(txn)
        except TransactionAbort:
            self.abort(txn, explicit=True)
            return txn
        except BaseException:
            if txn.is_active:
                self.abort(txn, explicit=False)
            raise
        self.commit(txn)  # aborts internally (and raises) on dependency failure
        return txn
