"""Begin/commit/abort orchestration across concurrent sessions.

Each :class:`~repro.sessions.session.Session` runs one transaction at a
time (Ode programs execute transaction blocks serially *within* an
application), but the manager now keeps a **table of active transactions**
— one per session — instead of a single current one.  Conflicts between
them are mediated by the storage engine's lock manager: an incompatible
request blocks the session (cooperative yield or condition-variable wait)
until commit/abort of the holder releases its locks and grants waiters in
FIFO order.

``current()`` resolves through the *ambient session* (a thread-local set
by session entry points), so every existing call site —
``db.txn_manager.current()`` in posting, storage, handles — became
session-aware without signature changes.  The serial API uses the
database's default session and behaves exactly as before.

*System* transactions — those "not explicitly requested by the user, but
required for trigger processing" (paper Section 5.5) — used to run "between
user transactions"; with concurrent sessions they are **scheduled onto a
shared queue** (:meth:`TransactionManager.schedule_system`) that is drained
after every commit/abort by whichever session finished, each entry in its
own fresh system transaction.

The commit path is ordered exactly as the paper describes: deferred (*end*)
actions and ``before tcomplete`` events run first (still inside the
transaction, able to ``tabort`` it), then dirty objects are written back,
the storage manager makes the transaction durable, and only then do the
detached-mode hooks schedule their system transactions.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable

from repro import obs
from repro.errors import (
    CommitDependencyError,
    DatabaseClosedError,
    NestedTransactionError,
    TransactionAbort,
    TransactionError,
)
from repro.transactions.dependencies import CommitDependencyGraph
from repro.transactions.txn import Transaction, TxnState

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database
    from repro.sessions.session import Session


class TransactionManager:
    """Drives transactions for one :class:`~repro.objects.database.Database`."""

    def __init__(self, db: "Database"):
        self.db = db
        self._next_txid = 1
        self._txid_lock = threading.Lock()
        #: txid -> transaction, for every ACTIVE/COMMITTING transaction.
        self._active: dict[int, Transaction] = {}
        self.outcomes: dict[int, TxnState] = {}
        self.dependencies = CommitDependencyGraph()
        self._begin_listeners: list[Callable[[Transaction], None]] = []
        # Detached trigger actions wait here until some session is between
        # transactions; (body, depends_on) pairs, drained FIFO.
        self._system_queue: deque = deque()
        self._draining = threading.local()

    # -- listeners ------------------------------------------------------------

    def on_begin(self, listener: Callable[[Transaction], None]) -> None:
        """Register a callback invoked for every new transaction.

        The trigger manager uses this to install its coupling-mode hooks.
        """
        self._begin_listeners.append(listener)

    # -- session resolution ----------------------------------------------------

    def _resolve_session(self, session: "Session | None") -> "Session":
        return session if session is not None else self.db.current_session()

    def active_transactions(self) -> list[Transaction]:
        """The transactions currently in flight, across all sessions."""
        return list(self._active.values())

    # -- lifecycle --------------------------------------------------------------

    def begin(
        self, *, system: bool = False, session: "Session | None" = None
    ) -> Transaction:
        if self.db.closed:
            raise DatabaseClosedError(f"database {self.db.name!r} is closed")
        sess = self._resolve_session(session)
        held = sess.current_txn
        if held is not None and held.state in (TxnState.ACTIVE, TxnState.COMMITTING):
            raise NestedTransactionError(
                f"transaction {held.txid} is still active in session "
                f"{sess.name!r}; Ode does not support nested transactions "
                "(paper Section 5.4.5)"
            )
        with self._txid_lock:
            txid = self._next_txid
            self._next_txid += 1
        txn = Transaction(txid, self.db, system=system, session=sess)
        self.db.storage.begin_transaction(txn.txid)
        self._active[txn.txid] = txn
        sess.current_txn = txn
        if obs.ENABLED:
            obs.emit("txn.begin", txid=txn.txid, system=system, session=sess.name)
            # Per-transaction metrics delta: snapshot the registry now so
            # obs.transaction_delta(txn) can report what this txn cost.
            metrics = getattr(self.db, "metrics", None)
            if metrics is not None:
                txn.attachments[obs.TXN_METRICS_KEY] = metrics.snapshot()
        for listener in self._begin_listeners:
            listener(txn)
        return txn

    def current(self) -> Transaction:
        """The calling session's active (or committing) transaction."""
        return self.db.current_session().current_txn_or_raise()

    def current_or_none(self) -> Transaction | None:
        from repro.errors import NoActiveTransactionError

        try:
            return self.current()
        except NoActiveTransactionError:
            return None

    # -- commit ------------------------------------------------------------------

    def commit(self, txn: Transaction) -> TxnState:
        """Attempt to commit; returns the final state.

        A :class:`TransactionAbort` raised by a before-commit hook (an *end*
        trigger action or a ``before tcomplete`` trigger) turns the commit
        into an abort, as `tabort` semantics require.

        Committing releases the transaction's locks, which grants queued
        requests FIFO and wakes the blocked sessions holding them.
        """
        self._require_current(txn)
        txn.state = TxnState.COMMITTING
        try:
            for hook in list(txn.before_commit):
                hook(txn)
        except TransactionAbort:
            txn.state = TxnState.ACTIVE
            self.abort(txn, explicit=True)
            return txn.state
        trigger_system = getattr(self.db, "trigger_system", None)
        versions = getattr(trigger_system, "versions", None)
        try:
            self.dependencies.check_commit_allowed(txn.txid, self.outcomes)
            self.db.flush_transaction(txn)
            if versions is not None and versions.pending(txn):
                # MVCC commit-time merge (DESIGN.md §15): validate and
                # write the buffered TriggerState advances, make the
                # transaction durable, then publish the new version heads
                # — all under the commit-mutex shards covering the
                # buffer's rids, so no concurrent committer can validate
                # against a head that is about to move (committers with
                # disjoint footprints proceed in parallel).
                with versions.commit_lock(txn):
                    try:
                        publishes = versions.commit_merge(txn)
                        self.db.storage.commit_transaction(txn.txid)
                    except BaseException:
                        # A failed merge (TriggerStateConflictError under
                        # conflict_policy="abort", or a storage error)
                        # must roll back *before* the mutex is released:
                        # merged writes are taken without record locks,
                        # so a concurrent committer's write_merged could
                        # otherwise slip between them and their WAL undo
                        # — capturing this transaction's uncommitted
                        # bytes as its before-image, then losing its own
                        # committed merge to our rollback.  The
                        # system-queue drain is deferred out of the
                        # critical section: a drained body may wait on
                        # record locks whose holders want this mutex.
                        txn.state = TxnState.ACTIVE
                        self.abort(txn, explicit=False, drain=False)
                        raise
                    versions.publish(txn, publishes)
            else:
                self.db.storage.commit_transaction(txn.txid)
        except BaseException:
            if txn.state is TxnState.COMMITTING:
                txn.state = TxnState.ACTIVE
                self.abort(txn, explicit=False)
            else:
                # Already rolled back under the commit mutex above; run
                # the deferred system-queue drain now the mutex is free.
                self.drain_system_queue(txn.session)
            raise
        txn.state = TxnState.COMMITTED
        self._finish(txn)
        if obs.ENABLED:
            obs.emit(
                "txn.commit",
                txid=txn.txid,
                system=txn.system,
                session=txn.session_name,
            )
        for hook in list(txn.after_commit):
            hook(txn)
        self.drain_system_queue(txn.session)
        return txn.state

    # -- abort --------------------------------------------------------------------

    def abort(
        self, txn: Transaction, *, explicit: bool = True, drain: bool = True
    ) -> TxnState:
        """Roll *txn* back.  *explicit* aborts post ``before tabort`` events
        (via the before-abort hooks); implicit ones — crashes — cannot
        (paper Section 6).  ``drain=False`` skips the system-queue drain
        (after-abort hooks still *schedule*); the MVCC commit path uses it
        to keep system transactions out of the commit-mutex critical
        section, draining once the mutex is released."""
        self._require_current(txn)
        if explicit:
            for hook in list(txn.before_abort):
                try:
                    hook(txn)
                except TransactionAbort:
                    pass  # already aborting
        self.db.storage.abort_transaction(txn.txid)
        txn.cache.clear()
        txn.dirty.clear()
        txn.state = TxnState.ABORTED
        self._finish(txn)
        if obs.ENABLED:
            obs.emit(
                "txn.abort",
                txid=txn.txid,
                explicit=explicit,
                system=txn.system,
                session=txn.session_name,
            )
        for hook in list(txn.after_abort):
            hook(txn)
        if drain:
            self.drain_system_queue(txn.session)
        return txn.state

    def _finish(self, txn: Transaction) -> None:
        self.outcomes[txn.txid] = txn.state
        self.dependencies.forget(txn.txid)
        self._active.pop(txn.txid, None)
        sess = txn.session
        if sess is not None and sess.current_txn is txn:
            sess.current_txn = None

    def _require_current(self, txn: Transaction) -> None:
        if self._active.get(txn.txid) is not txn:
            raise TransactionError(f"{txn!r} is not an active transaction")
        sess = txn.session
        if sess is not None and sess.current_txn is not txn:
            raise TransactionError(
                f"{txn!r} is not session {sess.name!r}'s current transaction"
            )

    # -- conveniences -----------------------------------------------------------------

    @contextmanager
    def transaction(
        self, *, system: bool = False, session: "Session | None" = None
    ):
        """``with`` block with O++ transaction-block semantics.

        ``tabort`` (a :class:`TransactionAbort` escaping the block) aborts
        and is swallowed — execution continues after the block, as in O++.
        Any other exception aborts and propagates.
        """
        txn = self.begin(system=system, session=session)
        try:
            yield txn
        except TransactionAbort:
            if txn.is_active:
                self.abort(txn, explicit=True)
        except BaseException:
            if txn.is_active:
                self.abort(txn, explicit=False)
            raise
        else:
            if txn.is_active:
                self.commit(txn)

    def run_system_transaction(
        self,
        body: Callable[[Transaction], None],
        *,
        depends_on: int | None = None,
        session: "Session | None" = None,
    ) -> Transaction:
        """Run *body* in a fresh system transaction and commit it.

        With *depends_on*, the system transaction carries a commit
        dependency on that transaction (the *dependent* coupling mode);
        commit raises :class:`~repro.errors.CommitDependencyError` if the
        parent did not commit, and the action is rolled back.
        """
        sess = self._resolve_session(session)
        stats = getattr(self.db, "session_stats", None)
        if stats is not None:
            stats.system_txns += 1
        txn = self.begin(system=True, session=sess)
        if depends_on is not None:
            self.dependencies.add(txn.txid, depends_on)
        try:
            body(txn)
        except TransactionAbort:
            self.abort(txn, explicit=True)
            return txn
        except BaseException:
            if txn.is_active:
                self.abort(txn, explicit=False)
            raise
        self.commit(txn)  # aborts internally (and raises) on dependency failure
        return txn

    # -- the shared system-transaction queue -------------------------------------

    def schedule_system(
        self,
        body: Callable[[Transaction], None],
        *,
        depends_on: int | None = None,
    ) -> None:
        """Queue *body* to run in its own system transaction.

        Detached trigger actions (dependent / !dependent coupling) land
        here from after-commit/after-abort hooks; the queue is drained by
        whichever session just finished a transaction — i.e. "between
        transactions" generalized to many sessions.
        """
        self._system_queue.append((body, depends_on))

    def drain_system_queue(self, session: "Session | None" = None) -> int:
        """Run every queued system transaction; returns the number run.

        Re-entrancy guarded per thread: a system transaction finishing
        *during* the drain does not drain recursively — its own enqueues
        are picked up by the outer loop.  A scheduled body whose commit
        dependency failed is discarded (the *dependent* contract).
        """
        if getattr(self._draining, "active", False):
            return 0
        if self.db.closed:
            return 0
        sess = self._resolve_session(session)
        ran = 0
        self._draining.active = True
        try:
            while True:
                try:
                    body, depends_on = self._system_queue.popleft()
                except IndexError:
                    break
                try:
                    self.run_system_transaction(
                        body, depends_on=depends_on, session=sess
                    )
                except CommitDependencyError:
                    pass  # parent did not commit: the dependent action dies
                ran += 1
        finally:
            self._draining.active = False
        return ran
