"""Phoenix transactions — restart-until-done intentions.

The paper drops ``after tcommit`` because posting it reliably "would be very
expensive ... Reasonable semantics for after commit require the use of a
phoenix transaction, one that once started will never stop trying to execute
until it has completed — even if it must be restarted after the system
crashes" (Section 6).  We implement exactly that as the optional extension:

* A committing transaction *enqueues* an intention (a small serializable
  payload) — the enqueue is part of the transaction, so the intention is
  durable iff the transaction commits.
* After commit — and again every time the database is opened — the queue is
  *drained*: each intention runs its registered handler in a fresh system
  transaction and is removed in that same transaction, so a crash at any
  point leaves the intention either fully done and gone, or still queued
  for the next restart.  Handlers must therefore be idempotent-at-the-
  application-level or tolerate re-execution (the usual phoenix contract).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import TransactionError
from repro.objects.serialize import decode_value, encode_value

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database
    from repro.transactions.txn import Transaction

_CATALOG_KEY = "phoenix_queue"

Handler = Callable[["Transaction", Any], None]


class PhoenixQueue:
    """Durable intention queue stored in the database catalog."""

    def __init__(self, db: "Database"):
        self.db = db
        self._handlers: dict[str, Handler] = {}

    def register_handler(self, kind: str, handler: Handler) -> None:
        """Register the executor for intentions of *kind*."""
        self._handlers[kind] = handler

    # -- persistence -----------------------------------------------------------

    def _load(self, txn: "Transaction") -> list[dict[str, Any]]:
        rid = self.db.catalog_get(_CATALOG_KEY)
        if rid is None:
            return []
        raw = self.db.storage.read(txn.txid, rid)
        value, _ = decode_value(raw, 0)
        return list(value)

    def _store(self, txn: "Transaction", intentions: list[dict[str, Any]]) -> None:
        out = bytearray()
        encode_value(intentions, out)
        rid = self.db.catalog_get(_CATALOG_KEY)
        if rid is None:
            rid = self.db.storage.insert(txn.txid, bytes(out))
            self.db.catalog_set(txn, _CATALOG_KEY, rid)
        else:
            self.db.storage.write(txn.txid, rid, bytes(out))

    # -- API ----------------------------------------------------------------------

    def enqueue(self, txn: "Transaction", kind: str, payload: Any) -> None:
        """Durably record an intention as part of *txn*."""
        if not txn.is_active and txn.state.value != "committing":
            raise TransactionError("phoenix intentions need a live transaction")
        intentions = self._load(txn)
        intentions.append({"kind": kind, "payload": payload})
        self._store(txn, intentions)

    def pending(self, txn: "Transaction") -> list[dict[str, Any]]:
        """The intentions currently queued (for inspection/tests)."""
        return self._load(txn)

    def drain(self, *, strict: bool = True) -> int:
        """Execute and remove every queued intention; returns the count run.

        Each intention runs in its own system transaction: handler first,
        then removal from the queue — atomically.  A handler exception
        leaves the intention queued (it will be retried on the next drain
        or database open), preserving the never-give-up contract.

        With ``strict=False`` (the open-time drain), intentions whose kind
        has no registered handler yet are skipped and stay queued — the
        application may register handlers after opening and drain again.
        """
        executed = 0
        skip = 0
        while True:
            manager = self.db.txn_manager

            # Peek at the next runnable intention in a read-only system txn.
            head: dict[str, Any] | None = None
            with manager.transaction(system=True) as txn:
                intentions = self._load(txn)
                if skip < len(intentions):
                    head = intentions[skip]
            if head is None:
                return executed
            handler = self._handlers.get(head["kind"])
            if handler is None:
                if strict:
                    raise TransactionError(
                        f"no phoenix handler registered for kind {head['kind']!r}"
                    )
                skip += 1
                continue

            def run(txn: "Transaction", index=skip) -> None:
                injector = self.db.storage.injector
                remaining = self._load(txn)
                intention = remaining.pop(index)
                injector.fire("phoenix.drain.before_handler", kind=intention["kind"])
                handler(txn, intention["payload"])
                # Crash here: the handler's work and the dequeue are in one
                # transaction, so the intention re-runs on the next open —
                # the documented at-least-once contract.
                injector.fire("phoenix.drain.after_handler", kind=intention["kind"])
                self._store(txn, remaining)
                injector.fire("phoenix.drain.before_commit", kind=intention["kind"])

            manager.run_system_transaction(run)
            executed += 1
