"""The transaction object.

A :class:`Transaction` carries the per-transaction state the rest of the
system needs: the object cache (instances dereferenced in this transaction),
the dirty set awaiting write-back, and four ordered hook lists the trigger
manager uses to implement coupling modes and transaction events:

* ``before_commit`` — deferred (*end*) trigger actions, then
  ``before tcomplete`` event posting; may raise
  :class:`~repro.errors.TransactionAbort` to veto the commit.
* ``after_commit`` — *dependent* and *!dependent* trigger actions, each run
  in its own system transaction; phoenix-queue draining.
* ``before_abort`` — ``before tabort`` event posting (explicit aborts only).
* ``after_abort`` — *!dependent* trigger actions (they run even when the
  detecting transaction aborts).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database
    from repro.objects.persistent import Persistent
    from repro.sessions.session import Session


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTING = "committing"
    COMMITTED = "committed"
    ABORTED = "aborted"


Hook = Callable[["Transaction"], None]


class Transaction:
    """One transaction against one database."""

    def __init__(
        self,
        txid: int,
        db: "Database",
        *,
        system: bool = False,
        session: "Session | None" = None,
    ):
        self.txid = txid
        self.db = db
        self.system = system
        #: The session this transaction runs in (the default session for the
        #: serial API).  Handles, posting, and obs spans use it for scoping.
        self.session = session
        self.state = TxnState.ACTIVE
        # Object cache: rid -> live instance; dirty rids await write-back.
        self.cache: dict[int, "Persistent"] = {}
        self.dirty: set[int] = set()
        # Hook lists, run in registration order.
        self.before_commit: list[Hook] = []
        self.after_commit: list[Hook] = []
        self.before_abort: list[Hook] = []
        self.after_abort: list[Hook] = []
        # Free-form per-transaction scratch space; the trigger manager keys
        # its end/dependent/!dependent lists and the transaction-event
        # object list here so the transaction layer stays trigger-agnostic.
        self.attachments: dict[str, Any] = {}

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    @property
    def session_name(self) -> str:
        return self.session.name if self.session is not None else "?"

    @property
    def committed(self) -> bool:
        return self.state is TxnState.COMMITTED

    @property
    def aborted(self) -> bool:
        return self.state is TxnState.ABORTED

    def attachment(self, key: str, factory: Callable[[], Any]) -> Any:
        """Get (creating on first use) the attachment stored under *key*."""
        try:
            return self.attachments[key]
        except KeyError:
            value = self.attachments[key] = factory()
            return value

    def mark_dirty(self, rid: int) -> None:
        """Record that the cached object at *rid* needs write-back."""
        self.dirty.add(rid)

    def __repr__(self) -> str:
        kind = "system " if self.system else ""
        return f"<{kind}Transaction {self.txid} {self.state.value}>"
