"""Workload generators for examples, tests, and the benchmark harness.

* :mod:`repro.workloads.credit_card` — the paper's Section 4 credit-card
  monitoring domain: the canonical ``CredCard``/``Customer``/``Merchant``
  classes (with the ``DenyCredit`` and ``AutoRaiseLimit`` triggers) plus a
  seeded operation-mix generator.
* :mod:`repro.workloads.trading` — the program-trading domain that
  motivates composite events in the paper's introduction.
* :mod:`repro.workloads.streams` — generic seeded event-symbol streams
  (uniform / zipf / bursty) for the detection experiments.
"""

from repro.workloads.credit_card import (
    CredCard,
    CreditCardWorkload,
    Customer,
    Merchant,
)
from repro.workloads.streams import generate_stream
from repro.workloads.trading import Portfolio, Stock, TickStream

__all__ = [
    "CredCard",
    "CreditCardWorkload",
    "Customer",
    "Merchant",
    "Portfolio",
    "Stock",
    "TickStream",
    "generate_stream",
]
